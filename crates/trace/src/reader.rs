//! Reading serialized JSONL trace streams back into typed records.
//!
//! The writer side of this crate ([`JsonlSink`]) guarantees one sorted-key
//! JSON object per line; this module is the inverse: it parses a stream
//! back into [`TraceRecord`]s with *diagnosable* failures. Every parse
//! error names the 1-based line, the 0-based event index (records
//! successfully decoded before the failure) and — wherever the schema can
//! pin it down — the offending field, so `trace-check` and `trace-scope`
//! can point at the exact byte range a producer corrupted.
//!
//! Decoding is deliberately strict: the expected payload fields of every
//! event are checked against a schema table (unknown extra fields are
//! rejected, since the writer never emits them), numeric ranges are
//! enforced (a `core` of 300 is corruption, not data), and integer tokens
//! are parsed from their raw text so 64-bit values never round-trip
//! through `f64`.
//!
//! [`JsonlSink`]: crate::sink::JsonlSink

use crate::event::{TraceEvent, TraceRecord};
use crate::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A typed failure parsing one line of a JSONL trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFailure {
    /// 1-based line number of the unparseable line.
    pub line: usize,
    /// 0-based event index: how many records decoded before this line.
    pub event_index: u64,
    /// The offending field, when the failure can be pinned to one.
    pub field: Option<String>,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {} (event {})", self.line, self.event_index)?;
        if let Some(field) = &self.field {
            write!(f, ", field '{field}'")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for ParseFailure {}

/// A field-attributable decode failure, before line attribution.
type Fail = (Option<String>, String);

/// Parses a whole JSONL stream into records.
///
/// Empty lines are rejected: the writer never emits them, so one in the
/// input means truncation or concatenation damage.
///
/// # Errors
///
/// Returns the first [`ParseFailure`] encountered.
pub fn read_jsonl(input: &str) -> Result<Vec<TraceRecord>, ParseFailure> {
    let mut records = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let fail = |(field, message): Fail| ParseFailure {
            line: idx + 1,
            event_index: records.len() as u64,
            field,
            message,
        };
        if line.trim().is_empty() {
            return Err(fail((None, "empty line in stream".to_owned())));
        }
        match parse_line(line) {
            Ok(record) => records.push(record),
            Err(failure) => return Err(fail(failure)),
        }
    }
    Ok(records)
}

/// The JSON shape a payload field must have.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FieldKind {
    /// Unsigned integer fitting in `u8`.
    U8,
    /// Unsigned integer fitting in `u32`.
    U32,
    /// Unsigned integer fitting in `u64`.
    U64,
    /// Any finite JSON number.
    F64,
    /// A JSON string.
    Str,
    /// A JSON boolean.
    Bool,
}

impl FieldKind {
    fn accepts(self, value: &Value) -> bool {
        match self {
            FieldKind::U8 => number_parses::<u8>(value),
            FieldKind::U32 => number_parses::<u32>(value),
            FieldKind::U64 => number_parses::<u64>(value),
            FieldKind::F64 => value
                .as_number()
                .is_some_and(|raw| raw.parse::<f64>().is_ok_and(f64::is_finite)),
            FieldKind::Str => value.as_str().is_some(),
            FieldKind::Bool => matches!(value, Value::Bool(_)),
        }
    }

    fn describe(self) -> &'static str {
        match self {
            FieldKind::U8 => "an unsigned integer ≤ 255",
            FieldKind::U32 => "an unsigned 32-bit integer",
            FieldKind::U64 => "an unsigned 64-bit integer",
            FieldKind::F64 => "a finite number",
            FieldKind::Str => "a string",
            FieldKind::Bool => "a boolean",
        }
    }
}

/// Whether `value` is a number whose raw token parses as `T` — exact
/// integer semantics (`300` is not a `u8`, `-3` is not a `u64`, `1.5` is
/// not an integer at all), no `f64` round trip.
fn number_parses<T: std::str::FromStr>(value: &Value) -> bool {
    value
        .as_number()
        .is_some_and(|raw| raw.parse::<T>().is_ok())
}

/// Payload schema per event tag, mirroring [`crate::event::TraceEvent`].
/// A sync test in this module asserts every variant serializes to exactly
/// these fields.
fn event_schema(event: &str) -> Option<&'static [(&'static str, FieldKind)]> {
    use FieldKind::{Bool, Str, F64, U32, U64, U8};
    Some(match event {
        "CampaignStarted" => &[
            ("chip", Str),
            ("rail", Str),
            ("benchmarks", U32),
            ("cores", U32),
            ("steps", U32),
            ("iterations", U32),
            ("shards", U32),
            ("seed", U64),
        ],
        "ShardScheduled" => &[("shard", U32), ("items", U32)],
        "SweepStarted" => &[
            ("program", Str),
            ("dataset", Str),
            ("core", U8),
            ("shard", U32),
        ],
        "GoldenCaptured" => &[
            ("program", Str),
            ("dataset", Str),
            ("core", U8),
            ("digest", Str),
            ("runtime_s", F64),
        ],
        "VoltageStepped" => &[("rail", Str), ("mv", U32), ("step", U32)],
        "RailSet" => &[("rail", Str), ("mv", U32)],
        "WatchdogPowerCycle" => &[("recovery", U32)],
        "CacheErrorReported" => &[("level", Str), ("instance", U8), ("corrected", Bool)],
        "RunCompleted" => &[
            ("program", Str),
            ("dataset", Str),
            ("core", U8),
            ("mv", U32),
            ("iteration", U32),
            ("effects", Str),
            ("severity", F64),
            ("runtime_s", F64),
            ("energy_j", F64),
            ("corrected_errors", U64),
            ("uncorrected_errors", U64),
        ],
        "SearchStep" => &[
            ("program", Str),
            ("core", U8),
            ("strategy", Str),
            ("phase", Str),
            ("step", U32),
            ("mv", U32),
        ],
        "CacheLookup" => &[
            ("program", Str),
            ("dataset", Str),
            ("core", U8),
            ("probe", Str),
            ("mv", U32),
            ("hit", Bool),
        ],
        "SearchConcluded" => &[
            ("program", Str),
            ("core", U8),
            ("strategy", Str),
            ("probed_steps", U32),
            ("grid_steps", U32),
            ("cache_hits", U32),
        ],
        "EarlyStop" => &[
            ("program", Str),
            ("core", U8),
            ("mv", U32),
            ("consecutive_all_sc", U32),
        ],
        "ProfileSample" => &[
            ("program", Str),
            ("dataset", Str),
            ("core", U8),
            ("phase", Str),
            ("ops", U64),
            ("fault_samples", U64),
            ("sram_events", U64),
            ("cache_probes", U64),
            ("recoveries", U64),
        ],
        "SweepFinished" => &[
            ("program", Str),
            ("dataset", Str),
            ("core", U8),
            ("runs", U32),
        ],
        "ProfilePhase" => &[
            ("phase", Str),
            ("sweeps", U64),
            ("ops", U64),
            ("fault_samples", U64),
            ("sram_events", U64),
            ("cache_probes", U64),
            ("recoveries", U64),
        ],
        "CampaignFinished" => &[("runs", U64), ("power_cycles", U32)],
        "VoltageDecision" => &[
            ("voltage_mv", U32),
            ("guardband_steps", U32),
            ("relative_power", F64),
            ("relative_performance", F64),
            ("energy_savings", F64),
        ],
        _ => return None,
    })
}

/// The envelope fields every record carries besides the event payload.
const ENVELOPE_FIELDS: [(&str, FieldKind); 2] =
    [("seq", FieldKind::U64), ("t_model_s", FieldKind::F64)];

/// Typed access to the fields of a schema-validated JSON object. Every
/// accessor still returns `Result` (never panics on adversarial input),
/// but after the schema pass the error paths are unreachable.
struct Obj<'a> {
    map: &'a BTreeMap<String, Value>,
}

impl Obj<'_> {
    fn raw(&self, name: &str) -> Result<&Value, Fail> {
        self.map
            .get(name)
            .ok_or_else(|| (Some(name.to_owned()), "missing".to_owned()))
    }

    fn str(&self, name: &str) -> Result<String, Fail> {
        self.raw(name)?
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| type_fail(name, FieldKind::Str, self.map))
    }

    fn int<T: std::str::FromStr>(&self, name: &str, kind: FieldKind) -> Result<T, Fail> {
        self.raw(name)?
            .as_number()
            .and_then(|raw| raw.parse::<T>().ok())
            .ok_or_else(|| type_fail(name, kind, self.map))
    }

    fn u8(&self, name: &str) -> Result<u8, Fail> {
        self.int(name, FieldKind::U8)
    }

    fn u32(&self, name: &str) -> Result<u32, Fail> {
        self.int(name, FieldKind::U32)
    }

    fn u64(&self, name: &str) -> Result<u64, Fail> {
        self.int(name, FieldKind::U64)
    }

    fn f64(&self, name: &str) -> Result<f64, Fail> {
        self.raw(name)?
            .as_number()
            .and_then(|raw| raw.parse::<f64>().ok())
            .filter(|v| v.is_finite())
            .ok_or_else(|| type_fail(name, FieldKind::F64, self.map))
    }

    fn bool(&self, name: &str) -> Result<bool, Fail> {
        match self.raw(name)? {
            Value::Bool(b) => Ok(*b),
            _ => Err(type_fail(name, FieldKind::Bool, self.map)),
        }
    }
}

fn type_fail(name: &str, kind: FieldKind, map: &BTreeMap<String, Value>) -> Fail {
    let got = map.get(name).map_or("nothing".to_owned(), json::render);
    (
        Some(name.to_owned()),
        format!("expected {}, got {got}", kind.describe()),
    )
}

/// Parses one line, reporting `(offending field, message)` on failure.
fn parse_line(line: &str) -> Result<TraceRecord, Fail> {
    let value = json::parse(line).map_err(|e| (None, format!("not valid JSON: {e}")))?;
    let Some(map) = value.as_object() else {
        return Err((None, "line is not a JSON object".to_owned()));
    };
    let obj = Obj { map };

    for (name, kind) in ENVELOPE_FIELDS {
        match map.get(name) {
            None => return Err((Some(name.to_owned()), "missing".to_owned())),
            Some(v) if !kind.accepts(v) => return Err(type_fail(name, kind, map)),
            Some(_) => {}
        }
    }
    let Some(event) = map.get("event") else {
        return Err((Some("event".to_owned()), "missing".to_owned()));
    };
    let Some(event_name) = event.as_str() else {
        return Err((
            Some("event".to_owned()),
            format!("expected a string event tag, got {}", json::render(event)),
        ));
    };
    let Some(schema) = event_schema(event_name) else {
        return Err((
            Some("event".to_owned()),
            format!("unknown event '{event_name}'"),
        ));
    };

    for (name, kind) in schema {
        match map.get(*name) {
            None => {
                return Err((
                    Some((*name).to_owned()),
                    format!("missing (required by {event_name})"),
                ))
            }
            Some(v) if !kind.accepts(v) => return Err(type_fail(name, *kind, map)),
            Some(_) => {}
        }
    }
    for key in map.keys() {
        let known = key == "seq"
            || key == "t_model_s"
            || key == "event"
            || schema.iter().any(|(name, _)| name == key);
        if !known {
            return Err((
                Some(key.clone()),
                format!("unexpected field for {event_name}"),
            ));
        }
    }

    Ok(TraceRecord {
        seq: obj.u64("seq")?,
        t_model_s: obj.f64("t_model_s")?,
        event: decode_event(event_name, &obj)?,
    })
}

/// Builds the typed event from a schema-validated object. The inverse of
/// [`TraceEvent`]'s payload encoder; the round-trip test below keeps the
/// two (and the schema table) in sync.
fn decode_event(name: &str, obj: &Obj<'_>) -> Result<TraceEvent, Fail> {
    Ok(match name {
        "CampaignStarted" => TraceEvent::CampaignStarted {
            chip: obj.str("chip")?,
            rail: obj.str("rail")?,
            benchmarks: obj.u32("benchmarks")?,
            cores: obj.u32("cores")?,
            steps: obj.u32("steps")?,
            iterations: obj.u32("iterations")?,
            shards: obj.u32("shards")?,
            seed: obj.u64("seed")?,
        },
        "ShardScheduled" => TraceEvent::ShardScheduled {
            shard: obj.u32("shard")?,
            items: obj.u32("items")?,
        },
        "SweepStarted" => TraceEvent::SweepStarted {
            program: obj.str("program")?,
            dataset: obj.str("dataset")?,
            core: obj.u8("core")?,
            shard: obj.u32("shard")?,
        },
        "GoldenCaptured" => TraceEvent::GoldenCaptured {
            program: obj.str("program")?,
            dataset: obj.str("dataset")?,
            core: obj.u8("core")?,
            digest: obj.str("digest")?,
            runtime_s: obj.f64("runtime_s")?,
        },
        "VoltageStepped" => TraceEvent::VoltageStepped {
            rail: obj.str("rail")?,
            mv: obj.u32("mv")?,
            step: obj.u32("step")?,
        },
        "RailSet" => TraceEvent::RailSet {
            rail: obj.str("rail")?,
            mv: obj.u32("mv")?,
        },
        "WatchdogPowerCycle" => TraceEvent::WatchdogPowerCycle {
            recovery: obj.u32("recovery")?,
        },
        "CacheErrorReported" => TraceEvent::CacheErrorReported {
            level: obj.str("level")?,
            instance: obj.u8("instance")?,
            corrected: obj.bool("corrected")?,
        },
        "RunCompleted" => TraceEvent::RunCompleted {
            program: obj.str("program")?,
            dataset: obj.str("dataset")?,
            core: obj.u8("core")?,
            mv: obj.u32("mv")?,
            iteration: obj.u32("iteration")?,
            effects: obj.str("effects")?,
            severity: obj.f64("severity")?,
            runtime_s: obj.f64("runtime_s")?,
            energy_j: obj.f64("energy_j")?,
            corrected_errors: obj.u64("corrected_errors")?,
            uncorrected_errors: obj.u64("uncorrected_errors")?,
        },
        "SearchStep" => TraceEvent::SearchStep {
            program: obj.str("program")?,
            core: obj.u8("core")?,
            strategy: obj.str("strategy")?,
            phase: obj.str("phase")?,
            step: obj.u32("step")?,
            mv: obj.u32("mv")?,
        },
        "CacheLookup" => TraceEvent::CacheLookup {
            program: obj.str("program")?,
            dataset: obj.str("dataset")?,
            core: obj.u8("core")?,
            probe: obj.str("probe")?,
            mv: obj.u32("mv")?,
            hit: obj.bool("hit")?,
        },
        "SearchConcluded" => TraceEvent::SearchConcluded {
            program: obj.str("program")?,
            core: obj.u8("core")?,
            strategy: obj.str("strategy")?,
            probed_steps: obj.u32("probed_steps")?,
            grid_steps: obj.u32("grid_steps")?,
            cache_hits: obj.u32("cache_hits")?,
        },
        "EarlyStop" => TraceEvent::EarlyStop {
            program: obj.str("program")?,
            core: obj.u8("core")?,
            mv: obj.u32("mv")?,
            consecutive_all_sc: obj.u32("consecutive_all_sc")?,
        },
        "ProfileSample" => TraceEvent::ProfileSample {
            program: obj.str("program")?,
            dataset: obj.str("dataset")?,
            core: obj.u8("core")?,
            phase: obj.str("phase")?,
            ops: obj.u64("ops")?,
            fault_samples: obj.u64("fault_samples")?,
            sram_events: obj.u64("sram_events")?,
            cache_probes: obj.u64("cache_probes")?,
            recoveries: obj.u64("recoveries")?,
        },
        "SweepFinished" => TraceEvent::SweepFinished {
            program: obj.str("program")?,
            dataset: obj.str("dataset")?,
            core: obj.u8("core")?,
            runs: obj.u32("runs")?,
        },
        "ProfilePhase" => TraceEvent::ProfilePhase {
            phase: obj.str("phase")?,
            sweeps: obj.u64("sweeps")?,
            ops: obj.u64("ops")?,
            fault_samples: obj.u64("fault_samples")?,
            sram_events: obj.u64("sram_events")?,
            cache_probes: obj.u64("cache_probes")?,
            recoveries: obj.u64("recoveries")?,
        },
        "CampaignFinished" => TraceEvent::CampaignFinished {
            runs: obj.u64("runs")?,
            power_cycles: obj.u32("power_cycles")?,
        },
        "VoltageDecision" => TraceEvent::VoltageDecision {
            voltage_mv: obj.u32("voltage_mv")?,
            guardband_steps: obj.u32("guardband_steps")?,
            relative_power: obj.f64("relative_power")?,
            relative_performance: obj.f64("relative_performance")?,
            energy_savings: obj.f64("energy_savings")?,
        },
        other => {
            // Unreachable: the schema pass already rejected unknown tags.
            return Err((Some("event".to_owned()), format!("unknown event '{other}'")));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::StreamFinalizer;

    /// One sample per variant — keep in sync with [`TraceEvent`]; the
    /// schema-coverage test below fails when a variant is missing here.
    pub(crate) fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::CampaignStarted {
                chip: "TTT#0".into(),
                rail: "pmd".into(),
                benchmarks: 2,
                cores: 2,
                steps: 7,
                iterations: 2,
                shards: 4,
                seed: 7,
            },
            TraceEvent::ShardScheduled {
                shard: 0,
                items: 14,
            },
            TraceEvent::SweepStarted {
                program: "bwaves".into(),
                dataset: "ref".into(),
                core: 0,
                shard: 0,
            },
            TraceEvent::GoldenCaptured {
                program: "bwaves".into(),
                dataset: "ref".into(),
                core: 0,
                digest: "00ff".into(),
                runtime_s: 0.5,
            },
            TraceEvent::VoltageStepped {
                rail: "pmd".into(),
                mv: 905,
                step: 2,
            },
            TraceEvent::RailSet {
                rail: "pmd".into(),
                mv: 905,
            },
            TraceEvent::WatchdogPowerCycle { recovery: 1 },
            TraceEvent::CacheErrorReported {
                level: "L2".into(),
                instance: 1,
                corrected: true,
            },
            TraceEvent::RunCompleted {
                program: "bwaves".into(),
                dataset: "ref".into(),
                core: 0,
                mv: 900,
                iteration: 1,
                effects: "SDC+CE".into(),
                severity: 5.0,
                runtime_s: 1e-3,
                energy_j: 2.5e-2,
                corrected_errors: u64::MAX,
                uncorrected_errors: 0,
            },
            TraceEvent::SearchStep {
                program: "bwaves".into(),
                core: 0,
                strategy: "bisection".into(),
                phase: "vmin".into(),
                step: 3,
                mv: 900,
            },
            TraceEvent::CacheLookup {
                program: "bwaves".into(),
                dataset: "ref".into(),
                core: 0,
                probe: "step".into(),
                mv: 900,
                hit: false,
            },
            TraceEvent::SearchConcluded {
                program: "bwaves".into(),
                core: 0,
                strategy: "bisection".into(),
                probed_steps: 4,
                grid_steps: 7,
                cache_hits: 0,
            },
            TraceEvent::EarlyStop {
                program: "bwaves".into(),
                core: 0,
                mv: 885,
                consecutive_all_sc: 2,
            },
            TraceEvent::SweepFinished {
                program: "bwaves".into(),
                dataset: "ref".into(),
                core: 0,
                runs: 8,
            },
            TraceEvent::CampaignFinished {
                runs: 8,
                power_cycles: 1,
            },
            TraceEvent::VoltageDecision {
                voltage_mv: 890,
                guardband_steps: 1,
                relative_power: 0.85,
                relative_performance: 1.0,
                energy_savings: 0.15,
            },
            TraceEvent::ProfileSample {
                program: "bwaves".into(),
                dataset: "ref".into(),
                core: 0,
                phase: "probe".into(),
                ops: u64::MAX,
                fault_samples: 12,
                sram_events: 3,
                cache_probes: 0,
                recoveries: 1,
            },
            TraceEvent::ProfilePhase {
                phase: "probe".into(),
                sweeps: 2,
                ops: u64::MAX,
                fault_samples: 24,
                sram_events: 6,
                cache_probes: 0,
                recoveries: 2,
            },
        ]
    }

    fn render(events: Vec<TraceEvent>) -> String {
        let mut fin = StreamFinalizer::new();
        let mut out = String::new();
        for e in events {
            out.push_str(&fin.seal(e).to_json_line().expect("serializable"));
            out.push('\n');
        }
        out
    }

    #[test]
    fn schema_matches_every_serialized_variant() {
        let samples = sample_events();
        assert_eq!(samples.len(), 18, "add new variants to sample_events()");
        for event in samples {
            let name = event.name();
            let schema = event_schema(name).unwrap_or_else(|| panic!("no schema for {name}"));
            let record = TraceRecord {
                seq: 0,
                t_model_s: 0.0,
                event,
            };
            let value = record.to_value().expect("serializable");
            let object = value.as_object().expect("flat object");
            // Every serialized payload key (minus tag and envelope) is in
            // the schema with an accepting kind, and vice versa.
            let payload: Vec<&String> = object
                .keys()
                .filter(|k| *k != "event" && *k != "seq" && *k != "t_model_s")
                .collect();
            assert_eq!(payload.len(), schema.len(), "{name} field count");
            for (field, kind) in schema {
                let v = object
                    .get(*field)
                    .unwrap_or_else(|| panic!("{name}.{field} missing from serialization"));
                assert!(
                    kind.accepts(v),
                    "{name}.{field}: {} rejected by schema",
                    json::render(v)
                );
            }
        }
        assert!(event_schema("NoSuchEvent").is_none());
    }

    #[test]
    fn roundtrips_a_full_stream() {
        let mut fin = StreamFinalizer::new();
        let sealed: Vec<TraceRecord> = sample_events().into_iter().map(|e| fin.seal(e)).collect();
        let mut text = String::new();
        for record in &sealed {
            text.push_str(&record.to_json_line().expect("serializable"));
            text.push('\n');
        }
        let records = read_jsonl(&text).expect("writer output parses");
        assert_eq!(records, sealed);
        // The 64-bit counter survived verbatim — no f64 round trip.
        assert!(matches!(
            records[8].event,
            TraceEvent::RunCompleted {
                corrected_errors: u64::MAX,
                ..
            }
        ));
    }

    #[test]
    fn garbage_json_is_reported_without_a_field() {
        let err = read_jsonl("this is not json\n").expect_err("must fail");
        assert_eq!((err.line, err.event_index), (1, 0));
        assert_eq!(err.field, None);
        assert!(err.message.contains("not valid JSON"), "{err}");
    }

    #[test]
    fn empty_line_is_reported() {
        let mut text = render(sample_events());
        text.push('\n'); // a trailing blank line after the final newline
        let err = read_jsonl(&text).expect_err("must fail");
        assert_eq!(err.line, 19);
        assert_eq!(err.event_index, 18);
        assert!(err.message.contains("empty line"), "{err}");
    }

    #[test]
    fn missing_field_is_named() {
        let line = r#"{"event":"WatchdogPowerCycle","seq":0,"t_model_s":0.0}"#;
        let err = read_jsonl(line).expect_err("recovery missing");
        assert_eq!(err.field.as_deref(), Some("recovery"));
        assert!(err.message.contains("missing"), "{err}");
        assert!(err.to_string().contains("field 'recovery'"), "{err}");
    }

    #[test]
    fn wrong_type_is_named() {
        let line = r#"{"event":"WatchdogPowerCycle","recovery":"often","seq":0,"t_model_s":0.0}"#;
        let err = read_jsonl(line).expect_err("recovery mistyped");
        assert_eq!(err.field.as_deref(), Some("recovery"));
        assert!(err.message.contains("expected"), "{err}");
        assert!(err.message.contains("\"often\""), "{err}");
    }

    #[test]
    fn out_of_range_integer_is_named() {
        let line = r#"{"core":300,"dataset":"ref","event":"SweepStarted","program":"namd","seq":0,"shard":0,"t_model_s":0.0}"#;
        let err = read_jsonl(line).expect_err("core out of u8 range");
        assert_eq!(err.field.as_deref(), Some("core"));
        assert!(err.message.contains("≤ 255"), "{err}");
    }

    #[test]
    fn unknown_event_and_unexpected_field_are_named() {
        let line = r#"{"event":"Mystery","seq":0,"t_model_s":0.0}"#;
        let err = read_jsonl(line).expect_err("unknown event");
        assert_eq!(err.field.as_deref(), Some("event"));
        assert!(err.message.contains("unknown event 'Mystery'"), "{err}");

        let line = r#"{"event":"WatchdogPowerCycle","recovery":1,"seq":0,"surprise":true,"t_model_s":0.0}"#;
        let err = read_jsonl(line).expect_err("extra field");
        assert_eq!(err.field.as_deref(), Some("surprise"));
        assert!(err.message.contains("unexpected field"), "{err}");
    }

    #[test]
    fn broken_envelope_is_named() {
        let line = r#"{"event":"WatchdogPowerCycle","recovery":1,"t_model_s":0.0}"#;
        let err = read_jsonl(line).expect_err("seq missing");
        assert_eq!(err.field.as_deref(), Some("seq"));

        let line = r#"{"event":"WatchdogPowerCycle","recovery":1,"seq":-3,"t_model_s":0.0}"#;
        let err = read_jsonl(line).expect_err("negative seq");
        assert_eq!(err.field.as_deref(), Some("seq"));
    }

    #[test]
    fn event_index_counts_successfully_parsed_records() {
        let mut text = render(sample_events());
        text.push_str("{\"broken\":true}\n");
        let err = read_jsonl(&text).expect_err("trailing corruption");
        assert_eq!(err.line, 19);
        assert_eq!(err.event_index, 18);
    }

    #[test]
    fn non_object_lines_and_nonfinite_floats_are_rejected() {
        let err = read_jsonl("[1,2,3]\n").expect_err("array line");
        assert!(err.message.contains("not a JSON object"), "{err}");

        // A syntactically valid number token that overflows to infinity.
        let line = r#"{"event":"WatchdogPowerCycle","recovery":1,"seq":0,"t_model_s":1e999}"#;
        let err = read_jsonl(line).expect_err("non-finite clock");
        assert_eq!(err.field.as_deref(), Some("t_model_s"));
    }
}
