//! Sinks consume finalized [`TraceRecord`]s.
//!
//! Three implementations cover the framework's needs: an in-memory
//! collector for tests, the byte-deterministic JSONL writer, and a human
//! progress reporter for stderr. Sinks receive records in canonical stream
//! order, incrementally — a sharded campaign feeds them live as soon as
//! each work item's place in the canonical order is reached, so progress
//! reporting works during multi-hour sweeps without sacrificing
//! reproducibility of the written stream.

use crate::event::{TraceEvent, TraceRecord};
use std::io::{self, Write};

/// A consumer of finalized trace records.
pub trait Sink {
    /// Consumes one record. Records arrive in canonical stream order.
    fn emit(&mut self, record: &TraceRecord);

    /// Called once after the last record; flush buffers here.
    fn finish(&mut self) {}
}

/// Collects records in memory — the test sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// Everything emitted so far, in stream order.
    pub records: Vec<TraceRecord>,
}

impl MemorySink {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        MemorySink::default()
    }
}

impl Sink for MemorySink {
    fn emit(&mut self, record: &TraceRecord) {
        self.records.push(record.clone());
    }
}

/// Writes one sorted-key JSON object per line. The byte stream depends only
/// on the record sequence, never on scheduling or wall-clock state.
///
/// IO errors are sticky: the first failure is retained and subsequent
/// emissions are dropped; callers inspect [`JsonlSink::io_error`] (or
/// [`JsonlSink::into_inner`]) after the campaign.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    lines: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            lines: 0,
            error: None,
        }
    }

    /// Lines successfully written.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The first IO error encountered, if any.
    #[must_use]
    pub fn io_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the writer, surfacing any sticky error.
    ///
    /// # Errors
    ///
    /// Returns the first emission error, or the flush error.
    pub fn into_inner(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn emit(&mut self, record: &TraceRecord) {
        if self.error.is_some() {
            return;
        }
        let result = record
            .to_json_line()
            .map_err(io::Error::other)
            .and_then(|line| writeln!(self.writer, "{line}"));
        match result {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn finish(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.writer.flush() {
                self.error = Some(e);
            }
        }
    }
}

/// Renders live, human-readable campaign progress — the stderr companion of
/// the deterministic JSONL stream. Output is line-oriented and intentionally
/// coarse: campaign banner, one line per sweep, recovery notices, and a
/// closing summary with the modelled campaign time.
#[derive(Debug)]
pub struct ProgressSink<W: Write> {
    writer: W,
    total_sweeps: u64,
    started_sweeps: u64,
    runs: u64,
    abnormal_runs: u64,
    power_cycles: u64,
}

impl<W: Write> ProgressSink<W> {
    /// Wraps a writer (normally stderr).
    pub fn new(writer: W) -> Self {
        ProgressSink {
            writer,
            total_sweeps: 0,
            started_sweeps: 0,
            runs: 0,
            abnormal_runs: 0,
            power_cycles: 0,
        }
    }

    fn line(&mut self, text: &str) {
        // Progress is best-effort; a broken stderr must not kill a campaign.
        // lint: allow(swallowed-fallibility) — best-effort progress line on stderr
        let _ = writeln!(self.writer, "{text}");
        // lint: allow(swallowed-fallibility) — best-effort progress flush on stderr
        let _ = self.writer.flush();
    }
}

impl<W: Write> Sink for ProgressSink<W> {
    fn emit(&mut self, record: &TraceRecord) {
        match &record.event {
            TraceEvent::CampaignStarted {
                chip,
                rail,
                benchmarks,
                cores,
                steps,
                iterations,
                shards,
                ..
            } => {
                self.total_sweeps = u64::from(*benchmarks) * u64::from(*cores);
                self.line(&format!(
                    "trace: campaign on {chip}: {benchmarks} benchmarks x {cores} cores x {steps} steps x {iterations} iterations ({rail} rail, {shards} shards)"
                ));
            }
            TraceEvent::SweepStarted { program, core, .. } => {
                self.started_sweeps += 1;
                let (n, total) = (self.started_sweeps, self.total_sweeps);
                self.line(&format!(
                    "trace: [{n}/{total}] sweeping {program} on core{core}"
                ));
            }
            TraceEvent::RunCompleted { effects, .. } => {
                self.runs += 1;
                if effects != "NO" {
                    self.abnormal_runs += 1;
                }
            }
            TraceEvent::WatchdogPowerCycle { recovery } => {
                self.power_cycles += 1;
                self.line(&format!(
                    "trace:   watchdog power cycle (recovery {recovery} this sweep)"
                ));
            }
            TraceEvent::SearchConcluded {
                program,
                core,
                strategy,
                probed_steps,
                grid_steps,
                cache_hits,
            } => {
                self.line(&format!(
                    "trace:   {strategy} search: {program} core{core} probed {probed_steps}/{grid_steps} steps ({cache_hits} cache hits)"
                ));
            }
            TraceEvent::EarlyStop {
                program, core, mv, ..
            } => {
                self.line(&format!(
                    "trace:   early stop: {program} core{core} all-SC down to {mv}mV"
                ));
            }
            TraceEvent::SweepFinished {
                program,
                core,
                runs,
                ..
            } => {
                self.line(&format!(
                    "trace:   {program} core{core} done ({runs} runs; campaign totals: {} runs, {} abnormal, {} power cycles)",
                    self.runs, self.abnormal_runs, self.power_cycles
                ));
            }
            TraceEvent::CampaignFinished { runs, power_cycles } => {
                self.line(&format!(
                    "trace: campaign finished: {runs} runs, {power_cycles} power cycles, modelled time {:.3}s",
                    record.t_model_s
                ));
            }
            TraceEvent::VoltageDecision {
                voltage_mv,
                energy_savings,
                ..
            } => {
                self.line(&format!(
                    "trace: governor decision: {voltage_mv}mV, {:.1}% savings",
                    energy_savings * 100.0
                ));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::StreamFinalizer;

    fn sealed(events: Vec<TraceEvent>) -> Vec<TraceRecord> {
        let mut fin = StreamFinalizer::new();
        events.into_iter().map(|e| fin.seal(e)).collect()
    }

    fn sample_stream() -> Vec<TraceRecord> {
        sealed(vec![
            TraceEvent::CampaignStarted {
                chip: "TTT#0".into(),
                rail: "pmd".into(),
                benchmarks: 1,
                cores: 1,
                steps: 2,
                iterations: 1,
                shards: 1,
                seed: 7,
            },
            TraceEvent::SweepStarted {
                program: "namd".into(),
                dataset: "ref".into(),
                core: 4,
                shard: 0,
            },
            TraceEvent::RunCompleted {
                program: "namd".into(),
                dataset: "ref".into(),
                core: 4,
                mv: 890,
                iteration: 0,
                effects: "SDC".into(),
                severity: 4.0,
                runtime_s: 0.5,
                energy_j: 1e-2,
                corrected_errors: 0,
                uncorrected_errors: 0,
            },
            TraceEvent::SweepFinished {
                program: "namd".into(),
                dataset: "ref".into(),
                core: 4,
                runs: 1,
            },
            TraceEvent::CampaignFinished {
                runs: 1,
                power_cycles: 0,
            },
        ])
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let mut sink = MemorySink::new();
        for r in &sample_stream() {
            sink.emit(r);
        }
        assert_eq!(sink.records.len(), 5);
        assert_eq!(sink.records[2].event.name(), "RunCompleted");
    }

    #[test]
    fn jsonl_sink_writes_one_sorted_object_per_line() {
        let mut sink = JsonlSink::new(Vec::new());
        for r in &sample_stream() {
            sink.emit(r);
        }
        sink.finish();
        assert_eq!(sink.lines(), 5);
        let bytes = sink.into_inner().expect("no io error on Vec");
        let text = String::from_utf8(bytes).expect("utf8");
        assert_eq!(text.lines().count(), 5);
        for line in text.lines() {
            let v = crate::json::parse(line).expect("parseable");
            let obj = v.as_object().expect("object");
            assert!(obj.contains_key("event"));
            assert!(obj.contains_key("seq"));
        }
        assert!(text
            .lines()
            .next()
            .map_or(false, |l| l.contains("\"event\":\"CampaignStarted\"")));
    }

    #[test]
    fn progress_sink_reports_sweeps_and_summary() {
        let mut sink = ProgressSink::new(Vec::new());
        for r in &sample_stream() {
            sink.emit(r);
        }
        let text = String::from_utf8(sink.writer).expect("utf8");
        assert!(text.contains("[1/1] sweeping namd on core4"));
        assert!(text.contains("campaign finished: 1 runs"));
        assert!(text.contains("modelled time 0.500s"));
    }
}
