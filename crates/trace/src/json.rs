//! A minimal, fully deterministic JSON layer shared by the telemetry
//! stack.
//!
//! The characterization stack controls both ends of every JSON byte it
//! produces — the trace writer, the campaign cache, the analytics
//! reports — so it carries its own small value model instead of a
//! serialization framework:
//!
//! * [`Value`] keeps numbers as their **raw tokens**, so 64-bit integers
//!   (campaign seeds, error counters) never pass through `f64` and lose
//!   precision, and floats round-trip byte-exactly.
//! * [`parse`] is a strict recursive-descent reader with typed message
//!   errors (never a panic on untrusted input).
//! * [`render`] writes compact JSON with object keys in sorted order (a
//!   [`BTreeMap`] by construction), `\n`-free, locale-independent —
//!   byte-identical output for equal values on every platform.
//!
//! The trace event codec ([`crate::event`], [`crate::reader`]) and the
//! campaign cache build on this module.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw token.
    Number(String),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Duplicate keys keep the last occurrence.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// A number value from an unsigned integer.
    #[must_use]
    pub fn from_u64(v: u64) -> Value {
        Value::Number(v.to_string())
    }

    /// A number value from a float (its shortest round-trip form).
    /// Non-finite floats have no JSON representation and become `null`,
    /// which the schema-checked readers then reject — corruption surfaces
    /// at the read boundary instead of silently becoming a string.
    #[must_use]
    pub fn from_f64(v: f64) -> Value {
        if v.is_finite() {
            Value::Number(fmt_f64(v))
        } else {
            Value::Null
        }
    }

    /// A string value.
    #[must_use]
    pub fn from_str_val(v: &str) -> Value {
        Value::String(v.to_owned())
    }

    /// The object map, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The raw number token, if this is a number.
    #[must_use]
    pub fn as_number(&self) -> Option<&str> {
        match self {
            Value::Number(raw) => Some(raw),
            _ => None,
        }
    }
}

/// Shortest round-trip representation of a finite `f64` (`{:?}` always
/// prints a form `f64::from_str` maps back to the same bits).
#[must_use]
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        // Non-finite values never occur in modelled runtimes/energies;
        // serialize defensively as null so the reader rejects the record
        // instead of producing invalid JSON.
        "null".to_owned()
    }
}

/// Appends `value` to `out` as a JSON string literal (quotes included).
pub fn escape_into(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a value as compact JSON (sorted object keys, no whitespace).
#[must_use]
pub fn render(value: &Value) -> String {
    let mut out = String::new();
    render_into(&mut out, value);
    out
}

/// Appends the compact rendering of `value` to `out`.
pub fn render_into(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(raw) => out.push_str(raw),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, key);
                out.push(':');
                render_into(out, item);
            }
            out.push('}');
        }
    }
}

/// Parses exactly one JSON value spanning the whole input.
///
/// Numbers keep their raw token so 64-bit integers never pass through
/// `f64` and lose precision. Errors are plain messages; the caller
/// attaches the line number.
///
/// # Errors
///
/// Returns a message describing the first syntax error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn require(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}",
                char::from(b),
                self.pos
            ))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected byte 0x{c:02x} at offset {}", self.pos)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.require(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.require(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.require(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.require(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid UTF-8 in string: {e}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ASCII \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            // Surrogates never appear in this module's
                            // own output; reject rather than combine.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint \\u{hex}"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            // lint: allow(no-panic) — the scanned range is ASCII by construction
            .expect("number token is ASCII");
        // Validate the token parses as a number at all.
        raw.parse::<f64>()
            .map_err(|e| format!("bad number '{raw}': {e}"))?;
        Ok(Value::Number(raw.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_value_kind() {
        let text =
            r#"{"a":[1,2.5,-3],"b":"x\"y","c":true,"d":null,"e":{"n":18446744073709551615}}"#;
        let value = parse(text).expect("valid JSON");
        let map = value.as_object().expect("object");
        assert_eq!(
            map.get("a"),
            Some(&Value::Array(vec![
                Value::Number("1".into()),
                Value::Number("2.5".into()),
                Value::Number("-3".into()),
            ]))
        );
        assert_eq!(map.get("b").and_then(Value::as_str), Some("x\"y"));
        assert_eq!(map.get("c"), Some(&Value::Bool(true)));
        assert_eq!(map.get("d"), Some(&Value::Null));
        // The 64-bit token survives verbatim — no f64 round trip.
        let inner = map.get("e").and_then(Value::as_object).expect("object");
        assert_eq!(
            inner.get("n").and_then(Value::as_number),
            Some("18446744073709551615")
        );
    }

    #[test]
    fn render_parse_round_trips_byte_exactly() {
        let text = r#"{"empty":{},"list":[],"nested":{"f":0.001,"neg":-7,"s":"a\\b\nc"}}"#;
        let value = parse(text).expect("valid");
        assert_eq!(render(&value), text);
    }

    #[test]
    fn object_keys_render_sorted() {
        let mut map = BTreeMap::new();
        map.insert("zeta".to_owned(), Value::from_u64(1));
        map.insert("alpha".to_owned(), Value::from_u64(2));
        assert_eq!(render(&Value::Object(map)), r#"{"alpha":2,"zeta":1}"#);
    }

    #[test]
    fn garbage_is_rejected_with_messages() {
        for bad in ["", "{", "[1,", "\"open", "{\"a\":}", "1 2", "nul", "+5"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn floats_render_shortest_and_nonfinite_becomes_null() {
        assert_eq!(fmt_f64(0.125), "0.125");
        assert_eq!(fmt_f64(1e-4), "0.0001");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(Value::from_f64(f64::INFINITY), Value::Null);
        assert_eq!(Value::from_f64(2.5), Value::Number("2.5".into()));
    }

    #[test]
    fn control_characters_escape_and_round_trip() {
        let mut out = String::new();
        escape_into(&mut out, "a\u{1}\tb");
        assert_eq!(out, "\"a\\u0001\\tb\"");
        let back = parse(&out).expect("parses");
        assert_eq!(back, Value::String("a\u{1}\tb".into()));
    }
}
