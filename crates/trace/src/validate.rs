//! Structural validation of a serialized trace stream.
//!
//! Used by the `trace-check` binary (and CI) to assert the three invariants
//! every emitted JSONL stream obeys:
//!
//! 1. every line parses as exactly one [`TraceRecord`] object,
//! 2. sequence numbers are dense from 0 and modelled time never decreases,
//! 3. span nesting is balanced: campaign → sweep → leaf events, with every
//!    opened span closed.
//!
//! Parsing is delegated to [`crate::reader`] (so parse errors name the
//! offending field) and nesting to [`crate::span`] (so the reconstruction
//! is shared with the analytics layer).

use crate::event::{TraceEvent, TraceRecord};
use crate::reader::{read_jsonl, ParseFailure};
use crate::span;
use std::fmt;

/// Summary statistics of a valid stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Total records.
    pub records: u64,
    /// Campaign spans.
    pub campaigns: u64,
    /// Sweep spans.
    pub sweeps: u64,
    /// Classified runs.
    pub runs: u64,
    /// Watchdog power cycles.
    pub power_cycles: u64,
    /// Per-sweep profile samples.
    pub profile_samples: u64,
    /// Campaign-level profile phase rollups.
    pub profile_phases: u64,
}

/// A structural violation, with the 1-based line it occurred on.
#[derive(Debug)]
pub enum StreamError {
    /// A line failed to parse as a `TraceRecord`.
    Parse {
        /// 1-based line number.
        line: usize,
        /// 0-based index of the event in the stream (records parsed
        /// successfully before this line).
        event_index: u64,
        /// The offending field, when the failure is attributable to one.
        field: Option<String>,
        /// Parser message.
        message: String,
    },
    /// A record's `seq` broke the dense 0-based ordering.
    Sequence {
        /// 1-based line number.
        line: usize,
        /// Expected sequence number.
        expected: u64,
        /// Found sequence number.
        found: u64,
    },
    /// Modelled time decreased.
    TimeRegression {
        /// 1-based line number.
        line: usize,
    },
    /// Span nesting was violated.
    Nesting {
        /// 1-based line number (0 = end of stream).
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl From<ParseFailure> for StreamError {
    fn from(failure: ParseFailure) -> Self {
        StreamError::Parse {
            line: failure.line,
            event_index: failure.event_index,
            field: failure.field,
            message: failure.message,
        }
    }
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Parse {
                line,
                event_index,
                field,
                message,
            } => {
                write!(f, "line {line} (event {event_index})")?;
                if let Some(field) = field {
                    write!(f, ", field '{field}'")?;
                }
                write!(f, ": {message}")
            }
            StreamError::Sequence {
                line,
                expected,
                found,
            } => write!(f, "line {line}: seq {found}, expected {expected}"),
            StreamError::TimeRegression { line } => {
                write!(f, "line {line}: modelled time decreased")
            }
            StreamError::Nesting { line, message } => {
                if *line == 0 {
                    write!(f, "end of stream: {message}")
                } else {
                    write!(f, "line {line}: {message}")
                }
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// Validates a JSONL trace stream (empty lines are rejected: the writer
/// never emits them).
///
/// # Errors
///
/// Returns the first [`StreamError`] found.
pub fn validate_jsonl(input: &str) -> Result<StreamStats, StreamError> {
    let records = read_jsonl(input)?;
    validate_records(&records)
}

/// Validates already-parsed records (invariants 2 and 3).
///
/// # Errors
///
/// Returns the first [`StreamError`] found.
pub fn validate_records(records: &[TraceRecord]) -> Result<StreamStats, StreamError> {
    let mut stats = StreamStats::default();
    let mut last_t = 0.0f64;
    for record in records {
        let lineno = stats.records as usize + 1;
        if record.seq != stats.records {
            return Err(StreamError::Sequence {
                line: lineno,
                expected: stats.records,
                found: record.seq,
            });
        }
        if record.t_model_s < last_t {
            return Err(StreamError::TimeRegression { line: lineno });
        }
        last_t = record.t_model_s;
        stats.records += 1;
        match &record.event {
            TraceEvent::RunCompleted { .. } => stats.runs += 1,
            TraceEvent::WatchdogPowerCycle { .. } => stats.power_cycles += 1,
            TraceEvent::ProfileSample { .. } => stats.profile_samples += 1,
            TraceEvent::ProfilePhase { .. } => stats.profile_phases += 1,
            _ => {}
        }
    }
    let tree = span::reconstruct(records).map_err(|e| StreamError::Nesting {
        // One record per line: record index i sits on line i + 1, and a
        // missing index means the stream ended with a span still open.
        line: e.index.map_or(0, |i| i + 1),
        message: e.message,
    })?;
    stats.campaigns = tree.campaigns.len() as u64;
    stats.sweeps = tree.campaigns.iter().map(|c| c.sweeps.len() as u64).sum();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::StreamFinalizer;

    fn render(events: Vec<TraceEvent>) -> String {
        let mut fin = StreamFinalizer::new();
        let mut out = String::new();
        for e in events {
            let rec = fin.seal(e);
            out.push_str(&rec.to_json_line().expect("serializable"));
            out.push('\n');
        }
        out
    }

    fn campaign_started() -> TraceEvent {
        TraceEvent::CampaignStarted {
            chip: "TTT#0".into(),
            rail: "pmd".into(),
            benchmarks: 1,
            cores: 1,
            steps: 1,
            iterations: 1,
            shards: 1,
            seed: 1,
        }
    }

    fn sweep_started() -> TraceEvent {
        TraceEvent::SweepStarted {
            program: "namd".into(),
            dataset: "ref".into(),
            core: 4,
            shard: 0,
        }
    }

    fn sweep_finished() -> TraceEvent {
        TraceEvent::SweepFinished {
            program: "namd".into(),
            dataset: "ref".into(),
            core: 4,
            runs: 1,
        }
    }

    fn run() -> TraceEvent {
        TraceEvent::RunCompleted {
            program: "namd".into(),
            dataset: "ref".into(),
            core: 4,
            mv: 890,
            iteration: 0,
            effects: "NO".into(),
            severity: 0.0,
            runtime_s: 0.125,
            energy_j: 1e-2,
            corrected_errors: 0,
            uncorrected_errors: 0,
        }
    }

    #[test]
    fn well_formed_stream_validates() {
        let text = render(vec![
            campaign_started(),
            sweep_started(),
            run(),
            sweep_finished(),
            TraceEvent::CampaignFinished {
                runs: 1,
                power_cycles: 0,
            },
        ]);
        let stats = validate_jsonl(&text).expect("valid");
        assert_eq!(stats.records, 5);
        assert_eq!(stats.campaigns, 1);
        assert_eq!(stats.sweeps, 1);
        assert_eq!(stats.runs, 1);
    }

    #[test]
    fn profiled_stream_validates_and_counts_profile_records() {
        let text = render(vec![
            campaign_started(),
            sweep_started(),
            run(),
            TraceEvent::ProfileSample {
                program: "namd".into(),
                dataset: "ref".into(),
                core: 4,
                phase: "probe".into(),
                ops: 1234,
                fault_samples: 56,
                sram_events: 0,
                cache_probes: 0,
                recoveries: 0,
            },
            sweep_finished(),
            TraceEvent::ProfilePhase {
                phase: "probe".into(),
                sweeps: 1,
                ops: 1234,
                fault_samples: 56,
                sram_events: 0,
                cache_probes: 0,
                recoveries: 0,
            },
            TraceEvent::CampaignFinished {
                runs: 1,
                power_cycles: 0,
            },
        ]);
        let stats = validate_jsonl(&text).expect("valid profiled stream");
        assert_eq!(stats.records, 7);
        assert_eq!(stats.profile_samples, 1);
        assert_eq!(stats.profile_phases, 1);
    }

    #[test]
    fn profile_phase_outside_the_campaign_epilogue_is_rejected() {
        let rollup = TraceEvent::ProfilePhase {
            phase: "probe".into(),
            sweeps: 1,
            ops: 1,
            fault_samples: 0,
            sram_events: 0,
            cache_probes: 0,
            recoveries: 0,
        };
        let text = render(vec![
            campaign_started(),
            sweep_started(),
            rollup,
            sweep_finished(),
            TraceEvent::CampaignFinished {
                runs: 0,
                power_cycles: 0,
            },
        ]);
        let err = validate_jsonl(&text).expect_err("rollup inside a sweep");
        assert!(err.to_string().contains("epilogue"), "{err}");
    }

    #[test]
    fn unbalanced_spans_are_rejected() {
        let text = render(vec![campaign_started(), sweep_started(), run()]);
        let err = validate_jsonl(&text).expect_err("open spans");
        assert!(err.to_string().contains("open sweep"), "{err}");
        assert!(matches!(err, StreamError::Nesting { line: 0, .. }));

        let text = render(vec![campaign_started(), run()]);
        let err = validate_jsonl(&text).expect_err("run outside sweep");
        assert!(err.to_string().contains("outside a sweep"), "{err}");
        assert!(matches!(err, StreamError::Nesting { line: 2, .. }));
    }

    #[test]
    fn sequence_gaps_are_rejected() {
        let good = render(vec![
            campaign_started(),
            TraceEvent::CampaignFinished {
                runs: 0,
                power_cycles: 0,
            },
        ]);
        // Drop the first line: seq then starts at 1.
        let tail = good.lines().nth(1).expect("two lines").to_owned();
        assert!(matches!(
            validate_jsonl(&tail),
            Err(StreamError::Sequence {
                line: 1,
                expected: 0,
                found: 1,
            })
        ));
    }

    #[test]
    fn garbage_line_reports_position_without_a_field() {
        let err = validate_jsonl("not json\n").expect_err("garbage");
        match &err {
            StreamError::Parse {
                line: 1,
                event_index: 0,
                field: None,
                ..
            } => {}
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().starts_with("line 1 (event 0): "), "{err}");
    }

    #[test]
    fn missing_field_is_reported_with_line_event_and_field() {
        let mut good = render(vec![
            campaign_started(),
            TraceEvent::CampaignFinished {
                runs: 0,
                power_cycles: 0,
            },
        ]);
        // Break line 2 by dropping its `runs` field.
        good = good.replace("\"runs\":0,", "");
        let err = validate_jsonl(&good).expect_err("missing field");
        match &err {
            StreamError::Parse {
                line: 2,
                event_index: 1,
                field: Some(field),
                ..
            } => assert_eq!(field, "runs"),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("field 'runs'"), "{err}");
    }

    #[test]
    fn wrong_field_type_is_reported_with_the_field() {
        let good = render(vec![
            campaign_started(),
            TraceEvent::CampaignFinished {
                runs: 0,
                power_cycles: 0,
            },
        ]);
        let bad = good.replace("\"power_cycles\":0", "\"power_cycles\":\"zero\"");
        let err = validate_jsonl(&bad).expect_err("wrong type");
        match err {
            StreamError::Parse {
                line: 2,
                event_index: 1,
                field: Some(field),
                ..
            } => assert_eq!(field, "power_cycles"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unknown_event_is_reported_on_the_event_tag() {
        let good = render(vec![campaign_started()]);
        let bad = good.replace("CampaignStarted", "CampaignImagined");
        let err = validate_jsonl(&bad).expect_err("unknown event");
        match err {
            StreamError::Parse {
                line: 1,
                event_index: 0,
                field: Some(field),
                message,
            } => {
                assert_eq!(field, "event");
                assert!(message.contains("CampaignImagined"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn time_regression_is_rejected() {
        let text = render(vec![
            campaign_started(),
            sweep_started(),
            run(),
            sweep_finished(),
            TraceEvent::CampaignFinished {
                runs: 1,
                power_cycles: 0,
            },
        ]);
        // The run advances modelled time; zeroing the final stamp regresses it.
        let broken = text.replace(
            "\"seq\":4,\"t_model_s\":0.125",
            "\"seq\":4,\"t_model_s\":0.0",
        );
        assert_ne!(broken, text, "replacement must hit the final record");
        match validate_jsonl(&broken) {
            Err(StreamError::TimeRegression { line }) => assert_eq!(line, 5),
            other => panic!("expected time regression, got {other:?}"),
        }
    }

    #[test]
    fn standalone_governor_decision_is_valid() {
        let text = render(vec![TraceEvent::VoltageDecision {
            voltage_mv: 890,
            guardband_steps: 1,
            relative_power: 0.85,
            relative_performance: 1.0,
            energy_savings: 0.15,
        }]);
        let stats = validate_jsonl(&text).expect("valid");
        assert_eq!(stats.records, 1);
        assert_eq!(stats.campaigns, 0);
    }
}
