//! Structural validation of a serialized trace stream.
//!
//! Used by the `trace-check` binary (and CI) to assert the three invariants
//! every emitted JSONL stream obeys:
//!
//! 1. every line parses as exactly one [`TraceRecord`] object,
//! 2. sequence numbers are dense from 0 and modelled time never decreases,
//! 3. span nesting is balanced: campaign → sweep → leaf events, with every
//!    opened span closed.

use crate::event::{TraceEvent, TraceRecord};
use std::fmt;

/// Summary statistics of a valid stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Total records.
    pub records: u64,
    /// Campaign spans.
    pub campaigns: u64,
    /// Sweep spans.
    pub sweeps: u64,
    /// Classified runs.
    pub runs: u64,
    /// Watchdog power cycles.
    pub power_cycles: u64,
}

/// A structural violation, with the 1-based line it occurred on.
#[derive(Debug)]
pub enum StreamError {
    /// A line failed to parse as a `TraceRecord`.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// A record's `seq` broke the dense 0-based ordering.
    Sequence {
        /// 1-based line number.
        line: usize,
        /// Expected sequence number.
        expected: u64,
        /// Found sequence number.
        found: u64,
    },
    /// Modelled time decreased.
    TimeRegression {
        /// 1-based line number.
        line: usize,
    },
    /// Span nesting was violated.
    Nesting {
        /// 1-based line number (0 = end of stream).
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Parse { line, message } => {
                write!(f, "line {line}: unparseable record: {message}")
            }
            StreamError::Sequence {
                line,
                expected,
                found,
            } => write!(f, "line {line}: seq {found}, expected {expected}"),
            StreamError::TimeRegression { line } => {
                write!(f, "line {line}: modelled time decreased")
            }
            StreamError::Nesting { line, message } => {
                if *line == 0 {
                    write!(f, "end of stream: {message}")
                } else {
                    write!(f, "line {line}: {message}")
                }
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// Validates a JSONL trace stream (empty lines are rejected: the writer
/// never emits them).
///
/// # Errors
///
/// Returns the first [`StreamError`] found.
pub fn validate_jsonl(input: &str) -> Result<StreamStats, StreamError> {
    let mut stats = StreamStats::default();
    let mut in_campaign = false;
    let mut in_sweep = false;
    let mut last_t = 0.0f64;
    for (idx, line) in input.lines().enumerate() {
        let lineno = idx + 1;
        let record: TraceRecord = serde_json::from_str(line).map_err(|e| StreamError::Parse {
            line: lineno,
            message: e.to_string(),
        })?;
        if record.seq != stats.records {
            return Err(StreamError::Sequence {
                line: lineno,
                expected: stats.records,
                found: record.seq,
            });
        }
        if record.t_model_s < last_t {
            return Err(StreamError::TimeRegression { line: lineno });
        }
        last_t = record.t_model_s;
        stats.records += 1;

        let nesting = |message: &str| StreamError::Nesting {
            line: lineno,
            message: message.to_owned(),
        };
        match &record.event {
            TraceEvent::CampaignStarted { .. } => {
                if in_campaign {
                    return Err(nesting("CampaignStarted inside an open campaign"));
                }
                in_campaign = true;
                stats.campaigns += 1;
            }
            TraceEvent::CampaignFinished { .. } => {
                if !in_campaign {
                    return Err(nesting("CampaignFinished without an open campaign"));
                }
                if in_sweep {
                    return Err(nesting("CampaignFinished inside an open sweep"));
                }
                in_campaign = false;
            }
            TraceEvent::ShardScheduled { .. } => {
                if !in_campaign || in_sweep {
                    return Err(nesting("ShardScheduled outside the campaign preamble"));
                }
            }
            TraceEvent::SweepStarted { .. } => {
                if !in_campaign {
                    return Err(nesting("SweepStarted outside a campaign"));
                }
                if in_sweep {
                    return Err(nesting("SweepStarted inside an open sweep"));
                }
                in_sweep = true;
                stats.sweeps += 1;
            }
            TraceEvent::SweepFinished { .. } => {
                if !in_sweep {
                    return Err(nesting("SweepFinished without an open sweep"));
                }
                in_sweep = false;
            }
            TraceEvent::GoldenCaptured { .. }
            | TraceEvent::VoltageStepped { .. }
            | TraceEvent::RailSet { .. }
            | TraceEvent::WatchdogPowerCycle { .. }
            | TraceEvent::CacheErrorReported { .. }
            | TraceEvent::RunCompleted { .. }
            | TraceEvent::SearchStep { .. }
            | TraceEvent::CacheLookup { .. }
            | TraceEvent::SearchConcluded { .. }
            | TraceEvent::EarlyStop { .. } => {
                if !in_sweep {
                    return Err(nesting("sweep-scoped event outside a sweep"));
                }
                match &record.event {
                    TraceEvent::RunCompleted { .. } => stats.runs += 1,
                    TraceEvent::WatchdogPowerCycle { .. } => stats.power_cycles += 1,
                    _ => {}
                }
            }
            // The governor reports decisions outside campaign spans too.
            TraceEvent::VoltageDecision { .. } => {}
        }
    }
    if in_sweep {
        return Err(StreamError::Nesting {
            line: 0,
            message: "stream ended inside an open sweep".to_owned(),
        });
    }
    if in_campaign {
        return Err(StreamError::Nesting {
            line: 0,
            message: "stream ended inside an open campaign".to_owned(),
        });
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::StreamFinalizer;

    fn render(events: Vec<TraceEvent>) -> String {
        let mut fin = StreamFinalizer::new();
        let mut out = String::new();
        for e in events {
            let rec = fin.seal(e);
            out.push_str(&rec.to_json_line().expect("serializable"));
            out.push('\n');
        }
        out
    }

    fn campaign_started() -> TraceEvent {
        TraceEvent::CampaignStarted {
            chip: "TTT#0".into(),
            rail: "pmd".into(),
            benchmarks: 1,
            cores: 1,
            steps: 1,
            iterations: 1,
            shards: 1,
            seed: 1,
        }
    }

    fn sweep_started() -> TraceEvent {
        TraceEvent::SweepStarted {
            program: "namd".into(),
            dataset: "ref".into(),
            core: 4,
            shard: 0,
        }
    }

    fn sweep_finished() -> TraceEvent {
        TraceEvent::SweepFinished {
            program: "namd".into(),
            dataset: "ref".into(),
            core: 4,
            runs: 1,
        }
    }

    fn run() -> TraceEvent {
        TraceEvent::RunCompleted {
            program: "namd".into(),
            dataset: "ref".into(),
            core: 4,
            mv: 890,
            iteration: 0,
            effects: "NO".into(),
            severity: 0.0,
            runtime_s: 0.125,
            energy_j: 1e-2,
            corrected_errors: 0,
            uncorrected_errors: 0,
        }
    }

    #[test]
    fn well_formed_stream_validates() {
        let text = render(vec![
            campaign_started(),
            sweep_started(),
            run(),
            sweep_finished(),
            TraceEvent::CampaignFinished {
                runs: 1,
                power_cycles: 0,
            },
        ]);
        let stats = validate_jsonl(&text).expect("valid");
        assert_eq!(stats.records, 5);
        assert_eq!(stats.campaigns, 1);
        assert_eq!(stats.sweeps, 1);
        assert_eq!(stats.runs, 1);
    }

    #[test]
    fn unbalanced_spans_are_rejected() {
        let text = render(vec![campaign_started(), sweep_started(), run()]);
        let err = validate_jsonl(&text).expect_err("open spans");
        assert!(err.to_string().contains("open sweep"), "{err}");

        let text = render(vec![campaign_started(), run()]);
        let err = validate_jsonl(&text).expect_err("run outside sweep");
        assert!(err.to_string().contains("outside a sweep"), "{err}");
    }

    #[test]
    fn sequence_gaps_and_garbage_are_rejected() {
        let good = render(vec![
            campaign_started(),
            TraceEvent::CampaignFinished {
                runs: 0,
                power_cycles: 0,
            },
        ]);
        // Drop the first line: seq then starts at 1.
        let tail = good.lines().nth(1).expect("two lines").to_owned();
        assert!(matches!(
            validate_jsonl(&tail),
            Err(StreamError::Sequence { .. })
        ));
        assert!(matches!(
            validate_jsonl("not json\n"),
            Err(StreamError::Parse { .. })
        ));
    }

    #[test]
    fn standalone_governor_decision_is_valid() {
        let text = render(vec![TraceEvent::VoltageDecision {
            voltage_mv: 890,
            guardband_steps: 1,
            relative_power: 0.85,
            relative_performance: 1.0,
            energy_savings: 0.15,
        }]);
        let stats = validate_jsonl(&text).expect("valid");
        assert_eq!(stats.records, 1);
        assert_eq!(stats.campaigns, 0);
    }
}
