//! Reconstructing the campaign → sweep → leaf span tree from a stream.
//!
//! A serialized trace is flat; the analytics layer (`margins-scope`) and
//! the structural validator both need the nesting back. [`reconstruct`]
//! rebuilds it, enforcing exactly the span contract [`validate_jsonl`]
//! documents: campaigns never nest, sweeps live inside campaigns,
//! sweep-scoped leaves live inside sweeps, and every opened span closes
//! before the stream (or the enclosing span) ends. Header fields of the
//! span-opening events are lifted into typed struct fields so consumers
//! never re-match the enum.
//!
//! [`validate_jsonl`]: crate::validate::validate_jsonl

use crate::event::{TraceEvent, TraceRecord};
use std::fmt;

/// A fully reconstructed stream: zero or more sequential campaigns plus
/// any standalone records (governor decisions outside campaign spans).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanTree {
    /// The campaigns, in stream order.
    pub campaigns: Vec<CampaignSpan>,
    /// Records outside every campaign span (only `VoltageDecision`).
    pub standalone: Vec<TraceRecord>,
}

/// One campaign span and everything inside it.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpan {
    /// Chip identity from the header.
    pub chip: String,
    /// Swept rail from the header.
    pub rail: String,
    /// Benchmarks in the campaign.
    pub benchmarks: u32,
    /// Target cores.
    pub cores: u32,
    /// Voltage steps in the grid.
    pub steps: u32,
    /// Iterations per configuration.
    pub iterations: u32,
    /// Logical work shards.
    pub shards: u32,
    /// Campaign seed.
    pub seed: u64,
    /// Total runs declared by `CampaignFinished`.
    pub declared_runs: u64,
    /// Power cycles declared by `CampaignFinished`.
    pub declared_power_cycles: u32,
    /// The `CampaignStarted` record.
    pub started: TraceRecord,
    /// The `ShardScheduled` preamble, in stream order.
    pub schedule: Vec<TraceRecord>,
    /// The sweeps, in stream order.
    pub sweeps: Vec<SweepSpan>,
    /// Campaign-scoped records outside any sweep (governor decisions).
    pub decisions: Vec<TraceRecord>,
    /// Campaign-scoped `ProfilePhase` rollups, in stream order.
    pub profile: Vec<TraceRecord>,
    /// The `CampaignFinished` record.
    pub finished: TraceRecord,
}

/// One (benchmark, core) sweep span and its leaf events.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpan {
    /// Benchmark name.
    pub program: String,
    /// Input dataset label.
    pub dataset: String,
    /// Target core index.
    pub core: u8,
    /// Logical shard index.
    pub shard: u32,
    /// Classified runs declared by `SweepFinished`.
    pub declared_runs: u32,
    /// The `SweepStarted` record.
    pub started: TraceRecord,
    /// Every leaf record inside the sweep, in stream order.
    pub leaves: Vec<TraceRecord>,
    /// The `SweepFinished` record.
    pub finished: TraceRecord,
}

impl SweepSpan {
    /// A stable human label for the sweep, e.g. `bwaves:ref@core0`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}:{}@core{}", self.program, self.dataset, self.core)
    }

    /// The sweep's canonical identity for order-insensitive comparison.
    #[must_use]
    pub fn key(&self) -> (String, String, u8) {
        (self.program.clone(), self.dataset.clone(), self.core)
    }
}

impl CampaignSpan {
    /// A stable human label for the campaign, e.g. `TTT#0/pmd`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}/{}", self.chip, self.rail)
    }

    /// Total records inside the span, delimiters included.
    #[must_use]
    pub fn records(&self) -> u64 {
        let sweep_records: u64 = self.sweeps.iter().map(|s| s.leaves.len() as u64 + 2).sum();
        2 + self.schedule.len() as u64
            + self.decisions.len() as u64
            + self.profile.len() as u64
            + sweep_records
    }
}

/// A span-nesting violation, with the 0-based record index it occurred at
/// (`None`: the stream ended with the span still open).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanError {
    /// 0-based index of the offending record; `None` at end of stream.
    pub index: Option<usize>,
    /// What was violated.
    pub message: String,
}

impl fmt::Display for SpanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some(index) => write!(f, "record {index}: {}", self.message),
            None => write!(f, "end of stream: {}", self.message),
        }
    }
}

impl std::error::Error for SpanError {}

/// Builder state while a campaign span is open.
struct OpenCampaign {
    span: CampaignSpan,
}

/// Reconstructs the span tree of a record stream.
///
/// # Errors
///
/// Returns a [`SpanError`] describing the first nesting violation.
pub fn reconstruct(records: &[TraceRecord]) -> Result<SpanTree, SpanError> {
    let mut tree = SpanTree {
        campaigns: Vec::new(),
        standalone: Vec::new(),
    };
    let mut campaign: Option<OpenCampaign> = None;
    let mut sweep: Option<SweepSpan> = None;

    for (index, record) in records.iter().enumerate() {
        let violation = |message: &str| SpanError {
            index: Some(index),
            message: message.to_owned(),
        };
        match &record.event {
            TraceEvent::CampaignStarted {
                chip,
                rail,
                benchmarks,
                cores,
                steps,
                iterations,
                shards,
                seed,
            } => {
                if campaign.is_some() {
                    return Err(violation("CampaignStarted inside an open campaign"));
                }
                campaign = Some(OpenCampaign {
                    span: CampaignSpan {
                        chip: chip.clone(),
                        rail: rail.clone(),
                        benchmarks: *benchmarks,
                        cores: *cores,
                        steps: *steps,
                        iterations: *iterations,
                        shards: *shards,
                        seed: *seed,
                        declared_runs: 0,
                        declared_power_cycles: 0,
                        started: record.clone(),
                        schedule: Vec::new(),
                        sweeps: Vec::new(),
                        decisions: Vec::new(),
                        profile: Vec::new(),
                        finished: record.clone(),
                    },
                });
            }
            TraceEvent::CampaignFinished { runs, power_cycles } => {
                let Some(mut open) = campaign.take() else {
                    return Err(violation("CampaignFinished without an open campaign"));
                };
                if sweep.is_some() {
                    return Err(violation("CampaignFinished inside an open sweep"));
                }
                open.span.declared_runs = *runs;
                open.span.declared_power_cycles = *power_cycles;
                open.span.finished = record.clone();
                tree.campaigns.push(open.span);
            }
            TraceEvent::ShardScheduled { .. } => match (&mut campaign, &sweep) {
                (Some(open), None) => open.span.schedule.push(record.clone()),
                _ => return Err(violation("ShardScheduled outside the campaign preamble")),
            },
            TraceEvent::SweepStarted {
                program,
                dataset,
                core,
                shard,
            } => {
                if campaign.is_none() {
                    return Err(violation("SweepStarted outside a campaign"));
                }
                if sweep.is_some() {
                    return Err(violation("SweepStarted inside an open sweep"));
                }
                sweep = Some(SweepSpan {
                    program: program.clone(),
                    dataset: dataset.clone(),
                    core: *core,
                    shard: *shard,
                    declared_runs: 0,
                    started: record.clone(),
                    leaves: Vec::new(),
                    finished: record.clone(),
                });
            }
            TraceEvent::SweepFinished { runs, .. } => {
                let Some(mut open) = sweep.take() else {
                    return Err(violation("SweepFinished without an open sweep"));
                };
                open.declared_runs = *runs;
                open.finished = record.clone();
                match &mut campaign {
                    Some(c) => c.span.sweeps.push(open),
                    // Unreachable: SweepStarted already required a campaign.
                    None => return Err(violation("SweepFinished outside a campaign")),
                }
            }
            TraceEvent::GoldenCaptured { .. }
            | TraceEvent::VoltageStepped { .. }
            | TraceEvent::RailSet { .. }
            | TraceEvent::WatchdogPowerCycle { .. }
            | TraceEvent::CacheErrorReported { .. }
            | TraceEvent::RunCompleted { .. }
            | TraceEvent::SearchStep { .. }
            | TraceEvent::CacheLookup { .. }
            | TraceEvent::SearchConcluded { .. }
            | TraceEvent::EarlyStop { .. }
            | TraceEvent::ProfileSample { .. } => match &mut sweep {
                Some(open) => open.leaves.push(record.clone()),
                None => return Err(violation("sweep-scoped event outside a sweep")),
            },
            TraceEvent::ProfilePhase { .. } => match (&mut campaign, &sweep) {
                (Some(open), None) => open.span.profile.push(record.clone()),
                _ => return Err(violation("ProfilePhase outside the campaign epilogue")),
            },
            TraceEvent::VoltageDecision { .. } => match (&mut campaign, &mut sweep) {
                (_, Some(open)) => open.leaves.push(record.clone()),
                (Some(c), None) => c.span.decisions.push(record.clone()),
                (None, None) => tree.standalone.push(record.clone()),
            },
        }
    }
    if sweep.is_some() {
        return Err(SpanError {
            index: None,
            message: "stream ended inside an open sweep".to_owned(),
        });
    }
    if campaign.is_some() {
        return Err(SpanError {
            index: None,
            message: "stream ended inside an open campaign".to_owned(),
        });
    }
    Ok(tree)
}

/// Renders the span path enclosing record `index` of `records`, e.g.
/// `campaign TTT#0/pmd / sweep bwaves:ref@core0 / RunCompleted` — a
/// best-effort pinpoint that works even on streams whose tail is invalid.
#[must_use]
pub fn span_path_at(records: &[TraceRecord], index: usize) -> String {
    let mut campaign: Option<String> = None;
    let mut sweep: Option<String> = None;
    let upto = index.min(records.len().saturating_sub(1));
    for record in records.iter().take(upto + 1) {
        match &record.event {
            TraceEvent::CampaignStarted { chip, rail, .. } => {
                campaign = Some(format!("{chip}/{rail}"));
                sweep = None;
            }
            TraceEvent::CampaignFinished { .. } => {
                campaign = None;
                sweep = None;
            }
            TraceEvent::SweepStarted {
                program,
                dataset,
                core,
                ..
            } => sweep = Some(format!("{program}:{dataset}@core{core}")),
            TraceEvent::SweepFinished { .. } => sweep = None,
            _ => {}
        }
    }
    let mut path = String::new();
    if let Some(c) = campaign {
        path.push_str(&format!("campaign {c}"));
    }
    if let Some(s) = sweep {
        if !path.is_empty() {
            path.push_str(" / ");
        }
        path.push_str(&format!("sweep {s}"));
    }
    let leaf = records
        .get(index)
        .map_or("end of stream".to_owned(), |r| r.event.name().to_owned());
    if path.is_empty() {
        leaf
    } else {
        format!("{path} / {leaf}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::StreamFinalizer;

    fn seal(events: Vec<TraceEvent>) -> Vec<TraceRecord> {
        let mut fin = StreamFinalizer::new();
        events.into_iter().map(|e| fin.seal(e)).collect()
    }

    fn campaign_started() -> TraceEvent {
        TraceEvent::CampaignStarted {
            chip: "TTT#0".into(),
            rail: "pmd".into(),
            benchmarks: 1,
            cores: 1,
            steps: 2,
            iterations: 1,
            shards: 1,
            seed: 9,
        }
    }

    fn sweep_started() -> TraceEvent {
        TraceEvent::SweepStarted {
            program: "namd".into(),
            dataset: "ref".into(),
            core: 4,
            shard: 0,
        }
    }

    fn run() -> TraceEvent {
        TraceEvent::RunCompleted {
            program: "namd".into(),
            dataset: "ref".into(),
            core: 4,
            mv: 890,
            iteration: 0,
            effects: "NO".into(),
            severity: 0.0,
            runtime_s: 0.125,
            energy_j: 1e-2,
            corrected_errors: 0,
            uncorrected_errors: 0,
        }
    }

    fn full_stream() -> Vec<TraceRecord> {
        seal(vec![
            campaign_started(),
            TraceEvent::ShardScheduled { shard: 0, items: 2 },
            sweep_started(),
            run(),
            run(),
            TraceEvent::SweepFinished {
                program: "namd".into(),
                dataset: "ref".into(),
                core: 4,
                runs: 2,
            },
            TraceEvent::CampaignFinished {
                runs: 2,
                power_cycles: 0,
            },
        ])
    }

    #[test]
    fn reconstructs_headers_and_leaves() {
        let tree = reconstruct(&full_stream()).expect("valid stream");
        assert_eq!(tree.campaigns.len(), 1);
        assert!(tree.standalone.is_empty());
        let c = &tree.campaigns[0];
        assert_eq!((c.chip.as_str(), c.rail.as_str()), ("TTT#0", "pmd"));
        assert_eq!(c.seed, 9);
        assert_eq!(c.declared_runs, 2);
        assert_eq!(c.schedule.len(), 1);
        assert_eq!(c.sweeps.len(), 1);
        assert_eq!(c.records(), 7);
        let s = &c.sweeps[0];
        assert_eq!(s.label(), "namd:ref@core4");
        assert_eq!(s.leaves.len(), 2);
        assert_eq!(s.declared_runs, 2);
        assert_eq!(c.label(), "TTT#0/pmd");
    }

    #[test]
    fn rejects_unbalanced_spans_with_indices() {
        let records = seal(vec![campaign_started(), run()]);
        let err = reconstruct(&records).expect_err("leaf outside sweep");
        assert_eq!(err.index, Some(1));
        assert!(err.to_string().contains("outside a sweep"), "{err}");

        let records = seal(vec![campaign_started(), sweep_started()]);
        let err = reconstruct(&records).expect_err("stream ends inside sweep");
        assert_eq!(err.index, None);
        assert!(err.to_string().contains("open sweep"), "{err}");
    }

    #[test]
    fn standalone_decisions_live_outside_campaigns() {
        let records = seal(vec![TraceEvent::VoltageDecision {
            voltage_mv: 890,
            guardband_steps: 1,
            relative_power: 0.85,
            relative_performance: 1.0,
            energy_savings: 0.15,
        }]);
        let tree = reconstruct(&records).expect("valid");
        assert!(tree.campaigns.is_empty());
        assert_eq!(tree.standalone.len(), 1);
    }

    #[test]
    fn span_path_names_the_enclosing_spans() {
        let records = full_stream();
        assert_eq!(
            span_path_at(&records, 3),
            "campaign TTT#0/pmd / sweep namd:ref@core4 / RunCompleted"
        );
        assert_eq!(
            span_path_at(&records, 0),
            "campaign TTT#0/pmd / CampaignStarted"
        );
        assert_eq!(span_path_at(&records, 6), "CampaignFinished");
        assert_eq!(span_path_at(&[], 0), "end of stream");
    }
}
