//! The instrumentation-facing side of the telemetry layer.
//!
//! Instrumented code (simulator, runner, watchdog, governor) holds a
//! `&dyn Observer` (or an `Arc<dyn Observer>`) and reports raw
//! [`TraceEvent`]s through it. Observers use interior mutability so the
//! simulator can emit while the runner holds `&mut System`.
//!
//! The [`StreamFinalizer`] sits between raw events and [`Sink`]s: once the
//! runner has merged per-item buffers into the canonical order, the
//! finalizer assigns sequence numbers and the modelled campaign clock.
//!
//! [`Sink`]: crate::sink::Sink

use crate::event::{TraceEvent, TraceRecord};
use parking_lot::Mutex;

/// Receives raw telemetry events from instrumented code.
///
/// Implementations must be cheap when disabled: emission sites guard event
/// construction with [`Observer::enabled`], so a disabled observer makes
/// tracing free apart from one virtual call per site.
pub trait Observer: Send + Sync {
    /// Whether events should be constructed and reported at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn record(&self, event: &TraceEvent);
}

/// The disabled observer: reports nothing, and tells emission sites not to
/// build event payloads in the first place.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: &TraceEvent) {}
}

/// An ordered in-memory buffer of raw events — the per-work-item staging
/// area that makes sharded tracing deterministic: each sweep's events are
/// buffered here, and the runner merges whole buffers in canonical item
/// order regardless of which worker finished first.
#[derive(Debug, Default)]
pub struct EventBuffer {
    events: Mutex<Vec<TraceEvent>>,
}

impl EventBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        EventBuffer::default()
    }

    /// Removes and returns everything buffered so far, in emission order.
    #[must_use]
    pub fn drain(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl Observer for EventBuffer {
    fn record(&self, event: &TraceEvent) {
        self.events.lock().push(event.clone());
    }
}

/// Assigns sequence numbers and the modelled campaign clock to a stream of
/// raw events arriving in canonical order.
///
/// The clock is the running sum of modelled run durations (golden runs and
/// characterization runs); an executed event is stamped with the clock
/// *after* its own duration, so `t_model_s` is monotonically non-decreasing
/// over the stream and never involves wall-clock time.
#[derive(Debug, Clone, Default)]
pub struct StreamFinalizer {
    seq: u64,
    clock_s: f64,
}

impl StreamFinalizer {
    /// A finalizer at sequence 0, modelled time 0.
    #[must_use]
    pub fn new() -> Self {
        StreamFinalizer::default()
    }

    /// Stamps one event.
    pub fn seal(&mut self, event: TraceEvent) -> TraceRecord {
        self.clock_s += event.modelled_duration_s();
        let record = TraceRecord {
            seq: self.seq,
            t_model_s: self.clock_s,
            event,
        };
        self.seq += 1;
        record
    }

    /// The modelled campaign clock so far, seconds.
    #[must_use]
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// Number of events sealed so far.
    #[must_use]
    pub fn sealed(&self) -> u64 {
        self.seq
    }
}

/// Re-seals several finalized record streams into one canonical stream.
///
/// Concatenating sealed streams byte-for-byte is never valid: each input
/// starts its own sequence at 0 and its own modelled clock at 0, so the
/// result would violate the dense-sequence and monotonic-time contracts
/// [`validate_records`](crate::validate::validate_records) enforces.
/// Instead the merge strips every record back to its raw event and stamps
/// the whole concatenation through **one** fresh [`StreamFinalizer`] — a
/// pure function of the inputs and their order, so merging N per-chip
/// fleet streams in canonical chip order yields bytes identical to N
/// sequential campaigns sealed through a single finalizer.
#[must_use]
pub fn merge_streams<'a, I>(streams: I) -> Vec<TraceRecord>
where
    I: IntoIterator<Item = &'a [TraceRecord]>,
{
    let mut finalizer = StreamFinalizer::new();
    let mut merged = Vec::new();
    for stream in streams {
        for record in stream {
            merged.push(finalizer.seal(record.event.clone()));
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(runtime_s: f64) -> TraceEvent {
        TraceEvent::RunCompleted {
            program: "namd".into(),
            dataset: "ref".into(),
            core: 4,
            mv: 890,
            iteration: 0,
            effects: "NO".into(),
            severity: 0.0,
            runtime_s,
            energy_j: 1e-2,
            corrected_errors: 0,
            uncorrected_errors: 0,
        }
    }

    #[test]
    fn buffer_preserves_emission_order() {
        let buf = EventBuffer::new();
        buf.record(&TraceEvent::WatchdogPowerCycle { recovery: 2 });
        buf.record(&run(0.5));
        assert_eq!(buf.len(), 2);
        let events = buf.drain();
        assert_eq!(events[0].name(), "WatchdogPowerCycle");
        assert_eq!(events[1].name(), "RunCompleted");
        assert!(buf.is_empty());
    }

    #[test]
    fn finalizer_advances_the_modelled_clock() {
        let mut fin = StreamFinalizer::new();
        let a = fin.seal(TraceEvent::WatchdogPowerCycle { recovery: 1 });
        let b = fin.seal(run(0.25));
        let c = fin.seal(TraceEvent::WatchdogPowerCycle { recovery: 2 });
        assert_eq!((a.seq, b.seq, c.seq), (0, 1, 2));
        assert!(a.t_model_s.abs() < 1e-12);
        assert!((b.t_model_s - 0.25).abs() < 1e-12);
        assert!((c.t_model_s - 0.25).abs() < 1e-12);
        assert_eq!(fin.sealed(), 3);
    }

    #[test]
    fn null_observer_is_disabled() {
        let obs = NullObserver;
        assert!(!obs.enabled());
        obs.record(&run(0.1)); // must be a no-op
    }

    #[test]
    fn merge_reseals_sequence_and_clock_across_streams() {
        let mut fin = StreamFinalizer::new();
        let first: Vec<TraceRecord> = vec![fin.seal(run(0.25)), fin.seal(run(0.5))];
        let mut fin = StreamFinalizer::new();
        let second: Vec<TraceRecord> = vec![fin.seal(run(1.0))];

        // Both inputs restart seq/clock at zero; the merge must not.
        let merged = merge_streams([first.as_slice(), second.as_slice()]);
        assert_eq!(merged.len(), 3);
        assert_eq!(
            merged.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!((merged[2].t_model_s - 1.75).abs() < 1e-12);

        // Merging is exactly "seal the concatenated events once": a single
        // finalizer over the same events produces identical records.
        let mut fin = StreamFinalizer::new();
        let direct: Vec<TraceRecord> = [&first[..], &second[..]]
            .concat()
            .into_iter()
            .map(|r| fin.seal(r.event))
            .collect();
        assert_eq!(merged, direct);
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        assert!(merge_streams(std::iter::empty::<&[TraceRecord]>()).is_empty());
    }
}
