//! The typed event model: everything the characterization stack reports.
//!
//! Events mirror the phases of the paper's Figure 2. A campaign opens a
//! `CampaignStarted` span; each (benchmark, core) pair opens a
//! `SweepStarted` span; runs, voltage steps, golden captures, watchdog
//! recoveries and EDAC reports are leaves inside the sweep. The governor's
//! `VoltageDecision` may appear standalone (outside any campaign span).
//!
//! Every payload field is a primitive (strings, integers, modelled-time
//! floats) so the crate stays a leaf of the workspace graph and the JSONL
//! schema is self-describing.

use crate::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt;

/// One telemetry event, before sequence/clock assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A campaign began (the initialization phase completed).
    CampaignStarted {
        /// Chip identity, e.g. `TTT#0`.
        chip: String,
        /// Swept rail (`pmd` or `soc`).
        rail: String,
        /// Number of benchmarks in the campaign.
        benchmarks: u32,
        /// Number of target cores.
        cores: u32,
        /// Voltage steps in the sweep grid.
        steps: u32,
        /// Iterations per (benchmark, core, voltage) configuration.
        iterations: u32,
        /// Logical work shards: one per (benchmark, core) sweep item.
        /// Which worker thread executes a shard — and, more generally,
        /// which `CampaignExecutor` ran the campaign (serial, thread
        /// pool, anything conformant) — is an execution detail
        /// deliberately excluded from the schema, so streams are
        /// identical across executors and thread counts. Executor
        /// identity must never be added to any event.
        shards: u32,
        /// Campaign seed.
        seed: u64,
    },
    /// One logical shard of the campaign schedule: a single (benchmark,
    /// core) sweep item, announced in canonical order in the preamble.
    ShardScheduled {
        /// Canonical shard index (the item's position in benchmarks-major
        /// order).
        shard: u32,
        /// Planned runs in this shard (steps × iterations; early stops may
        /// execute fewer).
        items: u32,
    },
    /// A (benchmark, core) sweep began.
    SweepStarted {
        /// Benchmark name.
        program: String,
        /// Input dataset label.
        dataset: String,
        /// Target core index.
        core: u8,
        /// Logical shard index of this sweep (its canonical item order),
        /// never the executing worker thread.
        shard: u32,
    },
    /// The golden output digest was captured at nominal conditions.
    GoldenCaptured {
        /// Benchmark name.
        program: String,
        /// Input dataset label.
        dataset: String,
        /// Target core index.
        core: u8,
        /// The golden digest, hex-rendered.
        digest: String,
        /// Modelled runtime of the golden run, seconds.
        runtime_s: f64,
    },
    /// The sweep descended to a new voltage step.
    VoltageStepped {
        /// Swept rail (`pmd` or `soc`).
        rail: String,
        /// Step voltage, millivolts.
        mv: u32,
        /// 0-based step index within the sweep.
        step: u32,
    },
    /// A supply rail was programmed through the SLIMpro (raw regulation
    /// command — includes the per-run nominal restores of safe data
    /// collection, §2.2.1).
    RailSet {
        /// Regulated rail (`pmd` or `soc`).
        rail: String,
        /// Programmed voltage, millivolts.
        mv: u32,
    },
    /// The watchdog found the board hung and pressed the power button.
    WatchdogPowerCycle {
        /// 1-based ordinal of this recovery within the enclosing sweep.
        /// (Deliberately *not* the board's boot count: that accumulates per
        /// worker board and would differ between serial and sharded
        /// executions of the same campaign.)
        recovery: u32,
    },
    /// The EDAC driver reported a cache error (drained after a run).
    CacheErrorReported {
        /// Reporting array (`L1I`, `L1D`, `L2`, `L3`).
        level: String,
        /// Array instance (core index for L1, PMD index for L2, 0 for L3).
        instance: u8,
        /// Whether the error was corrected (CE) or only detected (UE).
        corrected: bool,
    },
    /// One characterization run finished and was classified.
    RunCompleted {
        /// Benchmark name.
        program: String,
        /// Input dataset label.
        dataset: String,
        /// Target core index.
        core: u8,
        /// Swept-rail voltage of the run, millivolts.
        mv: u32,
        /// Iteration index within the campaign.
        iteration: u32,
        /// Observed Table 3 effect set, e.g. `NO` or `SDC+CE`.
        effects: String,
        /// The run's severity contribution (Σ Table 4 weights).
        severity: f64,
        /// Modelled runtime, seconds.
        runtime_s: f64,
        /// Modelled energy, joules. Deterministic because every voltage
        /// step runs on a pristine board (the §2.2.1 initialization
        /// phase), so the thermal history feeding the power model never
        /// depends on which probes executed before.
        energy_j: f64,
        /// Corrected-error reports during the run.
        corrected_errors: u64,
        /// Uncorrected-error reports during the run.
        uncorrected_errors: u64,
    },
    /// An adaptive search strategy selected the next voltage step to probe
    /// (emitted only for machine-executed probes, never for cache replays).
    SearchStep {
        /// Benchmark name.
        program: String,
        /// Target core index.
        core: u8,
        /// Search strategy name (`bisection` or `warm-start`).
        strategy: String,
        /// Search phase: `vmin` (first-abnormal boundary) or `crash`
        /// (first-all-system-crash boundary).
        phase: String,
        /// 0-based grid step index chosen.
        step: u32,
        /// Step voltage, millivolts.
        mv: u32,
    },
    /// The campaign result cache was consulted for a probe.
    CacheLookup {
        /// Benchmark name.
        program: String,
        /// Input dataset label.
        dataset: String,
        /// Target core index.
        core: u8,
        /// What was looked up: `golden` or `step`.
        probe: String,
        /// Step voltage, millivolts (0 for golden lookups).
        mv: u32,
        /// Whether the cache held the result (hit ⇒ no machine work).
        hit: bool,
    },
    /// An adaptive search finished a (benchmark, core) item.
    SearchConcluded {
        /// Benchmark name.
        program: String,
        /// Target core index.
        core: u8,
        /// Search strategy name.
        strategy: String,
        /// Voltage steps actually probed on the machine.
        probed_steps: u32,
        /// Voltage steps the exhaustive grid would have visited.
        grid_steps: u32,
        /// Steps answered from the campaign cache instead of execution.
        cache_hits: u32,
    },
    /// The crash-stop policy ended a sweep early.
    EarlyStop {
        /// Benchmark name.
        program: String,
        /// Target core index.
        core: u8,
        /// Deepest voltage reached, millivolts.
        mv: u32,
        /// Consecutive all-system-crash steps that triggered the stop.
        consecutive_all_sc: u32,
    },
    /// Deterministic work-accounting sample for one pipeline phase of a
    /// sweep (profile plane 1). Counts *modelled* units of work — never
    /// wall-clock time, which lives in the opt-in timing sidecar so the
    /// stream stays byte-deterministic.
    ProfileSample {
        /// Benchmark name.
        program: String,
        /// Input dataset label.
        dataset: String,
        /// Target core index.
        core: u8,
        /// Pipeline phase: `board_init`, `golden_run`, `probe`,
        /// `search_step` or `cache_lookup`.
        phase: String,
        /// Kernel ops retired by the simulator in this phase.
        ops: u64,
        /// Fault-model samples drawn while executing this phase.
        fault_samples: u64,
        /// SRAM/ECC error events observed in this phase.
        sram_events: u64,
        /// Campaign-cache probes attributed to this phase.
        cache_probes: u64,
        /// Watchdog recoveries attributed to this phase.
        recoveries: u64,
    },
    /// A (benchmark, core) sweep finished.
    SweepFinished {
        /// Benchmark name.
        program: String,
        /// Input dataset label.
        dataset: String,
        /// Target core index.
        core: u8,
        /// Classified runs the sweep produced.
        runs: u32,
    },
    /// Campaign-level rollup of one pipeline phase's deterministic work
    /// counts, aggregated over every sweep in canonical item order
    /// (profile plane 1).
    ProfilePhase {
        /// Pipeline phase: `board_init`, `golden_run`, `probe`,
        /// `search_step` or `cache_lookup`.
        phase: String,
        /// Sweeps that contributed any work to the phase.
        sweeps: u64,
        /// Kernel ops retired by the simulator in this phase.
        ops: u64,
        /// Fault-model samples drawn while executing this phase.
        fault_samples: u64,
        /// SRAM/ECC error events observed in this phase.
        sram_events: u64,
        /// Campaign-cache probes attributed to this phase.
        cache_probes: u64,
        /// Watchdog recoveries attributed to this phase.
        recoveries: u64,
    },
    /// The campaign finished.
    CampaignFinished {
        /// Total classified runs.
        runs: u64,
        /// Watchdog power cycles performed.
        power_cycles: u32,
    },
    /// The undervolting governor chose an operating point (§5).
    VoltageDecision {
        /// The shared-rail voltage to program, millivolts.
        voltage_mv: u32,
        /// Guardband steps applied above the binding Vmin.
        guardband_steps: u32,
        /// Expected power relative to nominal.
        relative_power: f64,
        /// Expected throughput relative to all-full-speed.
        relative_performance: f64,
        /// Expected energy savings.
        energy_savings: f64,
    },
}

impl TraceEvent {
    /// The event's name (the JSON `event` tag).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::CampaignStarted { .. } => "CampaignStarted",
            TraceEvent::ShardScheduled { .. } => "ShardScheduled",
            TraceEvent::SweepStarted { .. } => "SweepStarted",
            TraceEvent::GoldenCaptured { .. } => "GoldenCaptured",
            TraceEvent::VoltageStepped { .. } => "VoltageStepped",
            TraceEvent::RailSet { .. } => "RailSet",
            TraceEvent::WatchdogPowerCycle { .. } => "WatchdogPowerCycle",
            TraceEvent::CacheErrorReported { .. } => "CacheErrorReported",
            TraceEvent::RunCompleted { .. } => "RunCompleted",
            TraceEvent::SearchStep { .. } => "SearchStep",
            TraceEvent::CacheLookup { .. } => "CacheLookup",
            TraceEvent::SearchConcluded { .. } => "SearchConcluded",
            TraceEvent::EarlyStop { .. } => "EarlyStop",
            TraceEvent::ProfileSample { .. } => "ProfileSample",
            TraceEvent::SweepFinished { .. } => "SweepFinished",
            TraceEvent::ProfilePhase { .. } => "ProfilePhase",
            TraceEvent::CampaignFinished { .. } => "CampaignFinished",
            TraceEvent::VoltageDecision { .. } => "VoltageDecision",
        }
    }

    /// Modelled time the event consumes on the campaign clock: the run
    /// duration for executed work, zero for markers.
    #[must_use]
    pub fn modelled_duration_s(&self) -> f64 {
        match self {
            TraceEvent::GoldenCaptured { runtime_s, .. }
            | TraceEvent::RunCompleted { runtime_s, .. } => *runtime_s,
            _ => 0.0,
        }
    }

    /// Encodes the event's payload fields (the JSON object minus the
    /// `event` tag and envelope). The inverse lives in [`crate::reader`];
    /// a round-trip test there keeps the two in sync.
    ///
    /// # Errors
    ///
    /// Fails when a float field is non-finite (finalized events never
    /// carry one).
    fn encode_payload(&self, map: &mut BTreeMap<String, Value>) -> Result<(), EncodeError> {
        match self {
            TraceEvent::CampaignStarted {
                chip,
                rail,
                benchmarks,
                cores,
                steps,
                iterations,
                shards,
                seed,
            } => {
                put_str(map, "chip", chip);
                put_str(map, "rail", rail);
                put_u64(map, "benchmarks", u64::from(*benchmarks));
                put_u64(map, "cores", u64::from(*cores));
                put_u64(map, "steps", u64::from(*steps));
                put_u64(map, "iterations", u64::from(*iterations));
                put_u64(map, "shards", u64::from(*shards));
                put_u64(map, "seed", *seed);
            }
            TraceEvent::ShardScheduled { shard, items } => {
                put_u64(map, "shard", u64::from(*shard));
                put_u64(map, "items", u64::from(*items));
            }
            TraceEvent::SweepStarted {
                program,
                dataset,
                core,
                shard,
            } => {
                put_str(map, "program", program);
                put_str(map, "dataset", dataset);
                put_u64(map, "core", u64::from(*core));
                put_u64(map, "shard", u64::from(*shard));
            }
            TraceEvent::GoldenCaptured {
                program,
                dataset,
                core,
                digest,
                runtime_s,
            } => {
                put_str(map, "program", program);
                put_str(map, "dataset", dataset);
                put_u64(map, "core", u64::from(*core));
                put_str(map, "digest", digest);
                put_f64(map, "runtime_s", *runtime_s)?;
            }
            TraceEvent::VoltageStepped { rail, mv, step } => {
                put_str(map, "rail", rail);
                put_u64(map, "mv", u64::from(*mv));
                put_u64(map, "step", u64::from(*step));
            }
            TraceEvent::RailSet { rail, mv } => {
                put_str(map, "rail", rail);
                put_u64(map, "mv", u64::from(*mv));
            }
            TraceEvent::WatchdogPowerCycle { recovery } => {
                put_u64(map, "recovery", u64::from(*recovery));
            }
            TraceEvent::CacheErrorReported {
                level,
                instance,
                corrected,
            } => {
                put_str(map, "level", level);
                put_u64(map, "instance", u64::from(*instance));
                map.insert("corrected".to_owned(), Value::Bool(*corrected));
            }
            TraceEvent::RunCompleted {
                program,
                dataset,
                core,
                mv,
                iteration,
                effects,
                severity,
                runtime_s,
                energy_j,
                corrected_errors,
                uncorrected_errors,
            } => {
                put_str(map, "program", program);
                put_str(map, "dataset", dataset);
                put_u64(map, "core", u64::from(*core));
                put_u64(map, "mv", u64::from(*mv));
                put_u64(map, "iteration", u64::from(*iteration));
                put_str(map, "effects", effects);
                put_f64(map, "severity", *severity)?;
                put_f64(map, "runtime_s", *runtime_s)?;
                put_f64(map, "energy_j", *energy_j)?;
                put_u64(map, "corrected_errors", *corrected_errors);
                put_u64(map, "uncorrected_errors", *uncorrected_errors);
            }
            TraceEvent::SearchStep {
                program,
                core,
                strategy,
                phase,
                step,
                mv,
            } => {
                put_str(map, "program", program);
                put_u64(map, "core", u64::from(*core));
                put_str(map, "strategy", strategy);
                put_str(map, "phase", phase);
                put_u64(map, "step", u64::from(*step));
                put_u64(map, "mv", u64::from(*mv));
            }
            TraceEvent::CacheLookup {
                program,
                dataset,
                core,
                probe,
                mv,
                hit,
            } => {
                put_str(map, "program", program);
                put_str(map, "dataset", dataset);
                put_u64(map, "core", u64::from(*core));
                put_str(map, "probe", probe);
                put_u64(map, "mv", u64::from(*mv));
                map.insert("hit".to_owned(), Value::Bool(*hit));
            }
            TraceEvent::SearchConcluded {
                program,
                core,
                strategy,
                probed_steps,
                grid_steps,
                cache_hits,
            } => {
                put_str(map, "program", program);
                put_u64(map, "core", u64::from(*core));
                put_str(map, "strategy", strategy);
                put_u64(map, "probed_steps", u64::from(*probed_steps));
                put_u64(map, "grid_steps", u64::from(*grid_steps));
                put_u64(map, "cache_hits", u64::from(*cache_hits));
            }
            TraceEvent::EarlyStop {
                program,
                core,
                mv,
                consecutive_all_sc,
            } => {
                put_str(map, "program", program);
                put_u64(map, "core", u64::from(*core));
                put_u64(map, "mv", u64::from(*mv));
                put_u64(map, "consecutive_all_sc", u64::from(*consecutive_all_sc));
            }
            TraceEvent::ProfileSample {
                program,
                dataset,
                core,
                phase,
                ops,
                fault_samples,
                sram_events,
                cache_probes,
                recoveries,
            } => {
                put_str(map, "program", program);
                put_str(map, "dataset", dataset);
                put_u64(map, "core", u64::from(*core));
                put_str(map, "phase", phase);
                put_u64(map, "ops", *ops);
                put_u64(map, "fault_samples", *fault_samples);
                put_u64(map, "sram_events", *sram_events);
                put_u64(map, "cache_probes", *cache_probes);
                put_u64(map, "recoveries", *recoveries);
            }
            TraceEvent::ProfilePhase {
                phase,
                sweeps,
                ops,
                fault_samples,
                sram_events,
                cache_probes,
                recoveries,
            } => {
                put_str(map, "phase", phase);
                put_u64(map, "sweeps", *sweeps);
                put_u64(map, "ops", *ops);
                put_u64(map, "fault_samples", *fault_samples);
                put_u64(map, "sram_events", *sram_events);
                put_u64(map, "cache_probes", *cache_probes);
                put_u64(map, "recoveries", *recoveries);
            }
            TraceEvent::SweepFinished {
                program,
                dataset,
                core,
                runs,
            } => {
                put_str(map, "program", program);
                put_str(map, "dataset", dataset);
                put_u64(map, "core", u64::from(*core));
                put_u64(map, "runs", u64::from(*runs));
            }
            TraceEvent::CampaignFinished { runs, power_cycles } => {
                put_u64(map, "runs", *runs);
                put_u64(map, "power_cycles", u64::from(*power_cycles));
            }
            TraceEvent::VoltageDecision {
                voltage_mv,
                guardband_steps,
                relative_power,
                relative_performance,
                energy_savings,
            } => {
                put_u64(map, "voltage_mv", u64::from(*voltage_mv));
                put_u64(map, "guardband_steps", u64::from(*guardband_steps));
                put_f64(map, "relative_power", *relative_power)?;
                put_f64(map, "relative_performance", *relative_performance)?;
                put_f64(map, "energy_savings", *energy_savings)?;
            }
        }
        Ok(())
    }
}

fn put_str(map: &mut BTreeMap<String, Value>, name: &str, value: &str) {
    map.insert(name.to_owned(), Value::String(value.to_owned()));
}

fn put_u64(map: &mut BTreeMap<String, Value>, name: &str, value: u64) {
    map.insert(name.to_owned(), Value::from_u64(value));
}

fn put_f64(
    map: &mut BTreeMap<String, Value>,
    name: &'static str,
    value: f64,
) -> Result<(), EncodeError> {
    if !value.is_finite() {
        return Err(EncodeError { field: name });
    }
    map.insert(name.to_owned(), Value::from_f64(value));
    Ok(())
}

/// A record could not be serialized: a float field was non-finite (JSON
/// has no representation for NaN/∞, and finalized streams never carry
/// them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeError {
    /// The offending field.
    pub field: &'static str,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "field '{}' is not a finite number", self.field)
    }
}

impl std::error::Error for EncodeError {}

/// A finalized event: sequence number and modelled-clock stamp assigned in
/// the canonical (scheduling-independent) stream order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// 0-based position in the stream.
    pub seq: u64,
    /// Modelled campaign time at (the end of) the event, seconds.
    pub t_model_s: f64,
    /// The event itself.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Encodes the record as a single flat JSON object: the `event` tag,
    /// the payload fields, and the `seq`/`t_model_s` envelope, all in one
    /// sorted-key map.
    ///
    /// # Errors
    ///
    /// Fails when a float field is non-finite (finalized records never
    /// carry one).
    pub fn to_value(&self) -> Result<Value, EncodeError> {
        let mut map = BTreeMap::new();
        map.insert("event".to_owned(), Value::from_str_val(self.event.name()));
        self.event.encode_payload(&mut map)?;
        put_u64(&mut map, "seq", self.seq);
        put_f64(&mut map, "t_model_s", self.t_model_s)?;
        Ok(Value::Object(map))
    }

    /// Renders the record as one byte-deterministic JSON line (keys sorted,
    /// no trailing newline).
    ///
    /// # Errors
    ///
    /// Fails for unserializable values (only possible for non-finite
    /// floats, which finalized records never carry).
    pub fn to_json_line(&self) -> Result<String, EncodeError> {
        Ok(json::render(&self.to_value()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_have_sorted_keys_and_event_tag() {
        let rec = TraceRecord {
            seq: 3,
            t_model_s: 0.25,
            event: TraceEvent::VoltageStepped {
                rail: "pmd".into(),
                mv: 905,
                step: 2,
            },
        };
        let line = rec.to_json_line().expect("serializable");
        assert_eq!(
            line,
            r#"{"event":"VoltageStepped","mv":905,"rail":"pmd","seq":3,"step":2,"t_model_s":0.25}"#
        );
    }

    #[test]
    fn records_roundtrip_through_json() {
        let rec = TraceRecord {
            seq: 0,
            t_model_s: 0.0,
            event: TraceEvent::RunCompleted {
                program: "bwaves".into(),
                dataset: "ref".into(),
                core: 0,
                mv: 900,
                iteration: 1,
                effects: "SDC+CE".into(),
                severity: 5.0,
                runtime_s: 1e-3,
                energy_j: 2.5e-2,
                corrected_errors: 2,
                uncorrected_errors: 0,
            },
        };
        let line = rec.to_json_line().expect("serializable");
        let back = crate::reader::read_jsonl(&line).expect("parseable");
        assert_eq!(back, vec![rec]);
    }

    #[test]
    fn non_finite_floats_are_encode_errors() {
        let rec = TraceRecord {
            seq: 0,
            t_model_s: f64::NAN,
            event: TraceEvent::WatchdogPowerCycle { recovery: 1 },
        };
        let err = rec.to_json_line().expect_err("NaN clock");
        assert_eq!(err.field, "t_model_s");
        assert!(err.to_string().contains("t_model_s"), "{err}");
    }

    #[test]
    fn modelled_duration_is_zero_for_markers() {
        let ev = TraceEvent::WatchdogPowerCycle { recovery: 2 };
        assert!(ev.modelled_duration_s() <= f64::EPSILON);
        let run = TraceEvent::GoldenCaptured {
            program: "namd".into(),
            dataset: "ref".into(),
            core: 4,
            digest: "00ff".into(),
            runtime_s: 0.5,
        };
        assert!((run.modelled_duration_s() - 0.5).abs() < 1e-12);
    }
}
