//! `trace-check`: validates emitted JSONL trace streams.
//!
//! ```text
//! trace-check <file.jsonl | dir>...
//! ```
//!
//! Directory arguments are walked recursively for `*.jsonl` files (in
//! sorted order). For each file, asserts the stream contract (one
//! parseable object per line, dense sequence numbers, monotonically
//! non-decreasing modelled time, balanced span nesting) and prints a
//! per-file pass/fail line plus a final summary. All files are checked
//! even after a failure; the exit code is non-zero if any failed.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: trace-check <file.jsonl | dir>...");
        return ExitCode::from(2);
    }
    let files = match margins_trace::collect_jsonl(&args) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("trace-check: {e}");
            return ExitCode::FAILURE;
        }
    };
    if files.is_empty() {
        eprintln!("trace-check: no .jsonl files found under the given paths");
        return ExitCode::FAILURE;
    }
    let mut failed = 0usize;
    for path in &files {
        let shown = path.display();
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                println!("FAIL {shown}: {e}");
                failed += 1;
                continue;
            }
        };
        match margins_trace::validate_jsonl(&text) {
            Ok(stats) => {
                let profiled = if stats.profile_samples + stats.profile_phases > 0 {
                    format!(
                        ", {} profile samples, {} phase rollups",
                        stats.profile_samples, stats.profile_phases
                    )
                } else {
                    String::new()
                };
                println!(
                    "ok   {shown} ({} records, {} campaigns, {} sweeps, {} runs, {} power cycles{profiled})",
                    stats.records, stats.campaigns, stats.sweeps, stats.runs, stats.power_cycles
                );
            }
            Err(e) => {
                println!("FAIL {shown}: {e}");
                failed += 1;
            }
        }
    }
    println!(
        "trace-check: {} passed, {} failed ({} files)",
        files.len() - failed,
        failed,
        files.len()
    );
    if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
