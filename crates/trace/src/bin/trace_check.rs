//! `trace-check`: validates emitted JSONL trace streams.
//!
//! ```text
//! trace-check <file.jsonl>...
//! ```
//!
//! For each file, asserts the stream contract (one parseable object per
//! line, dense sequence numbers, monotonically non-decreasing modelled
//! time, balanced span nesting) and prints summary statistics. Exits
//! non-zero on the first invalid file.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace-check <file.jsonl>...");
        return ExitCode::from(2);
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match margins_trace::validate_jsonl(&text) {
            Ok(stats) => println!(
                "{path}: ok ({} records, {} campaigns, {} sweeps, {} runs, {} power cycles)",
                stats.records, stats.campaigns, stats.sweeps, stats.runs, stats.power_cycles
            ),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
