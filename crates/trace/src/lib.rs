//! Deterministic campaign telemetry for the characterization stack.
//!
//! The paper's methodology is observational: six months of undervolting
//! campaigns whose value is the *log* of every system-level effect (§2.2's
//! initialization/execution/parsing phases). This crate is the simulated
//! framework's equivalent of that log — a typed event model with
//! campaign → sweep → run span scoping, a metrics registry of deterministic
//! counters and histograms, and three sinks:
//!
//! * [`MemorySink`] — an in-memory collector for tests,
//! * [`JsonlSink`] — a byte-deterministic JSONL writer (sorted fields,
//!   modelled time only — no wall clock ever enters the stream),
//! * [`ProgressSink`] — a human progress reporter for stderr.
//!
//! # Architecture
//!
//! Instrumented code (the simulator, the campaign runner, the watchdog, the
//! governor) emits raw [`TraceEvent`]s through the [`Observer`] trait.
//! Because sharded campaigns execute sweeps concurrently, raw events are
//! buffered per work item (an [`EventBuffer`] per sweep) and merged in the
//! canonical item order by the runner; the [`StreamFinalizer`] then assigns
//! each event its sequence number and modelled-time stamp, producing
//! [`TraceRecord`]s that are forwarded to [`Sink`]s. Two executions of the
//! same fixed-seed campaign therefore emit **byte-identical** JSONL
//! streams, whether the work ran serially or sharded over worker threads.
//!
//! # Determinism rules
//!
//! * No wall-clock time: `t_model_s` is the campaign's modelled clock, the
//!   canonical-order running sum of modelled run times.
//! * No scheduling-dependent fields: events carry nothing derived from
//!   cross-board state. Schedule events name *logical* shards (one per
//!   work item, in canonical order), never the worker-thread partition;
//!   quantities with board history (golden runtime, `energy_j`) are safe
//!   to log only because the runner gives every work item a pristine
//!   board.
//! * Sorted JSON fields, `\n` line endings, shortest-roundtrip floats.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod files;
pub mod json;
pub mod metrics;
pub mod observer;
pub mod reader;
pub mod sink;
pub mod span;
pub mod validate;

pub use event::{EncodeError, TraceEvent, TraceRecord};
pub use files::collect_jsonl;
pub use metrics::{Histogram, MergeError, MetricsRegistry};
pub use observer::{merge_streams, EventBuffer, NullObserver, Observer, StreamFinalizer};
pub use reader::{read_jsonl, ParseFailure};
pub use sink::{JsonlSink, MemorySink, ProgressSink, Sink};
pub use span::{reconstruct, span_path_at, CampaignSpan, SpanError, SpanTree, SweepSpan};
pub use validate::{validate_jsonl, validate_records, StreamError, StreamStats};
