//! Deterministic discovery of trace files on disk.
//!
//! `trace-check` and `trace-scope` both accept directories as well as
//! explicit files; [`collect_jsonl`] expands the former into a sorted
//! recursive listing of `*.jsonl` files so a directory argument yields the
//! same file order on every run and platform.

use std::io;
use std::path::{Path, PathBuf};

/// Expands a mixed list of files and directories into concrete trace
/// files. Explicit file arguments are kept verbatim (whatever their
/// extension); directories are walked recursively and contribute their
/// `*.jsonl` files in lexicographic path order.
///
/// # Errors
///
/// Fails if any argument does not exist or a directory cannot be read.
pub fn collect_jsonl<P: AsRef<Path>>(paths: &[P]) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for path in paths {
        let path = path.as_ref();
        let meta = std::fs::metadata(path)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
        if meta.is_dir() {
            walk_sorted(path, &mut files)?;
        } else {
            files.push(path.to_path_buf());
        }
    }
    Ok(files)
}

/// Appends every `*.jsonl` under `dir` (recursively) in sorted order.
fn walk_sorted(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", dir.display())))?
        .map(|entry| entry.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            walk_sorted(&entry, out)?;
        } else if entry.extension().is_some_and(|ext| ext == "jsonl") {
            out.push(entry);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("margins-trace-files-{name}-{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).expect("clean scratch");
        }
        std::fs::create_dir_all(&dir).expect("create scratch");
        dir
    }

    #[test]
    fn directories_recurse_sorted_and_filter_jsonl() {
        let dir = scratch_dir("walk");
        std::fs::create_dir(dir.join("sub")).expect("mkdir");
        for name in ["b.jsonl", "a.jsonl", "notes.txt", "sub/c.jsonl"] {
            std::fs::write(dir.join(name), "").expect("touch");
        }
        let found = collect_jsonl(&[&dir]).expect("walk");
        let names: Vec<String> = found
            .iter()
            .map(|p| {
                p.strip_prefix(&dir)
                    .expect("under scratch")
                    .to_string_lossy()
                    .into_owned()
            })
            .collect();
        assert_eq!(names, ["a.jsonl", "b.jsonl", "sub/c.jsonl"]);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn explicit_files_pass_through_and_missing_paths_fail() {
        let dir = scratch_dir("explicit");
        let file = dir.join("trace.log");
        std::fs::write(&file, "").expect("touch");
        let found = collect_jsonl(&[&file]).expect("explicit file");
        assert_eq!(found, vec![file]);
        let missing = dir.join("absent.jsonl");
        let err = collect_jsonl(&[&missing]).expect_err("missing path");
        assert!(err.to_string().contains("absent.jsonl"), "{err}");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
