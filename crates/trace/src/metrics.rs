//! The deterministic metrics registry.
//!
//! A [`MetricsRegistry`] is itself a [`Sink`]: fed the finalized record
//! stream, it maintains ordered counters and fixed-bucket histograms whose
//! contents depend only on the stream — two executions of the same campaign
//! produce identical registries, and the registry totals reconcile exactly
//! with the classified-run CSV (per-effect counts, watchdog power cycles,
//! step counts).

use crate::event::{TraceEvent, TraceRecord};
use crate::sink::Sink;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// A fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// first `bounds.len()` buckets; one overflow bucket catches the rest.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
}

impl Histogram {
    /// A histogram over the given ascending upper edges.
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Per-bucket counts (last bucket is the overflow bucket).
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// The bucket upper edges.
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Folds another histogram into this one (bucket-wise saturating
    /// addition).
    ///
    /// # Errors
    ///
    /// Fails if the bucket layouts differ: merging incompatible layouts
    /// would silently misplace observations.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), MergeError> {
        let same_bounds = self.bounds.len() == other.bounds.len()
            && self
                .bounds
                .iter()
                .zip(&other.bounds)
                // Exact layout identity, not numeric tolerance: bucket
                // edges are compile-time constants, never computed.
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !same_bounds {
            return Err(MergeError::BucketLayout {
                left: self.bounds.clone(),
                right: other.bounds.clone(),
            });
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = mine.saturating_add(*theirs);
        }
        self.sum += other.sum;
        Ok(())
    }
}

/// Why two registries (or histograms) could not be reconciled.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// Two histograms under the same name had different bucket layouts.
    BucketLayout {
        /// Bucket edges on the receiving side.
        left: Vec<f64>,
        /// Bucket edges on the incoming side.
        right: Vec<f64>,
    },
    /// The offending histogram, when merging whole registries.
    Histogram {
        /// Histogram name.
        name: String,
        /// The underlying layout mismatch.
        cause: Box<MergeError>,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::BucketLayout { left, right } => {
                write!(f, "bucket layouts differ: {left:?} vs {right:?}")
            }
            MergeError::Histogram { name, cause } => {
                write!(f, "histogram '{name}': {cause}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Ordered counters and histograms derived from the event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    /// Severity contributions of the runs at the current voltage step,
    /// flushed into `step_severity` on each step/sweep boundary.
    pending_step: Vec<f64>,
}

/// Upper edges for modelled per-run runtimes, seconds.
const RUNTIME_BOUNDS: [f64; 6] = [1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0];
/// Upper edges for severity values (between the Table 4 weight classes).
const SEVERITY_BOUNDS: [f64; 6] = [0.0, 1.5, 3.5, 7.5, 15.5, 23.5];

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Reads a counter (0 when never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, in name order.
    #[must_use]
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// Reads a histogram by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Adds `by` to a named counter, saturating at `u64::MAX` — a
    /// saturated counter stays comparable instead of wrapping to a small
    /// value and masquerading as a quiet campaign.
    pub fn incr(&mut self, name: &str, by: u64) {
        let slot = self.counters.entry(name.to_owned()).or_insert(0);
        *slot = slot.saturating_add(by);
    }

    /// Folds another registry into this one: counters add (saturating),
    /// same-name histograms merge bucket-wise, and both sides' pending
    /// step-severity buffers are flushed first so nothing is lost.
    ///
    /// Merging the per-shard registries of a sharded campaign yields the
    /// registry of the equivalent serial campaign, except `step_severity`:
    /// its per-step means need all shards' runs, so it reconciles only
    /// when each step's runs live on one shard.
    ///
    /// # Errors
    ///
    /// Fails if a same-name histogram has a different bucket layout.
    pub fn merge(&mut self, mut other: MetricsRegistry) -> Result<(), MergeError> {
        self.flush_step();
        other.flush_step();
        for (name, value) in other.counters {
            self.incr(&name, value);
        }
        for (name, histogram) in other.histograms {
            match self.histograms.get_mut(&name) {
                Some(mine) => mine
                    .merge(&histogram)
                    .map_err(|cause| MergeError::Histogram {
                        name: name.clone(),
                        cause: Box::new(cause),
                    })?,
                None => {
                    self.histograms.insert(name, histogram);
                }
            }
        }
        Ok(())
    }

    fn observe(&mut self, name: &str, bounds: &[f64], value: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    fn flush_step(&mut self) {
        if self.pending_step.is_empty() {
            return;
        }
        let n = self.pending_step.len() as f64;
        let step_severity: f64 = self.pending_step.iter().sum::<f64>() / n;
        self.pending_step.clear();
        self.observe("step_severity", &SEVERITY_BOUNDS, step_severity);
    }

    /// Renders the registry as a stable human-readable summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name} = {value}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{name}: n={} sum={:.6} buckets={:?}",
                h.count(),
                h.sum(),
                h.buckets()
            );
        }
        out
    }

    /// Renders the registry in the OpenMetrics text format: one counter
    /// family per counter (`_total`-suffixed samples), one histogram family
    /// per histogram (cumulative `_bucket{le=...}` samples plus `_sum` and
    /// `_count`), all `voltmargin_`-prefixed, unit-suffixed
    /// (`_s` → `_seconds` with a `# UNIT` line), in name order, terminated
    /// by `# EOF`. Depends only on the registry contents, so it is
    /// byte-identical across reruns; any buffered step severities are
    /// flushed into a snapshot first.
    #[must_use]
    pub fn to_openmetrics(&self) -> String {
        let mut snapshot = self.clone();
        snapshot.flush_step();
        let mut out = String::new();
        for (name, value) in &snapshot.counters {
            let (family, unit) = openmetrics_family(name.strip_suffix("_total").unwrap_or(name));
            let _ = writeln!(out, "# TYPE {family} counter");
            if let Some(unit) = unit {
                let _ = writeln!(out, "# UNIT {family} {unit}");
            }
            let _ = writeln!(out, "{family}_total {value}");
        }
        for (name, h) in &snapshot.histograms {
            let (family, unit) = openmetrics_family(name);
            let _ = writeln!(out, "# TYPE {family} histogram");
            if let Some(unit) = unit {
                let _ = writeln!(out, "# UNIT {family} {unit}");
            }
            let mut cumulative = 0u64;
            for (edge, count) in h.bounds().iter().zip(h.buckets()) {
                cumulative = cumulative.saturating_add(*count);
                let _ = writeln!(out, "{family}_bucket{{le=\"{edge}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{family}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{family}_sum {}", h.sum());
            let _ = writeln!(out, "{family}_count {}", h.count());
        }
        out.push_str("# EOF\n");
        out
    }
}

/// Maps an internal metric name to its `voltmargin_`-prefixed OpenMetrics
/// family name plus the unit implied by its suffix.
fn openmetrics_family(name: &str) -> (String, Option<&'static str>) {
    match name.strip_suffix("_s") {
        Some(stem) => (format!("voltmargin_{stem}_seconds"), Some("seconds")),
        None => match name.strip_suffix("_j") {
            Some(stem) => (format!("voltmargin_{stem}_joules"), Some("joules")),
            None => (format!("voltmargin_{name}"), None),
        },
    }
}

impl Sink for MetricsRegistry {
    fn emit(&mut self, record: &TraceRecord) {
        match &record.event {
            TraceEvent::CampaignStarted { .. } => self.incr("campaigns", 1),
            TraceEvent::ShardScheduled { .. } => self.incr("shards", 1),
            TraceEvent::SweepStarted { .. } => self.incr("sweeps", 1),
            TraceEvent::GoldenCaptured { .. } => self.incr("goldens_captured", 1),
            TraceEvent::VoltageStepped { .. } => {
                self.flush_step();
                self.incr("voltage_steps", 1);
            }
            TraceEvent::RailSet { .. } => self.incr("rail_sets", 1),
            TraceEvent::WatchdogPowerCycle { .. } => self.incr("watchdog_power_cycles", 1),
            TraceEvent::CacheErrorReported {
                level, corrected, ..
            } => {
                let kind = if *corrected { "ce" } else { "ue" };
                self.incr(&format!("cache_errors_{kind}_{level}"), 1);
            }
            TraceEvent::RunCompleted {
                effects,
                severity,
                runtime_s,
                ..
            } => {
                self.incr("runs_total", 1);
                for effect in effects.split('+') {
                    self.incr(&format!("runs_effect_{effect}"), 1);
                }
                self.observe("run_runtime_s", &RUNTIME_BOUNDS, *runtime_s);
                self.observe("run_severity", &SEVERITY_BOUNDS, *severity);
                self.pending_step.push(*severity);
            }
            TraceEvent::SearchStep { .. } => self.incr("search_steps", 1),
            TraceEvent::CacheLookup { hit, .. } => {
                let name = if *hit {
                    "campaign_cache_hits"
                } else {
                    "campaign_cache_misses"
                };
                self.incr(name, 1);
            }
            TraceEvent::SearchConcluded {
                probed_steps,
                grid_steps,
                ..
            } => {
                self.incr("search_items", 1);
                self.incr("search_probed_steps", u64::from(*probed_steps));
                self.incr("search_grid_steps", u64::from(*grid_steps));
            }
            TraceEvent::EarlyStop { .. } => self.incr("early_stops", 1),
            TraceEvent::ProfileSample {
                phase,
                ops,
                fault_samples,
                sram_events,
                cache_probes,
                recoveries,
                ..
            } => {
                self.incr("profile_samples", 1);
                self.incr(&format!("profile_{phase}_ops"), *ops);
                self.incr(&format!("profile_{phase}_fault_samples"), *fault_samples);
                self.incr(&format!("profile_{phase}_sram_events"), *sram_events);
                self.incr(&format!("profile_{phase}_cache_probes"), *cache_probes);
                self.incr(&format!("profile_{phase}_recoveries"), *recoveries);
            }
            TraceEvent::ProfilePhase {
                ops, fault_samples, ..
            } => {
                // Rollups of the per-sweep samples: only the campaign-wide
                // totals are kept, the per-phase shares live in the samples.
                self.incr("profile_phases", 1);
                self.incr("profile_ops", *ops);
                self.incr("profile_fault_samples", *fault_samples);
            }
            TraceEvent::SweepFinished { .. } => self.flush_step(),
            TraceEvent::CampaignFinished { .. } => self.flush_step(),
            TraceEvent::VoltageDecision { .. } => self.incr("governor_decisions", 1),
        }
    }

    fn finish(&mut self) {
        self.flush_step();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::StreamFinalizer;

    fn run(effects: &str, severity: f64) -> TraceEvent {
        TraceEvent::RunCompleted {
            program: "bwaves".into(),
            dataset: "ref".into(),
            core: 0,
            mv: 900,
            iteration: 0,
            effects: effects.into(),
            severity,
            runtime_s: 2e-3,
            energy_j: 1e-2,
            corrected_errors: 0,
            uncorrected_errors: 0,
        }
    }

    fn feed(registry: &mut MetricsRegistry, events: Vec<TraceEvent>) {
        let mut fin = StreamFinalizer::new();
        for e in events {
            let rec = fin.seal(e);
            registry.emit(&rec);
        }
        registry.finish();
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        h.observe(99.0);
        assert_eq!(h.buckets(), &[1, 1, 1]);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 101.0).abs() < 1e-12);
    }

    #[test]
    fn effect_classes_and_multi_effect_runs_are_counted() {
        let mut m = MetricsRegistry::new();
        feed(
            &mut m,
            vec![run("NO", 0.0), run("SDC+CE", 5.0), run("SC", 16.0)],
        );
        assert_eq!(m.counter("runs_total"), 3);
        assert_eq!(m.counter("runs_effect_NO"), 1);
        assert_eq!(m.counter("runs_effect_SDC"), 1);
        assert_eq!(m.counter("runs_effect_CE"), 1);
        assert_eq!(m.counter("runs_effect_SC"), 1);
        assert_eq!(m.counter("runs_effect_UE"), 0);
    }

    #[test]
    fn step_severity_flushes_on_step_boundaries() {
        let mut m = MetricsRegistry::new();
        feed(
            &mut m,
            vec![
                TraceEvent::VoltageStepped {
                    rail: "pmd".into(),
                    mv: 905,
                    step: 0,
                },
                run("NO", 0.0),
                run("SC", 16.0),
                TraceEvent::VoltageStepped {
                    rail: "pmd".into(),
                    mv: 900,
                    step: 1,
                },
                run("SC", 16.0),
            ],
        );
        let h = m.histogram("step_severity").expect("recorded");
        // Two steps: mean severities 8.0 and 16.0.
        assert_eq!(h.count(), 2);
        assert!((h.sum() - 24.0).abs() < 1e-12);
        assert_eq!(m.counter("voltage_steps"), 2);
    }

    #[test]
    fn cache_errors_and_power_cycles_are_keyed() {
        let mut m = MetricsRegistry::new();
        feed(
            &mut m,
            vec![
                TraceEvent::CacheErrorReported {
                    level: "L2".into(),
                    instance: 1,
                    corrected: true,
                },
                TraceEvent::CacheErrorReported {
                    level: "L3".into(),
                    instance: 0,
                    corrected: false,
                },
                TraceEvent::WatchdogPowerCycle { recovery: 1 },
            ],
        );
        assert_eq!(m.counter("cache_errors_ce_L2"), 1);
        assert_eq!(m.counter("cache_errors_ue_L3"), 1);
        assert_eq!(m.counter("watchdog_power_cycles"), 1);
    }

    #[test]
    fn render_is_stable_and_ordered() {
        let mut m = MetricsRegistry::new();
        feed(&mut m, vec![run("NO", 0.0)]);
        let a = m.render();
        let b = m.clone().render();
        assert_eq!(a, b);
        assert!(a.contains("runs_total = 1"));
    }

    #[test]
    fn empty_histogram_has_zero_everything() {
        let h = Histogram::new(&[1.0, 2.0]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum().to_bits(), 0.0f64.to_bits());
        assert_eq!(h.buckets(), &[0, 0, 0]);
    }

    #[test]
    fn single_sample_lands_in_exactly_one_bucket() {
        for (value, expected) in [(0.5, [1, 0, 0]), (2.0, [0, 1, 0]), (9.0, [0, 0, 1])] {
            let mut h = Histogram::new(&[1.0, 2.0]);
            h.observe(value);
            assert_eq!(h.buckets(), &expected, "value {value}");
            assert_eq!(h.count(), 1);
            assert!((h.sum() - value).abs() < 1e-12);
        }
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut m = MetricsRegistry::new();
        m.incr("near_max", u64::MAX - 1);
        m.incr("near_max", 5);
        assert_eq!(m.counter("near_max"), u64::MAX);
        m.incr("near_max", 1);
        assert_eq!(m.counter("near_max"), u64::MAX);
    }

    #[test]
    fn histogram_merge_saturates_and_rejects_layout_mismatch() {
        let mut a = Histogram::new(&[1.0]);
        let mut b = Histogram::new(&[1.0]);
        a.observe(0.5);
        b.observe(0.5);
        b.observe(3.0);
        a.merge(&b).expect("same layout");
        assert_eq!(a.buckets(), &[2, 1]);
        assert!((a.sum() - 4.0).abs() < 1e-12);

        let other = Histogram::new(&[2.0]);
        let err = a.merge(&other).expect_err("layout mismatch");
        assert!(matches!(err, MergeError::BucketLayout { .. }));
    }

    #[test]
    fn per_shard_registries_merge_to_the_whole_stream_registry() {
        // One registry per "shard", fed disjoint slices of the stream, must
        // reconcile with a single registry fed everything — counters and
        // per-run histograms exactly (step_severity excluded: its per-step
        // means are defined over the whole step, not per shard).
        let shard_a = vec![
            run("NO", 0.0),
            run("SDC+CE", 5.0),
            TraceEvent::WatchdogPowerCycle { recovery: 1 },
        ];
        let shard_b = vec![
            run("SC", 16.0),
            TraceEvent::CacheLookup {
                program: "bwaves".into(),
                dataset: "ref".into(),
                core: 0,
                probe: "vmin".into(),
                mv: 900,
                hit: true,
            },
        ];
        let mut whole = MetricsRegistry::new();
        feed(
            &mut whole,
            shard_a.iter().chain(&shard_b).cloned().collect(),
        );

        let mut merged = MetricsRegistry::new();
        for shard in [shard_a, shard_b] {
            let mut per_shard = MetricsRegistry::new();
            feed(&mut per_shard, shard);
            merged.merge(per_shard).expect("compatible layouts");
        }
        assert_eq!(merged.counters(), whole.counters());
        for name in ["run_runtime_s", "run_severity"] {
            assert_eq!(
                merged.histogram(name).expect("merged"),
                whole.histogram(name).expect("whole"),
                "{name}"
            );
        }
    }

    #[test]
    fn merging_pending_severities_flushes_both_sides() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        let mut fin = StreamFinalizer::new();
        // Emit without finish(): severities stay buffered in pending_step.
        a.emit(&fin.seal(run("SC", 16.0)));
        b.emit(&fin.seal(run("NO", 0.0)));
        a.merge(b).expect("compatible");
        let h = a.histogram("step_severity").expect("flushed");
        assert_eq!(h.count(), 2);
        assert!((h.sum() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn openmetrics_exposition_is_deterministic_and_terminated() {
        let mut m = MetricsRegistry::new();
        feed(
            &mut m,
            vec![
                TraceEvent::VoltageStepped {
                    rail: "pmd".into(),
                    mv: 905,
                    step: 0,
                },
                run("NO", 0.0),
                run("SC", 16.0),
            ],
        );
        let text = m.to_openmetrics();
        assert_eq!(text, m.clone().to_openmetrics());
        assert!(text.ends_with("# EOF\n"));
        assert!(text.contains("# TYPE voltmargin_runs counter"));
        assert!(text.contains("voltmargin_runs_total 2"));
        assert!(text.contains("# TYPE voltmargin_run_runtime_seconds histogram"));
        assert!(text.contains("# UNIT voltmargin_run_runtime_seconds seconds"));
        assert!(text.contains("voltmargin_run_runtime_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("voltmargin_run_runtime_seconds_count 2"));
        // Cumulative buckets: every run of 2e-3 s falls at or under 1e-2.
        assert!(text.contains("voltmargin_run_runtime_seconds_bucket{le=\"0.01\"} 2"));
        // Exposition does not mutate the registry's buffered state.
        assert!(text.contains("voltmargin_step_severity_count 1"));
        assert_eq!(m.histogram("step_severity").map(Histogram::count), Some(1));
    }
}
