//! The deterministic metrics registry.
//!
//! A [`MetricsRegistry`] is itself a [`Sink`]: fed the finalized record
//! stream, it maintains ordered counters and fixed-bucket histograms whose
//! contents depend only on the stream — two executions of the same campaign
//! produce identical registries, and the registry totals reconcile exactly
//! with the classified-run CSV (per-effect counts, watchdog power cycles,
//! step counts).

use crate::event::{TraceEvent, TraceRecord};
use crate::sink::Sink;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// first `bounds.len()` buckets; one overflow bucket catches the rest.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
}

impl Histogram {
    /// A histogram over the given ascending upper edges.
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Per-bucket counts (last bucket is the overflow bucket).
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// The bucket upper edges.
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }
}

/// Ordered counters and histograms derived from the event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    /// Severity contributions of the runs at the current voltage step,
    /// flushed into `step_severity` on each step/sweep boundary.
    pending_step: Vec<f64>,
}

/// Upper edges for modelled per-run runtimes, seconds.
const RUNTIME_BOUNDS: [f64; 6] = [1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0];
/// Upper edges for severity values (between the Table 4 weight classes).
const SEVERITY_BOUNDS: [f64; 6] = [0.0, 1.5, 3.5, 7.5, 15.5, 23.5];

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Reads a counter (0 when never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, in name order.
    #[must_use]
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// Reads a histogram by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    fn incr(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    fn observe(&mut self, name: &str, bounds: &[f64], value: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    fn flush_step(&mut self) {
        if self.pending_step.is_empty() {
            return;
        }
        let n = self.pending_step.len() as f64;
        let step_severity: f64 = self.pending_step.iter().sum::<f64>() / n;
        self.pending_step.clear();
        self.observe("step_severity", &SEVERITY_BOUNDS, step_severity);
    }

    /// Renders the registry as a stable human-readable summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name} = {value}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{name}: n={} sum={:.6} buckets={:?}",
                h.count(),
                h.sum(),
                h.buckets()
            );
        }
        out
    }
}

impl Sink for MetricsRegistry {
    fn emit(&mut self, record: &TraceRecord) {
        match &record.event {
            TraceEvent::CampaignStarted { .. } => self.incr("campaigns", 1),
            TraceEvent::ShardScheduled { .. } => self.incr("shards", 1),
            TraceEvent::SweepStarted { .. } => self.incr("sweeps", 1),
            TraceEvent::GoldenCaptured { .. } => self.incr("goldens_captured", 1),
            TraceEvent::VoltageStepped { .. } => {
                self.flush_step();
                self.incr("voltage_steps", 1);
            }
            TraceEvent::RailSet { .. } => self.incr("rail_sets", 1),
            TraceEvent::WatchdogPowerCycle { .. } => self.incr("watchdog_power_cycles", 1),
            TraceEvent::CacheErrorReported {
                level, corrected, ..
            } => {
                let kind = if *corrected { "ce" } else { "ue" };
                self.incr(&format!("cache_errors_{kind}_{level}"), 1);
            }
            TraceEvent::RunCompleted {
                effects,
                severity,
                runtime_s,
                ..
            } => {
                self.incr("runs_total", 1);
                for effect in effects.split('+') {
                    self.incr(&format!("runs_effect_{effect}"), 1);
                }
                self.observe("run_runtime_s", &RUNTIME_BOUNDS, *runtime_s);
                self.observe("run_severity", &SEVERITY_BOUNDS, *severity);
                self.pending_step.push(*severity);
            }
            TraceEvent::SearchStep { .. } => self.incr("search_steps", 1),
            TraceEvent::CacheLookup { hit, .. } => {
                let name = if *hit {
                    "campaign_cache_hits"
                } else {
                    "campaign_cache_misses"
                };
                self.incr(name, 1);
            }
            TraceEvent::SearchConcluded {
                probed_steps,
                grid_steps,
                ..
            } => {
                self.incr("search_items", 1);
                self.incr("search_probed_steps", u64::from(*probed_steps));
                self.incr("search_grid_steps", u64::from(*grid_steps));
            }
            TraceEvent::EarlyStop { .. } => self.incr("early_stops", 1),
            TraceEvent::SweepFinished { .. } => self.flush_step(),
            TraceEvent::CampaignFinished { .. } => self.flush_step(),
            TraceEvent::VoltageDecision { .. } => self.incr("governor_decisions", 1),
        }
    }

    fn finish(&mut self) {
        self.flush_step();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::StreamFinalizer;

    fn run(effects: &str, severity: f64) -> TraceEvent {
        TraceEvent::RunCompleted {
            program: "bwaves".into(),
            dataset: "ref".into(),
            core: 0,
            mv: 900,
            iteration: 0,
            effects: effects.into(),
            severity,
            runtime_s: 2e-3,
            energy_j: 1e-2,
            corrected_errors: 0,
            uncorrected_errors: 0,
        }
    }

    fn feed(registry: &mut MetricsRegistry, events: Vec<TraceEvent>) {
        let mut fin = StreamFinalizer::new();
        for e in events {
            let rec = fin.seal(e);
            registry.emit(&rec);
        }
        registry.finish();
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        h.observe(99.0);
        assert_eq!(h.buckets(), &[1, 1, 1]);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 101.0).abs() < 1e-12);
    }

    #[test]
    fn effect_classes_and_multi_effect_runs_are_counted() {
        let mut m = MetricsRegistry::new();
        feed(
            &mut m,
            vec![run("NO", 0.0), run("SDC+CE", 5.0), run("SC", 16.0)],
        );
        assert_eq!(m.counter("runs_total"), 3);
        assert_eq!(m.counter("runs_effect_NO"), 1);
        assert_eq!(m.counter("runs_effect_SDC"), 1);
        assert_eq!(m.counter("runs_effect_CE"), 1);
        assert_eq!(m.counter("runs_effect_SC"), 1);
        assert_eq!(m.counter("runs_effect_UE"), 0);
    }

    #[test]
    fn step_severity_flushes_on_step_boundaries() {
        let mut m = MetricsRegistry::new();
        feed(
            &mut m,
            vec![
                TraceEvent::VoltageStepped {
                    rail: "pmd".into(),
                    mv: 905,
                    step: 0,
                },
                run("NO", 0.0),
                run("SC", 16.0),
                TraceEvent::VoltageStepped {
                    rail: "pmd".into(),
                    mv: 900,
                    step: 1,
                },
                run("SC", 16.0),
            ],
        );
        let h = m.histogram("step_severity").expect("recorded");
        // Two steps: mean severities 8.0 and 16.0.
        assert_eq!(h.count(), 2);
        assert!((h.sum() - 24.0).abs() < 1e-12);
        assert_eq!(m.counter("voltage_steps"), 2);
    }

    #[test]
    fn cache_errors_and_power_cycles_are_keyed() {
        let mut m = MetricsRegistry::new();
        feed(
            &mut m,
            vec![
                TraceEvent::CacheErrorReported {
                    level: "L2".into(),
                    instance: 1,
                    corrected: true,
                },
                TraceEvent::CacheErrorReported {
                    level: "L3".into(),
                    instance: 0,
                    corrected: false,
                },
                TraceEvent::WatchdogPowerCycle { recovery: 1 },
            ],
        );
        assert_eq!(m.counter("cache_errors_ce_L2"), 1);
        assert_eq!(m.counter("cache_errors_ue_L3"), 1);
        assert_eq!(m.counter("watchdog_power_cycles"), 1);
    }

    #[test]
    fn render_is_stable_and_ordered() {
        let mut m = MetricsRegistry::new();
        feed(&mut m, vec![run("NO", 0.0)]);
        let a = m.render();
        let b = m.clone().render();
        assert_eq!(a, b);
        assert!(a.contains("runs_total = 1"));
    }
}
