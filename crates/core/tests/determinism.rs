//! Fixed-seed campaigns must be bit-for-bit reproducible.
//!
//! The margins-lint rules (no unseeded RNG, no hash-ordered iteration, no
//! wall-clock reads in the deterministic path) exist to keep this property
//! true; this test is the end-to-end check: two executions of the same
//! campaign render **byte-identical** CSV reports, whether the work runs
//! serially or sharded over worker threads.

use margins_core::config::CampaignConfig;
use margins_core::runner::Campaign;
use margins_core::severity::SeverityWeights;
use margins_core::{regions, report};
use margins_sim::{ChipSpec, CoreId, Corner, Millivolts};

fn campaign() -> Campaign {
    let cfg = CampaignConfig::builder()
        .benchmarks(["bwaves", "namd"])
        .cores([CoreId::new(0), CoreId::new(4)])
        .iterations(2)
        .start_voltage(Millivolts::new(915))
        .floor_voltage(Millivolts::new(885))
        .seed(0xC0FFEE)
        .build()
        .expect("static campaign config is valid");
    Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg)
}

#[test]
fn repeated_runs_render_byte_identical_csv() {
    let first = campaign().execute();
    let second = campaign().execute();
    assert_eq!(
        report::runs_csv(&first),
        report::runs_csv(&second),
        "two executions of the same seed must render identical run CSVs"
    );
    let weights = SeverityWeights::paper();
    let a = regions::analyze(&first, &weights);
    let b = regions::analyze(&second, &weights);
    assert_eq!(report::regions_csv(&a), report::regions_csv(&b));
}

#[test]
fn sharded_execution_renders_the_serial_csv() {
    // Sharding respawns one simulated board per worker, so the accumulated
    // thermal history — and with it the trailing energy_j column — may
    // legitimately differ in its last digits. Every other column (outcomes,
    // effects, voltages, counters-derived runtime) must match byte for byte.
    let serial = campaign().execute();
    let sharded = campaign().execute_parallel(4);
    let strip_energy = |csv: &str| -> String {
        csv.lines()
            .map(|l| match l.rfind(',') {
                Some(i) => &l[..i],
                None => l,
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip_energy(&report::runs_csv(&serial)),
        strip_energy(&report::runs_csv(&sharded)),
        "sharding must not change any report column except energy_j"
    );
    // And sharding is itself reproducible: same shard count, same bytes.
    assert_eq!(
        report::runs_csv(&sharded),
        report::runs_csv(&campaign().execute_parallel(4))
    );
}

#[test]
fn run_rows_expose_on_grid_millivolts() {
    // The sim → core boundary carries typed Millivolts; every reported
    // voltage sits on the 5 mV regulator grid within the swept band.
    let out = campaign().execute();
    for r in &out.runs {
        assert_eq!(r.pmd_mv.get() % 5, 0, "{} is off-grid", r.pmd_mv);
        assert!(r.pmd_mv <= Millivolts::new(915));
        assert_eq!(r.soc_mv, Millivolts::new(950));
    }
}
