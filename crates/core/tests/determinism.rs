//! Fixed-seed campaigns must be bit-for-bit reproducible.
//!
//! The margins-lint rules (no unseeded RNG, no hash-ordered iteration, no
//! wall-clock reads in the deterministic path) exist to keep this property
//! true; this test is the end-to-end check: two executions of the same
//! campaign render **byte-identical** CSV reports, whether the work runs
//! serially or sharded over worker threads.

use margins_core::config::CampaignConfig;
use margins_core::runner::{Campaign, CampaignOutcome};
use margins_core::severity::SeverityWeights;
use margins_core::{regions, report};
use margins_sim::{ChipSpec, CoreId, Corner, Millivolts};
use margins_trace::{JsonlSink, MetricsRegistry, Sink};
use std::collections::BTreeMap;

fn campaign() -> Campaign {
    let cfg = CampaignConfig::builder()
        .benchmarks(["bwaves", "namd"])
        .cores([CoreId::new(0), CoreId::new(4)])
        .iterations(2)
        .start_voltage(Millivolts::new(915))
        .floor_voltage(Millivolts::new(885))
        .seed(0xC0FFEE)
        .build()
        .expect("static campaign config is valid");
    Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg)
}

#[test]
fn repeated_runs_render_byte_identical_csv() {
    let first = campaign().execute();
    let second = campaign().execute();
    assert_eq!(
        report::runs_csv(&first),
        report::runs_csv(&second),
        "two executions of the same seed must render identical run CSVs"
    );
    let weights = SeverityWeights::paper();
    let a = regions::analyze(&first, &weights);
    let b = regions::analyze(&second, &weights);
    assert_eq!(report::regions_csv(&a), report::regions_csv(&b));
}

#[test]
fn sharded_execution_renders_the_serial_csv() {
    // Every work item runs on a pristine board, so even history-sensitive
    // quantities (thermal state, and with it the energy_j column) are
    // schedule-independent: the full CSV — outcomes, effects, voltages,
    // runtime AND energy — must match byte for byte.
    let serial = campaign().execute();
    let sharded = campaign().execute_parallel(4);
    assert_eq!(
        report::runs_csv(&serial),
        report::runs_csv(&sharded),
        "sharding must not change any report column, energy_j included"
    );
    // And sharding is itself reproducible: same shard count, same bytes.
    assert_eq!(
        report::runs_csv(&sharded),
        report::runs_csv(&campaign().execute_parallel(4))
    );
}

fn traced_jsonl(threads: usize) -> (String, CampaignOutcome) {
    let mut sink = JsonlSink::new(Vec::new());
    let outcome = {
        let mut sinks: [&mut dyn Sink; 1] = [&mut sink];
        campaign().execute_traced(threads, &mut sinks)
    };
    let bytes = sink.into_inner().expect("Vec writer cannot fail");
    (String::from_utf8(bytes).expect("JSONL is UTF-8"), outcome)
}

#[test]
fn traced_serial_and_sharded_streams_are_byte_identical() {
    // The telemetry stream is part of the campaign's deterministic output:
    // the same seed must produce the same bytes no matter how the work was
    // sharded, and tracing must not perturb the campaign itself.
    let (serial, serial_out) = traced_jsonl(1);
    let (sharded, sharded_out) = traced_jsonl(4);
    assert!(!serial.is_empty());
    assert_eq!(
        serial, sharded,
        "serial and 4-way-sharded campaigns must write byte-identical JSONL"
    );

    // Tracing leaves the classified outcome untouched (energy aside, which
    // depends on per-board thermal history exactly as in the CSV test).
    let untraced = campaign().execute();
    assert_eq!(report::runs_csv(&serial_out), report::runs_csv(&untraced));
    assert_eq!(serial_out.goldens, sharded_out.goldens);
    assert_eq!(
        serial_out.watchdog_power_cycles,
        sharded_out.watchdog_power_cycles
    );

    // And the stream is structurally valid: dense sequence numbers, a
    // monotone modelled clock, properly nested campaign/sweep spans.
    let stats = margins_trace::validate_jsonl(&serial).expect("stream validates");
    assert_eq!(stats.campaigns, 1);
    assert_eq!(stats.sweeps, 4, "2 benchmarks x 2 cores");
    assert_eq!(stats.runs as usize, serial_out.runs.len());
    assert_eq!(stats.records as usize, serial.lines().count());
}

#[test]
fn metrics_registry_reconciles_with_the_outcome() {
    let mut metrics = MetricsRegistry::new();
    let outcome = {
        let mut sinks: [&mut dyn Sink; 1] = [&mut metrics];
        campaign().execute_traced(4, &mut sinks)
    };

    assert_eq!(metrics.counter("campaigns"), 1);
    assert_eq!(metrics.counter("sweeps"), 4);
    assert_eq!(metrics.counter("goldens_captured"), 4);
    assert_eq!(metrics.counter("runs_total"), outcome.runs.len() as u64);
    assert_eq!(
        metrics.counter("watchdog_power_cycles"),
        u64::from(outcome.watchdog_power_cycles)
    );

    // Effect-class totals must reconcile exactly with the classified runs.
    let mut expected: BTreeMap<String, u64> = BTreeMap::new();
    for run in &outcome.runs {
        for effect in run.effects.to_string().split('+') {
            *expected.entry(format!("runs_effect_{effect}")).or_insert(0) += 1;
        }
    }
    let counted: BTreeMap<String, u64> = metrics
        .counters()
        .iter()
        .filter(|(name, _)| name.starts_with("runs_effect_"))
        .map(|(name, value)| (name.clone(), *value))
        .collect();
    assert_eq!(expected, counted);
}

#[test]
fn legacy_shims_and_the_unified_run_path_agree() {
    // The `execute*` family is now thin shims over `Campaign::run`; a
    // direct `run` call under either built-in executor must reproduce the
    // shims' output byte for byte.
    use margins_core::exec::{ExecContext, SerialExecutor, ThreadPoolExecutor};

    let via_shim = campaign().execute();
    let serial = campaign()
        .run(&SerialExecutor, ExecContext::new())
        .expect("built-in executors uphold the delivery contract");
    let pooled = campaign()
        .run(&ThreadPoolExecutor::clamped(3), ExecContext::new())
        .expect("built-in executors uphold the delivery contract");
    assert_eq!(report::runs_csv(&via_shim), report::runs_csv(&serial));
    assert_eq!(report::runs_csv(&via_shim), report::runs_csv(&pooled));
    assert_eq!(via_shim.goldens, serial.goldens);
    assert_eq!(via_shim.goldens, pooled.goldens);
}

#[test]
fn run_rows_expose_on_grid_millivolts() {
    // The sim → core boundary carries typed Millivolts; every reported
    // voltage sits on the 5 mV regulator grid within the swept band.
    let out = campaign().execute();
    for r in &out.runs {
        assert_eq!(r.pmd_mv.get() % 5, 0, "{} is off-grid", r.pmd_mv);
        assert!(r.pmd_mv <= Millivolts::new(915));
        assert_eq!(r.soc_mv, Millivolts::new(950));
    }
}
