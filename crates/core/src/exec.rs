//! Campaign execution engines.
//!
//! A characterization campaign is a list of independent (benchmark, core)
//! *work items*; how those items are dispatched onto workers is an
//! execution detail that must never leak into results or telemetry. This
//! module owns that detail behind the [`CampaignExecutor`] trait: the
//! runner hands an executor the campaign's canonical item list (wrapped in
//! an [`ItemTask`]), and the executor runs each item — on the calling
//! thread ([`SerialExecutor`]), on a sharded worker pool
//! ([`ThreadPoolExecutor`]), or on whatever future engine (an async daemon
//! worker pool, a fleet dispatcher) implements the trait — and delivers
//! every [`ItemOutput`] **exactly once, in canonical item order**.
//!
//! That delivery contract is what keeps campaign streams byte-deterministic
//! regardless of the executor: each item stages its trace events in a
//! private [`EventBuffer`](margins_trace::EventBuffer), the executor's
//! reorder-merge releases completions in canonical order, and the runner's
//! single [`StreamFinalizer`](margins_trace::StreamFinalizer) seals them
//! into one stream. The runner verifies the contract at run time and
//! surfaces violations as typed [`ExecError`]s instead of corrupting a
//! stream, so any new executor can be validated against the same
//! conformance suite the built-in ones pass.
//!
//! Executor identity (serial vs pool, worker counts, scheduling) is never
//! recorded in the deterministic stream; see
//! [`Campaign::run`](crate::runner::Campaign::run).

use crate::cache::{CampaignCache, SharedCampaignCache};
use crate::profile::PhaseTallies;
use crate::runner::{Campaign, TracedItem};
use crate::search::SearchPriors;
use margins_sim::CoreId;
use margins_trace::{MetricsRegistry, Sink};
use std::collections::BTreeMap;
use std::fmt;

/// Typed executor failure.
///
/// Construction errors ([`ExecError::ZeroThreads`],
/// [`ExecError::TooManyThreads`]) reject nonsensical pool shapes before
/// any work starts; delivery errors ([`ExecError::OutOfOrderDelivery`],
/// [`ExecError::IncompleteDelivery`]) are raised by
/// [`Campaign::run`](crate::runner::Campaign::run) when an executor
/// violates its exactly-once, in-order delivery contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// A thread pool cannot have zero workers.
    ZeroThreads,
    /// The requested worker count exceeds the supported maximum.
    TooManyThreads {
        /// Workers requested.
        requested: usize,
        /// Largest supported pool ([`ThreadPoolExecutor::MAX_THREADS`]).
        max: usize,
    },
    /// The executor delivered an item out of canonical order.
    OutOfOrderDelivery {
        /// The canonical index the runner expected next.
        expected: usize,
        /// The index the executor delivered instead.
        delivered: usize,
    },
    /// The executor finished without delivering every item.
    IncompleteDelivery {
        /// Items actually delivered.
        delivered: usize,
        /// Items the campaign scheduled.
        expected: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::ZeroThreads => f.write_str("thread pool needs at least one worker"),
            ExecError::TooManyThreads { requested, max } => {
                write!(
                    f,
                    "thread pool of {requested} workers exceeds the maximum of {max}"
                )
            }
            ExecError::OutOfOrderDelivery {
                expected,
                delivered,
            } => write!(
                f,
                "executor delivered item {delivered} while item {expected} was expected \
                 (items must arrive in canonical order)"
            ),
            ExecError::IncompleteDelivery {
                delivered,
                expected,
            } => write!(
                f,
                "executor delivered {delivered} of {expected} scheduled items"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// One schedulable unit of a campaign: a (benchmark, core) pair at its
/// canonical position.
///
/// `index` equals the item's position in [`ItemTask::items`] — the order
/// the serial execution visits items (benchmarks-major) and the order the
/// merged trace stream presents them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkItem {
    /// Canonical position of the item in the campaign.
    pub index: usize,
    /// Index into the campaign's benchmark list.
    pub bench: usize,
    /// The core under characterization.
    pub core: CoreId,
}

/// The unit of work an executor dispatches: the campaign's canonical item
/// list plus everything needed to characterize one item.
///
/// Executors treat this as a black box — call [`ItemTask::run_item`] for
/// each of [`ItemTask::items`] and deliver the outputs in canonical order.
/// The task is `Sync`, so items may run on any thread in any order;
/// determinism comes from the per-item event staging inside `run_item`
/// and from the delivery order, not from where items execute.
pub struct ItemTask<'a> {
    campaign: &'a Campaign,
    items: &'a [WorkItem],
    traced: bool,
    cache: Option<&'a CampaignCache>,
    priors: Option<&'a SearchPriors>,
}

impl<'a> ItemTask<'a> {
    pub(crate) fn new(
        campaign: &'a Campaign,
        items: &'a [WorkItem],
        traced: bool,
        cache: Option<&'a CampaignCache>,
        priors: Option<&'a SearchPriors>,
    ) -> ItemTask<'a> {
        ItemTask {
            campaign,
            items,
            traced,
            cache,
            priors,
        }
    }

    /// The campaign's work items, in canonical order; every item's
    /// [`WorkItem::index`] equals its position in this slice.
    #[must_use]
    pub fn items(&self) -> &'a [WorkItem] {
        self.items
    }

    /// Characterizes one item on the calling thread.
    ///
    /// Pure with respect to scheduling: the output depends only on the
    /// campaign coordinates, never on which thread runs it or what ran
    /// before (every probe boots a pristine simulated board).
    #[must_use]
    pub fn run_item(&self, item: &WorkItem) -> ItemOutput {
        ItemOutput {
            index: item.index,
            item: self
                .campaign
                .run_work_item(item, self.traced, self.cache, self.priors),
        }
    }
}

/// The opaque result of one work item, tagged with its canonical index.
#[derive(Debug)]
pub struct ItemOutput {
    index: usize,
    item: TracedItem,
}

impl ItemOutput {
    /// The canonical index of the item this output belongs to.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    pub(crate) fn into_parts(self) -> (usize, TracedItem) {
        (self.index, self.item)
    }
}

/// An engine that executes a campaign's work items.
///
/// # Contract
///
/// `run_items` must call `deliver` **exactly once per item of
/// [`ItemTask::items`], in canonical order** (ascending
/// [`WorkItem::index`]). [`Campaign::run`](crate::runner::Campaign::run)
/// verifies both properties and fails with a typed [`ExecError`] on
/// violation, so a misbehaving executor can never corrupt a trace stream
/// or an outcome. Items themselves may execute on any thread in any
/// order; only delivery is ordered.
pub trait CampaignExecutor: Sync {
    /// A short human-readable engine name (CLI/log display only — never
    /// part of the deterministic stream).
    fn label(&self) -> &'static str;

    /// Executes every item of `task`, delivering outputs in canonical
    /// order.
    ///
    /// # Errors
    ///
    /// Executor-specific failures; the built-in executors never fail here
    /// (invalid pool shapes are rejected at construction).
    fn run_items(
        &self,
        task: &ItemTask<'_>,
        deliver: &mut dyn FnMut(ItemOutput),
    ) -> Result<(), ExecError>;
}

/// Runs every item on the calling thread, in canonical order.
///
/// The reference implementation of the executor contract: delivery order
/// is execution order, so there is nothing to reorder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SerialExecutor;

impl CampaignExecutor for SerialExecutor {
    fn label(&self) -> &'static str {
        "serial"
    }

    fn run_items(
        &self,
        task: &ItemTask<'_>,
        deliver: &mut dyn FnMut(ItemOutput),
    ) -> Result<(), ExecError> {
        for item in task.items() {
            deliver(task.run_item(item));
        }
        Ok(())
    }
}

/// Shards items round-robin over a pool of scoped worker threads.
///
/// Workers send completions over a channel as they finish; a reorder
/// buffer on the delivering side holds early completions until their
/// canonical position is reached, so delivery order — and therefore the
/// merged trace stream — is identical to [`SerialExecutor`]'s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPoolExecutor {
    threads: usize,
}

impl ThreadPoolExecutor {
    /// Largest supported pool. Far above any sensible shard count for an
    /// in-process campaign; the bound exists to reject obviously absurd
    /// requests (`--threads 1000000`) with a typed error instead of
    /// exhausting the host spawning threads.
    pub const MAX_THREADS: usize = 512;

    /// A pool of exactly `threads` workers.
    ///
    /// # Errors
    ///
    /// [`ExecError::ZeroThreads`] when `threads == 0`;
    /// [`ExecError::TooManyThreads`] above [`Self::MAX_THREADS`].
    pub fn new(threads: usize) -> Result<ThreadPoolExecutor, ExecError> {
        if threads == 0 {
            return Err(ExecError::ZeroThreads);
        }
        if threads > Self::MAX_THREADS {
            return Err(ExecError::TooManyThreads {
                requested: threads,
                max: Self::MAX_THREADS,
            });
        }
        Ok(ThreadPoolExecutor { threads })
    }

    /// A pool of `threads` workers clamped into the valid range
    /// `1..=MAX_THREADS` — the historical `execute_parallel` semantics,
    /// where 0 silently meant 1.
    #[must_use]
    pub fn clamped(threads: usize) -> ThreadPoolExecutor {
        ThreadPoolExecutor {
            threads: threads.clamp(1, Self::MAX_THREADS),
        }
    }

    /// The configured worker count (actual workers are additionally capped
    /// at the item count, so small campaigns never spawn idle threads).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl CampaignExecutor for ThreadPoolExecutor {
    fn label(&self) -> &'static str {
        "pool"
    }

    fn run_items(
        &self,
        task: &ItemTask<'_>,
        deliver: &mut dyn FnMut(ItemOutput),
    ) -> Result<(), ExecError> {
        let items = task.items();
        let workers = self.threads.min(items.len()).max(1);

        // Shard round-robin, like the serial order dealt across workers:
        // adjacent items land on different workers, which spreads the
        // expensive deep sweeps evenly.
        let mut shards: Vec<Vec<&WorkItem>> = vec![Vec::new(); workers];
        for (i, item) in items.iter().enumerate() {
            shards[i % workers].push(item);
        }

        crossbeam::thread::scope(|scope| {
            let (tx, rx) = crossbeam::channel::unbounded::<ItemOutput>();
            for shard in &shards {
                let tx = tx.clone();
                scope.spawn(move |_| {
                    for item in shard {
                        // A closed receiver means the campaign was
                        // abandoned; nothing useful remains to do with
                        // this item's result.
                        // lint: allow(swallowed-fallibility) — abandoned campaign: the receiver is gone by design
                        let _ = tx.send(task.run_item(item));
                    }
                });
            }
            drop(tx);

            // Reorder buffer: completions arrive in scheduling order;
            // deliver them in canonical item order.
            let mut pending: BTreeMap<usize, ItemOutput> = BTreeMap::new();
            let mut next = 0usize;
            for output in rx {
                pending.insert(output.index(), output);
                while let Some(ready) = pending.remove(&next) {
                    deliver(ready);
                    next += 1;
                }
            }
        })
        // lint: allow(no-panic) — scope error only surfaces worker panics
        .expect("campaign worker panicked");
        Ok(())
    }
}

/// A campaign result cache, as handed to [`Campaign::run`]: either an
/// exclusively borrowed [`CampaignCache`] (the single-campaign path) or a
/// [`SharedCampaignCache`] several concurrent campaigns append to.
///
/// Either way the campaign reads one immutable view of the cache for its
/// whole run — fresh results land after the last lookup (owned) or in the
/// shared append log (shared) — so lookups are schedule-independent and
/// results never depend on what a sibling campaign is doing concurrently.
#[derive(Debug)]
pub enum CacheHandle<'a> {
    /// Exclusive use of a plain cache; fresh results are inserted directly
    /// after the campaign.
    Owned(&'a mut CampaignCache),
    /// A shared concurrent store; fresh results are appended to its log
    /// and published after the campaign.
    Shared(&'a SharedCampaignCache),
}

/// Everything a campaign execution carries besides the executor: sinks,
/// metrics, cache, priors, and the profile rollup destination — one
/// context struct instead of five parameter permutations.
///
/// All fields default to "off" ([`ExecContext::default`]), matching the
/// bare `execute()` path: no sinks means no event is ever constructed.
#[derive(Default)]
pub struct ExecContext<'s, 'a> {
    /// Sinks receiving the finalized record stream, live and in canonical
    /// order. Empty disables tracing entirely.
    pub sinks: &'s mut [&'a mut dyn Sink],
    /// Campaign result cache (probes are replayed on hit, inserted on
    /// miss).
    pub cache: Option<CacheHandle<'s>>,
    /// Warm-start priors; when `None` and a cache is present, priors are
    /// derived from the cache before execution starts.
    pub priors: Option<&'s SearchPriors>,
    /// When present, rides the sink stream and accumulates the campaign's
    /// metrics (its presence alone makes the execution traced).
    pub metrics: Option<&'s mut MetricsRegistry>,
    /// When present, receives the campaign-level profile tallies —
    /// always computed, independent of `config.profile` (which only gates
    /// the trace events).
    pub profile_out: Option<&'s mut PhaseTallies>,
}

impl<'s, 'a> ExecContext<'s, 'a> {
    /// A context with everything off: untraced, uncached, unmetered.
    #[must_use]
    pub fn new() -> ExecContext<'s, 'a> {
        ExecContext::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_construction_validates_thread_counts() {
        assert_eq!(
            ThreadPoolExecutor::new(0).unwrap_err(),
            ExecError::ZeroThreads
        );
        assert_eq!(
            ThreadPoolExecutor::new(ThreadPoolExecutor::MAX_THREADS + 1).unwrap_err(),
            ExecError::TooManyThreads {
                requested: ThreadPoolExecutor::MAX_THREADS + 1,
                max: ThreadPoolExecutor::MAX_THREADS,
            }
        );
        assert_eq!(ThreadPoolExecutor::new(4).expect("valid").threads(), 4);
        assert_eq!(ThreadPoolExecutor::clamped(0).threads(), 1);
        assert_eq!(
            ThreadPoolExecutor::clamped(usize::MAX).threads(),
            ThreadPoolExecutor::MAX_THREADS
        );
    }

    #[test]
    fn errors_render_actionable_messages() {
        assert!(ExecError::ZeroThreads.to_string().contains("at least one"));
        let msg = ExecError::TooManyThreads {
            requested: 1_000_000,
            max: 512,
        }
        .to_string();
        assert!(msg.contains("1000000") && msg.contains("512"), "{msg}");
        let msg = ExecError::OutOfOrderDelivery {
            expected: 2,
            delivered: 5,
        }
        .to_string();
        assert!(msg.contains("item 5") && msg.contains("item 2"), "{msg}");
        let msg = ExecError::IncompleteDelivery {
            delivered: 3,
            expected: 8,
        }
        .to_string();
        assert!(msg.contains("3 of 8"), "{msg}");
    }

    #[test]
    fn executor_labels_are_stable() {
        assert_eq!(SerialExecutor.label(), "serial");
        assert_eq!(ThreadPoolExecutor::clamped(2).label(), "pool");
    }
}
