//! Assembly of prediction datasets (Figure 6, phases 2–3).
//!
//! The §4 models consume samples whose features are the 101 PMU counters
//! of a *nominal-conditions* profiling run of the benchmark (plus, for the
//! severity model, the voltage of the characterization step) and whose
//! target is the safe Vmin or the severity value observed during offline
//! characterization.

use crate::regions::CharacterizationResult;
use crate::runner::WorkloadProfile;
use margins_sim::counters::PmuEvent;
use margins_sim::CoreId;
use serde::{Deserialize, Serialize};

/// One regression sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionSample {
    /// Benchmark name (provenance, not a feature).
    pub program: String,
    /// Dataset label (provenance).
    pub dataset: String,
    /// Feature vector.
    pub features: Vec<f64>,
    /// Regression target (Vmin in mV, or severity units).
    pub target: f64,
}

/// Feature names of the severity dataset: the 101 counters plus the step
/// voltage.
#[must_use]
pub fn severity_feature_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = PmuEvent::ALL.iter().map(|e| e.label()).collect();
    names.push("STEP_VOLTAGE_MV");
    names
}

/// Feature names of the Vmin dataset: the 101 counters.
#[must_use]
pub fn vmin_feature_names() -> Vec<&'static str> {
    PmuEvent::ALL.iter().map(|e| e.label()).collect()
}

fn profile_for<'a>(
    profiles: &'a [WorkloadProfile],
    program: &str,
    dataset: &str,
) -> Option<&'a WorkloadProfile> {
    profiles
        .iter()
        .find(|p| p.name == program && p.dataset == dataset)
}

/// Builds the §4.3.1 Vmin dataset for `core`: one sample per profiled
/// benchmark whose sweep on that core produced a measurable Vmin.
///
/// Features: the 101 nominal counters. Target: the safe Vmin in mV.
#[must_use]
pub fn vmin_samples(
    result: &CharacterizationResult,
    profiles: &[WorkloadProfile],
    core: CoreId,
) -> Vec<PredictionSample> {
    let mut samples = Vec::new();
    for s in result.summaries.iter().filter(|s| s.core == core) {
        let (Some(vmin), Some(profile)) =
            (s.safe_vmin, profile_for(profiles, &s.program, &s.dataset))
        else {
            continue;
        };
        samples.push(PredictionSample {
            program: s.program.clone(),
            dataset: s.dataset.clone(),
            features: profile.counters.to_feature_vector(),
            target: f64::from(vmin.get()),
        });
    }
    samples
}

/// Builds the §4.3.2/§4.3.3 severity dataset for `core`: one sample per
/// abnormal (unsafe or crash region) voltage step of every profiled
/// benchmark's sweep on that core.
///
/// Features: the 101 nominal counters plus the step voltage. Target: the
/// severity value S_v of the step.
#[must_use]
pub fn severity_samples(
    result: &CharacterizationResult,
    profiles: &[WorkloadProfile],
    core: CoreId,
) -> Vec<PredictionSample> {
    let mut samples = Vec::new();
    for s in result.summaries.iter().filter(|s| s.core == core) {
        let Some(profile) = profile_for(profiles, &s.program, &s.dataset) else {
            continue;
        };
        let base = profile.counters.to_feature_vector();
        for step in s.abnormal_steps() {
            let mut features = base.clone();
            features.push(f64::from(step.mv));
            samples.push(PredictionSample {
                program: s.program.clone(),
                dataset: s.dataset.clone(),
                features,
                target: step.severity.value(),
            });
        }
    }
    samples
}

/// Splits samples into a dense feature matrix and target vector (the shape
/// `margins-predict` consumes).
#[must_use]
pub fn to_matrix(samples: &[PredictionSample]) -> (Vec<Vec<f64>>, Vec<f64>) {
    (
        samples.iter().map(|s| s.features.clone()).collect(),
        samples.iter().map(|s| s.target).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CampaignConfig;
    use crate::runner::{profile, Campaign};
    use crate::severity::SeverityWeights;
    use margins_sim::counters::NUM_EVENTS;
    use margins_sim::{ChipSpec, Corner, Millivolts};

    fn small_setup() -> (CharacterizationResult, Vec<WorkloadProfile>) {
        let cfg = CampaignConfig::builder()
            .benchmarks(["bwaves", "namd"])
            .cores([CoreId::new(0)])
            .iterations(3)
            .start_voltage(Millivolts::new(915))
            .floor_voltage(Millivolts::new(865))
            .seed(9)
            .build()
            .unwrap();
        let spec = ChipSpec::new(Corner::Ttt, 0);
        let out = Campaign::new(spec, cfg.clone()).execute();
        let result = crate::regions::analyze(&out, &SeverityWeights::paper());
        let profiles = profile(spec, &cfg.benchmarks, CoreId::new(0)).expect("validated names");
        (result, profiles)
    }

    #[test]
    fn feature_name_shapes() {
        assert_eq!(vmin_feature_names().len(), NUM_EVENTS);
        assert_eq!(severity_feature_names().len(), NUM_EVENTS + 1);
        assert_eq!(severity_feature_names().last(), Some(&"STEP_VOLTAGE_MV"));
    }

    #[test]
    fn vmin_samples_have_counter_features_and_mv_targets() {
        let (result, profiles) = small_setup();
        let samples = vmin_samples(&result, &profiles, CoreId::new(0));
        assert_eq!(samples.len(), 2);
        for s in &samples {
            assert_eq!(s.features.len(), NUM_EVENTS);
            assert!(
                (850.0..=920.0).contains(&s.target),
                "{}: {}",
                s.program,
                s.target
            );
        }
        // bwaves (higher stress) has the higher Vmin target.
        let get = |n: &str| samples.iter().find(|s| s.program == n).unwrap().target;
        assert!(get("bwaves") > get("namd"));
    }

    #[test]
    fn severity_samples_cover_the_abnormal_steps_only() {
        let (result, profiles) = small_setup();
        let samples = severity_samples(&result, &profiles, CoreId::new(0));
        assert!(
            !samples.is_empty(),
            "the sweep crosses bwaves' unsafe region"
        );
        for s in &samples {
            assert_eq!(s.features.len(), NUM_EVENTS + 1);
            assert!(s.target > 0.0, "abnormal steps have positive severity");
            let mv = *s.features.last().unwrap();
            assert!((860.0..=915.0).contains(&mv));
        }
    }

    #[test]
    fn matrix_conversion_shapes() {
        let (result, profiles) = small_setup();
        let samples = severity_samples(&result, &profiles, CoreId::new(0));
        let (x, y) = to_matrix(&samples);
        assert_eq!(x.len(), y.len());
        assert!(x.iter().all(|row| row.len() == NUM_EVENTS + 1));
    }

    #[test]
    fn missing_profile_skips_sample() {
        let (result, _) = small_setup();
        let samples = vmin_samples(&result, &[], CoreId::new(0));
        assert!(samples.is_empty());
    }
}
