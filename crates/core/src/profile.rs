//! Deterministic work accounting for the campaign profiling plane.
//!
//! Every profiled campaign attributes its simulator work — ops retired by
//! the executed kernels, Poisson fault samples drawn, SRAM/ECC events,
//! campaign-cache probes, watchdog recoveries — to one of five pipeline
//! phases. The tallies are pure functions of the campaign's deterministic
//! results (no clocks, no scheduling state), so a profiled trace stream
//! stays byte-identical across reruns and shard counts; wall-clock timing
//! lives in a separate opt-in sidecar, never in these counts.

use margins_sim::CoreId;
use margins_trace::TraceEvent;

/// The pipeline phases work is attributed to, in canonical stream order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Board bring-up: watchdog recoveries re-initializing a hung board.
    BoardInit,
    /// Golden-digest capture runs at nominal conditions.
    GoldenRun,
    /// Voltage-step probe runs dispatched by the exhaustive sweep.
    Probe,
    /// Voltage-step probe runs dispatched by an adaptive search plan.
    SearchStep,
    /// Campaign-cache lookups (golden and step probes, hit or miss).
    CacheLookup,
}

impl Phase {
    /// All phases in canonical order.
    pub const ALL: [Phase; 5] = [
        Phase::BoardInit,
        Phase::GoldenRun,
        Phase::Probe,
        Phase::SearchStep,
        Phase::CacheLookup,
    ];

    /// The phase's serialized name in profile events.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::BoardInit => "board_init",
            Phase::GoldenRun => "golden_run",
            Phase::Probe => "probe",
            Phase::SearchStep => "search_step",
            Phase::CacheLookup => "cache_lookup",
        }
    }

    /// Dense index of the phase in canonical order.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Work units consumed by one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkTally {
    /// Ops retired by executed kernels.
    pub ops: u64,
    /// Poisson accounting events the fault model drew.
    pub fault_samples: u64,
    /// SRAM/ECC events observed (corrected + uncorrected).
    pub sram_events: u64,
    /// Campaign-cache probes issued.
    pub cache_probes: u64,
    /// Watchdog recoveries performed.
    pub recoveries: u64,
}

impl WorkTally {
    /// Total work units of the tally, saturating.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.ops
            .saturating_add(self.fault_samples)
            .saturating_add(self.sram_events)
            .saturating_add(self.cache_probes)
            .saturating_add(self.recoveries)
    }

    fn merge(&mut self, other: &WorkTally) {
        self.ops = self.ops.saturating_add(other.ops);
        self.fault_samples = self.fault_samples.saturating_add(other.fault_samples);
        self.sram_events = self.sram_events.saturating_add(other.sram_events);
        self.cache_probes = self.cache_probes.saturating_add(other.cache_probes);
        self.recoveries = self.recoveries.saturating_add(other.recoveries);
    }
}

/// Per-phase work tallies of one sweep (or, merged, of a whole campaign).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTallies {
    tallies: [WorkTally; 5],
}

impl PhaseTallies {
    /// Zeroed tallies.
    #[must_use]
    pub fn new() -> Self {
        PhaseTallies::default()
    }

    /// The tally of one phase.
    #[must_use]
    pub fn get(&self, phase: Phase) -> &WorkTally {
        &self.tallies[phase.index()]
    }

    /// Attributes one executed run's work to `phase`.
    pub fn record_run(&mut self, phase: Phase, ops: u64, fault_samples: u64, sram_events: u64) {
        let t = &mut self.tallies[phase.index()];
        t.ops = t.ops.saturating_add(ops);
        t.fault_samples = t.fault_samples.saturating_add(fault_samples);
        t.sram_events = t.sram_events.saturating_add(sram_events);
    }

    /// Counts one campaign-cache probe.
    pub fn record_cache_probe(&mut self) {
        let t = &mut self.tallies[Phase::CacheLookup.index()];
        t.cache_probes = t.cache_probes.saturating_add(1);
    }

    /// Counts `n` watchdog recoveries against board init.
    pub fn record_recoveries(&mut self, n: u64) {
        let t = &mut self.tallies[Phase::BoardInit.index()];
        t.recoveries = t.recoveries.saturating_add(n);
    }

    /// Accumulates another sweep's tallies into this one.
    pub fn merge(&mut self, other: &PhaseTallies) {
        for (a, b) in self.tallies.iter_mut().zip(&other.tallies) {
            a.merge(b);
        }
    }

    /// Iterates `(phase, tally)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, &WorkTally)> + '_ {
        Phase::ALL.iter().map(move |p| (*p, self.get(*p)))
    }

    /// Total kernel ops retired across every phase, saturating — zero for
    /// a fully cache-replayed campaign, since replays execute no machine
    /// probes and cached entries retain no op counts.
    #[must_use]
    pub fn executed_ops(&self) -> u64 {
        self.tallies
            .iter()
            .fold(0u64, |acc, t| acc.saturating_add(t.ops))
    }

    /// The per-sweep [`TraceEvent::ProfileSample`] records of these
    /// tallies, one per phase in canonical order.
    #[must_use]
    pub fn sample_events(&self, program: &str, dataset: &str, core: CoreId) -> Vec<TraceEvent> {
        self.iter()
            .map(|(phase, t)| TraceEvent::ProfileSample {
                program: program.to_owned(),
                dataset: dataset.to_owned(),
                core: core.index() as u8,
                phase: phase.name().to_owned(),
                ops: t.ops,
                fault_samples: t.fault_samples,
                sram_events: t.sram_events,
                cache_probes: t.cache_probes,
                recoveries: t.recoveries,
            })
            .collect()
    }

    /// The campaign-level [`TraceEvent::ProfilePhase`] rollups of these
    /// (merged) tallies, one per phase in canonical order.
    #[must_use]
    pub fn phase_events(&self, sweeps: u64) -> Vec<TraceEvent> {
        self.iter()
            .map(|(phase, t)| TraceEvent::ProfilePhase {
                phase: phase.name().to_owned(),
                sweeps,
                ops: t.ops,
                fault_samples: t.fault_samples,
                sram_events: t.sram_events,
                cache_probes: t.cache_probes,
                recoveries: t.recoveries,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_are_dense_and_canonically_ordered() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "board_init",
                "golden_run",
                "probe",
                "search_step",
                "cache_lookup"
            ]
        );
    }

    #[test]
    fn recording_and_merging_accumulate_per_phase() {
        let mut a = PhaseTallies::new();
        a.record_run(Phase::GoldenRun, 100, 10, 0);
        a.record_run(Phase::Probe, 500, 50, 3);
        a.record_cache_probe();
        a.record_recoveries(2);

        let mut b = PhaseTallies::new();
        b.record_run(Phase::Probe, 250, 25, 1);
        b.record_cache_probe();

        a.merge(&b);
        assert_eq!(a.get(Phase::GoldenRun).ops, 100);
        assert_eq!(a.get(Phase::Probe).ops, 750);
        assert_eq!(a.get(Phase::Probe).fault_samples, 75);
        assert_eq!(a.get(Phase::Probe).sram_events, 4);
        assert_eq!(a.get(Phase::CacheLookup).cache_probes, 2);
        assert_eq!(a.get(Phase::BoardInit).recoveries, 2);
        assert_eq!(a.get(Phase::SearchStep).total(), 0);
    }

    #[test]
    fn tallies_saturate_instead_of_wrapping() {
        let mut t = PhaseTallies::new();
        t.record_run(Phase::Probe, u64::MAX, 0, 0);
        t.record_run(Phase::Probe, 5, 0, 0);
        assert_eq!(t.get(Phase::Probe).ops, u64::MAX);
        let clone = t.clone();
        t.merge(&clone);
        assert_eq!(t.get(Phase::Probe).ops, u64::MAX);
        assert_eq!(t.get(Phase::Probe).total(), u64::MAX);
    }

    #[test]
    fn emitted_events_cover_every_phase_in_order() {
        let mut t = PhaseTallies::new();
        t.record_run(Phase::SearchStep, 42, 7, 0);
        let samples = t.sample_events("bwaves", "ref", CoreId::new(3));
        assert_eq!(samples.len(), 5);
        match &samples[3] {
            TraceEvent::ProfileSample {
                program,
                core,
                phase,
                ops,
                fault_samples,
                ..
            } => {
                assert_eq!(program, "bwaves");
                assert_eq!(*core, 3);
                assert_eq!(phase, "search_step");
                assert_eq!(*ops, 42);
                assert_eq!(*fault_samples, 7);
            }
            other => panic!("unexpected event {other:?}"),
        }
        let rollups = t.phase_events(9);
        assert_eq!(rollups.len(), 5);
        assert!(rollups
            .iter()
            .all(|e| matches!(e, TraceEvent::ProfilePhase { sweeps: 9, .. })));
    }
}
