//! The external watchdog monitor — the framework's Raspberry Pi (§2.2).
//!
//! "To completely automate the characterization process, and due to the
//! frequent and unavoidable system crashes that occur when the system
//! operates in reduced voltage levels, we set up a Raspberry Pi board
//! connected externally to the X-Gene 2 board as a watchdog monitor …
//! physically connected to both the Serial Port, as well as to the Power
//! and Reset buttons."
//!
//! The simulated equivalent polls the system's heartbeat and drives its
//! power lines; it keeps statistics so campaigns can report how many
//! recoveries they needed.

use margins_sim::System;
use serde::{Deserialize, Serialize};

/// The watchdog monitor attached to a system's power/reset lines.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Watchdog {
    power_cycles: u32,
    checks: u64,
}

impl Watchdog {
    /// A fresh watchdog.
    #[must_use]
    pub fn new() -> Self {
        Watchdog::default()
    }

    /// Polls the heartbeat; if the board is unresponsive, presses the power
    /// button. Returns `true` when a recovery was performed.
    pub fn ensure_responsive(&mut self, system: &mut System) -> bool {
        self.checks += 1;
        if system.is_responsive() {
            false
        } else {
            system.power_cycle();
            self.power_cycles += 1;
            true
        }
    }

    /// Like [`Watchdog::ensure_responsive`], additionally reporting a
    /// [`margins_trace::TraceEvent::WatchdogPowerCycle`] through the
    /// system's attached observer when a recovery is performed.
    ///
    /// `sweep_recoveries` is the caller's per-sweep recovery counter; it is
    /// incremented on recovery and its new value becomes the event's
    /// ordinal. The ordinal is sweep-relative (never the board's boot
    /// count) so traced streams stay identical between serial and sharded
    /// executions.
    pub fn ensure_responsive_observed(
        &mut self,
        system: &mut System,
        sweep_recoveries: &mut u32,
    ) -> bool {
        let recovered = self.ensure_responsive(system);
        if recovered {
            *sweep_recoveries += 1;
            let recovery = *sweep_recoveries;
            system.observe(|| margins_trace::TraceEvent::WatchdogPowerCycle { recovery });
        }
        recovered
    }

    /// Number of power cycles performed so far.
    #[must_use]
    pub fn power_cycles(&self) -> u32 {
        self.power_cycles
    }

    /// Number of heartbeat polls performed so far.
    #[must_use]
    pub fn checks(&self) -> u64 {
        self.checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use margins_sim::{ChipSpec, CoreId, Corner, Millivolts, SystemConfig};
    use margins_workloads::{suite, Dataset};

    #[test]
    fn responsive_system_needs_no_action() {
        let mut sys = System::new(ChipSpec::new(Corner::Ttt, 0), SystemConfig::default());
        let mut dog = Watchdog::new();
        assert!(!dog.ensure_responsive(&mut sys));
        assert_eq!(dog.power_cycles(), 0);
        assert_eq!(dog.checks(), 1);
    }

    #[test]
    fn hung_system_gets_power_cycled() {
        let mut sys = System::new(ChipSpec::new(Corner::Ttt, 0), SystemConfig::default());
        let mut dog = Watchdog::new();
        // Crash the machine by deep undervolting.
        sys.slimpro_mut()
            .set_pmd_voltage(Millivolts::new(820))
            .unwrap();
        let prog = suite::by_name("bwaves", Dataset::Ref).unwrap();
        for seed in 0..30 {
            if sys.run(prog.as_ref(), CoreId::new(0), seed).is_err() || !sys.is_responsive() {
                break;
            }
        }
        assert!(!sys.is_responsive(), "820mV bwaves must hang the board");
        assert!(dog.ensure_responsive(&mut sys));
        assert!(sys.is_responsive());
        assert_eq!(dog.power_cycles(), 1);
        // Recovery restored nominal voltage (the boot firmware default).
        assert_eq!(sys.supplies().pmd(), margins_sim::volt::PMD_NOMINAL);
    }
}
