//! The execution phase of Figure 2: voltage sweeps with recovery.
//!
//! For every (benchmark, core) pair the runner applies the *reliable cores
//! setup* (target PMD at full clock, every other PMD parked at 300 MHz),
//! captures a golden output digest at nominal conditions, then visits the
//! 5 mV voltage grid as directed by the campaign's [`SearchStrategy`]: the
//! exhaustive strategy walks every step top-down like the paper's massive
//! campaign, while the adaptive strategies bisect for the two region
//! boundaries. Every probe — golden or voltage step — boots a pristine
//! simulated board (the §2.2.1 initialization phase), which makes step
//! outcomes independent of visit order; that property is what lets an
//! adaptive plan, or a replay from a persistent [`CampaignCache`], stand in
//! for the exhaustive descent. After each run the rail is restored to
//! nominal before the log is persisted (*safe data collection*), and the
//! watchdog power-cycles the board whenever a run hangs it.
//!
//! [`SearchStrategy`]: crate::search::SearchStrategy
//! [`CampaignCache`]: crate::cache::CampaignCache

use crate::cache::{
    encode_enhancements, rail_label, CachedRun, CampaignCache, GoldenEntry, GoldenKey, StepEntry,
    StepKey,
};
use crate::classify::{classify_run, ClassifiedRun};
use crate::config::SweptRail;
use crate::config::{BenchmarkRef, CampaignConfig};
use crate::exec::{
    CacheHandle, CampaignExecutor, ExecContext, ExecError, ItemTask, ThreadPoolExecutor, WorkItem,
};
use crate::profile::{Phase, PhaseTallies};
use crate::search::{SearchPlan, SearchPriors, StepVerdict};
use crate::severity::SeverityWeights;
use crate::watchdog::Watchdog;
use margins_sim::volt::{Millivolts, PMD_NOMINAL, SOC_NOMINAL};
use margins_sim::{ChipSpec, CoreId, CounterFile, OutputDigest, PmdId, System, SystemConfig};
use margins_trace::{EventBuffer, MetricsRegistry, Observer, Sink, StreamFinalizer, TraceEvent};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A characterization campaign: one chip, one configuration.
#[derive(Debug, Clone)]
pub struct Campaign {
    spec: ChipSpec,
    config: CampaignConfig,
}

/// Everything a campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The characterized chip.
    pub spec: ChipSpec,
    /// The configuration that ran.
    pub config: CampaignConfig,
    /// All classified runs, ordered by (benchmark, core, voltage ↓, iter).
    pub runs: Vec<ClassifiedRun>,
    /// Golden digests per (benchmark, dataset).
    pub goldens: BTreeMap<(String, String), OutputDigest>,
    /// Watchdog recoveries performed during the campaign (cache replays
    /// count the recoveries the original probe performed).
    pub watchdog_power_cycles: u32,
}

impl Campaign {
    /// Creates a campaign for `spec` with `config`.
    #[must_use]
    pub fn new(spec: ChipSpec, config: CampaignConfig) -> Self {
        Campaign { spec, config }
    }

    /// The chip under characterization.
    #[must_use]
    pub fn spec(&self) -> ChipSpec {
        self.spec
    }

    /// The campaign configuration.
    #[must_use]
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Executes the campaign serially.
    ///
    /// Thin shim over [`Campaign::run`] with a [`SerialExecutor`] and an
    /// all-off context — results are identical to every other execution
    /// path of the same campaign.
    ///
    /// [`SerialExecutor`]: crate::exec::SerialExecutor
    #[must_use]
    pub fn execute(&self) -> CampaignOutcome {
        self.run(&crate::exec::SerialExecutor, ExecContext::new())
            // lint: allow(no-panic) — built-in executors deliver every item in order
            .expect("built-in executors uphold the delivery contract")
    }

    /// Executes the campaign sharded over `threads` worker threads, one
    /// pristine simulated board per probe. Results are bit-identical to
    /// the serial execution: run seeds depend only on (campaign seed,
    /// benchmark, core, voltage, iteration), and every probe starts from
    /// power-on state, never from another probe's board history.
    ///
    /// Thin shim over [`Campaign::run`] with a clamped
    /// [`ThreadPoolExecutor`] (0 means 1, as it always has).
    #[must_use]
    pub fn execute_parallel(&self, threads: usize) -> CampaignOutcome {
        self.execute_traced(threads, &mut [])
    }

    /// Executes the campaign sharded over `threads` workers while streaming
    /// telemetry into `sinks`.
    ///
    /// Every sink receives the same finalized record stream, live and in
    /// canonical order: the campaign preamble (`CampaignStarted`, one
    /// `ShardScheduled` per (benchmark, core) work item — the *logical*
    /// shard; which worker thread executes it is an execution detail the
    /// trace never records), then each item's events in item order —
    /// benchmarks-major, exactly the order the serial execution visits
    /// them — then the `CampaignFinished` summary.
    /// Workers stage their events in per-item buffers; the merge thread
    /// releases an item's events as soon as its place in the canonical
    /// order is reached, so the stream is *byte-deterministic* for a fixed
    /// (chip, configuration) regardless of `threads` or scheduling, while
    /// progress sinks still see events during the campaign.
    ///
    /// Passing no sinks disables tracing entirely: no event is ever
    /// constructed, and campaign results are identical either way.
    ///
    /// Thin shim over [`Campaign::run`]: sinks ride the context, the
    /// executor is a clamped [`ThreadPoolExecutor`].
    #[must_use]
    pub fn execute_traced(&self, threads: usize, sinks: &mut [&mut dyn Sink]) -> CampaignOutcome {
        self.execute_with(threads, sinks, None, None)
    }

    /// Executes the campaign like [`Campaign::execute_with`] while also
    /// accumulating the record stream into a [`MetricsRegistry`], returned
    /// alongside the outcome.
    ///
    /// The registry rides the same finalized stream as every other sink,
    /// so its snapshot is a pure function of the byte-deterministic
    /// records: serial and sharded executions of the same campaign return
    /// identical registries.
    /// Thin shim over [`Campaign::run`]: the registry rides the context's
    /// `metrics` slot and is folded into the sink fan-out by `run` itself.
    #[must_use]
    pub fn execute_metered(
        &self,
        threads: usize,
        sinks: &mut [&mut dyn Sink],
        cache: Option<&mut CampaignCache>,
        priors: Option<&SearchPriors>,
    ) -> (CampaignOutcome, MetricsRegistry) {
        let mut metrics = MetricsRegistry::new();
        let outcome = self
            .run(
                &ThreadPoolExecutor::clamped(threads),
                ExecContext {
                    sinks,
                    cache: cache.map(CacheHandle::Owned),
                    priors,
                    metrics: Some(&mut metrics),
                    profile_out: None,
                },
            )
            // lint: allow(no-panic) — built-in executors deliver every item in order
            .expect("built-in executors uphold the delivery contract");
        (outcome, metrics)
    }

    /// Executes the campaign with an optional persistent result `cache`
    /// and optional warm-start `priors`.
    ///
    /// When a cache is supplied, every golden capture and voltage-step
    /// probe is first looked up by its full coordinate key (chip, rail,
    /// frequencies, enhancements, seed, iteration count, benchmark,
    /// dataset, core, voltage); a hit replays the stored outcome without
    /// touching a board, a miss executes the probe and inserts the result
    /// back into the cache after the campaign. Because each probe runs on
    /// a pristine board, replays are exact: the outcome (runs, goldens,
    /// regions, power-cycle totals) of a cached rerun is identical to a
    /// cold execution. Campaigns that collect performance counters bypass
    /// the cache — cached entries do not retain counter files.
    ///
    /// `priors` seed [`SearchStrategy::WarmStart`]; when `None` and a
    /// cache is supplied, priors are derived from the cache before
    /// execution starts, so warm-started searches stay
    /// schedule-independent.
    ///
    /// Thin shim over [`Campaign::run`] with a clamped
    /// [`ThreadPoolExecutor`] and the cache exclusively owned.
    #[must_use]
    pub fn execute_with(
        &self,
        threads: usize,
        sinks: &mut [&mut dyn Sink],
        cache: Option<&mut CampaignCache>,
        priors: Option<&SearchPriors>,
    ) -> CampaignOutcome {
        self.run(
            &ThreadPoolExecutor::clamped(threads),
            ExecContext {
                sinks,
                cache: cache.map(CacheHandle::Owned),
                priors,
                metrics: None,
                profile_out: None,
            },
        )
        // lint: allow(no-panic) — built-in executors deliver every item in order
        .expect("built-in executors uphold the delivery contract")
    }

    /// Executes the campaign on `exec` — the one real execution path every
    /// `execute*` shim funnels into.
    ///
    /// The campaign enumerates its canonical work items (benchmarks-major
    /// × cores, index = canonical position), hands them to the executor,
    /// and consumes deliveries in canonical order: merge profile tallies,
    /// seal each item's staged events through the single
    /// [`StreamFinalizer`], accumulate runs/goldens/power cycles, collect
    /// fresh cache entries. Which engine ran the items — and with how many
    /// workers — is invisible in every output: the trace stream, the
    /// metrics exposition, the profile rollups and the outcome are all
    /// byte-identical across conforming executors. Executor identity is
    /// deliberately absent from the trace schema.
    ///
    /// Cache semantics ([`CacheHandle`]): the campaign reads one immutable
    /// cache view fixed before the first probe (for a shared cache, an
    /// [`Arc`] snapshot), so lookups never race with writers; fresh
    /// results are written back after the last delivery — directly into an
    /// owned cache, or appended and published to a shared one.
    ///
    /// # Errors
    ///
    /// [`ExecError`] when the executor violates its delivery contract
    /// (out-of-order or incomplete delivery). The built-in executors never
    /// do; the check exists so third-party executors fail loudly instead
    /// of corrupting a stream.
    pub fn run(
        &self,
        exec: &dyn CampaignExecutor,
        ctx: ExecContext<'_, '_>,
    ) -> Result<CampaignOutcome, ExecError> {
        let ExecContext {
            sinks,
            cache,
            priors,
            metrics,
            profile_out,
        } = ctx;
        // The metrics registry is just another sink riding the finalized
        // stream; folding it here keeps `execute_metered` a thin shim.
        let mut all_sinks: Vec<&mut dyn Sink> = Vec::with_capacity(sinks.len() + 1);
        for sink in sinks.iter_mut() {
            all_sinks.push(&mut **sink);
        }
        if let Some(metrics) = metrics {
            all_sinks.push(metrics);
        }
        let sinks: &mut [&mut dyn Sink] = &mut all_sinks;

        let items: Vec<WorkItem> = self
            .config
            .work_items()
            .enumerate()
            .map(|(index, (bench, core))| WorkItem { index, bench, core })
            .collect();

        // Fix one immutable cache view before the first probe executes.
        // For a shared cache this is an Arc snapshot: concurrent sibling
        // campaigns may append and publish freely without this campaign
        // ever observing mid-run changes (lookups stay deterministic).
        let mut cache = cache;
        let snapshot: Option<Arc<CampaignCache>> = match &cache {
            Some(CacheHandle::Shared(shared)) => Some(shared.snapshot()),
            _ => None,
        };
        let cache_view: Option<&CampaignCache> = match (&cache, &snapshot) {
            (Some(CacheHandle::Owned(owned)), _) => Some(&**owned),
            (Some(CacheHandle::Shared(_)), Some(snap)) => Some(snap.as_ref()),
            _ => None,
        };

        // Warm-start priors must be fixed before the first probe executes;
        // deriving them from sibling items of the running campaign would
        // make searches schedule-dependent.
        let derived = if self.config.search.uses_priors() && priors.is_none() {
            cache_view.map(|c| c.derive_priors(&self.spec.to_string(), &self.config))
        } else {
            None
        };
        let priors = priors.or(derived.as_ref());

        let traced = !sinks.is_empty();
        let mut finalizer = StreamFinalizer::new();
        if traced {
            emit_record(
                &mut finalizer,
                sinks,
                TraceEvent::CampaignStarted {
                    chip: self.spec.to_string(),
                    rail: self.rail_name().to_owned(),
                    benchmarks: self.config.benchmarks.len() as u32,
                    cores: self.config.cores.len() as u32,
                    steps: self.config.step_count(),
                    iterations: self.config.iterations,
                    shards: items.len() as u32,
                    seed: self.config.seed,
                },
            );
            // The schedule announces *logical* shards (one per work item,
            // in canonical order) so the preamble is byte-identical no
            // matter which executor — or how many worker threads — runs it.
            for item in &items {
                emit_record(
                    &mut finalizer,
                    sinks,
                    TraceEvent::ShardScheduled {
                        shard: item.index as u32,
                        items: self.config.step_count() * self.config.iterations,
                    },
                );
            }
        }

        let mut runs: Vec<ClassifiedRun> = Vec::new();
        let mut goldens = BTreeMap::new();
        let mut power_cycles = 0u32;
        let mut fresh_goldens: Vec<(GoldenKey, GoldenEntry)> = Vec::new();
        let mut fresh_steps: Vec<(StepKey, StepEntry)> = Vec::new();
        let mut campaign_profile = PhaseTallies::new();
        let mut next = 0usize;
        let mut order_error: Option<ExecError> = None;
        {
            let task = ItemTask::new(self, &items, traced, cache_view, priors);
            let mut deliver = |output: crate::exec::ItemOutput| {
                if order_error.is_some() {
                    return;
                }
                let (index, ready) = output.into_parts();
                if index != next {
                    order_error = Some(ExecError::OutOfOrderDelivery {
                        expected: next,
                        delivered: index,
                    });
                    return;
                }
                next += 1;
                campaign_profile.merge(&ready.profile);
                for event in ready.events {
                    emit_record(&mut finalizer, sinks, event);
                }
                goldens.insert(ready.golden_key, ready.golden);
                runs.extend(ready.runs);
                power_cycles += ready.power_cycles;
                fresh_goldens.extend(ready.fresh_golden);
                fresh_steps.extend(ready.fresh_steps);
            };
            exec.run_items(&task, &mut deliver)?;
        }
        if let Some(err) = order_error {
            return Err(err);
        }
        if next != items.len() {
            return Err(ExecError::IncompleteDelivery {
                delivered: next,
                expected: items.len(),
            });
        }

        // Write fresh results back after the last lookup: directly into an
        // owned cache, or onto the shared append log (published at once so
        // a subsequent campaign's snapshot sees this campaign's work).
        match cache.as_mut() {
            Some(CacheHandle::Owned(owned)) => {
                for (key, entry) in fresh_goldens {
                    owned.insert_golden(key, entry);
                }
                for (key, entry) in fresh_steps {
                    owned.insert_step(key, entry);
                }
            }
            Some(CacheHandle::Shared(shared)) => {
                for (key, entry) in fresh_goldens {
                    shared.append_golden(key, entry);
                }
                for (key, entry) in fresh_steps {
                    shared.append_step(key, entry);
                }
                shared.publish();
            }
            None => {}
        }

        let rail = self.config.rail;
        runs.sort_by(|a, b| {
            (
                &a.program,
                &a.dataset,
                a.core,
                std::cmp::Reverse(a.swept_mv(rail)),
                a.iteration,
            )
                .cmp(&(
                    &b.program,
                    &b.dataset,
                    b.core,
                    std::cmp::Reverse(b.swept_mv(rail)),
                    b.iteration,
                ))
        });
        if traced {
            // Campaign epilogue: the per-phase work rollups precede the
            // closing summary, aggregated in canonical item order.
            if self.config.profile {
                for event in campaign_profile.phase_events(items.len() as u64) {
                    emit_record(&mut finalizer, sinks, event);
                }
            }
            let total = runs.len() as u64;
            emit_record(
                &mut finalizer,
                sinks,
                TraceEvent::CampaignFinished {
                    runs: total,
                    power_cycles,
                },
            );
            for sink in sinks.iter_mut() {
                sink.finish();
            }
        }
        if let Some(out) = profile_out {
            *out = campaign_profile;
        }
        Ok(CampaignOutcome {
            spec: self.spec,
            config: self.config.clone(),
            runs,
            goldens,
            watchdog_power_cycles: power_cycles,
        })
    }

    /// The serialized name of the swept rail in trace events.
    fn rail_name(&self) -> &'static str {
        match self.config.rail {
            SweptRail::Pmd => "pmd",
            SweptRail::PcpSoc => "soc",
        }
    }

    /// A pristine simulated board — the §2.2.1 initialization phase,
    /// applied per probe so every step outcome (thermal history included)
    /// is independent of which probes ran before it.
    fn fresh_board(&self, traced: bool, buffer: &Arc<EventBuffer>) -> System {
        let mut system = System::new(
            self.spec,
            SystemConfig {
                enhancements: self.config.enhancements,
                ..SystemConfig::default()
            },
        );
        if traced {
            system.set_observer(buffer.clone());
        }
        system
    }

    /// Executes one (benchmark, core) work item end to end: the sweep's
    /// span events (opened and closed here), the characterization itself,
    /// and the optional per-sweep profile samples, all staged in a private
    /// per-item [`EventBuffer`] so executors can run items on any thread
    /// in any order without perturbing the merged stream.
    pub(crate) fn run_work_item(
        &self,
        item: &WorkItem,
        traced: bool,
        cache: Option<&CampaignCache>,
        priors: Option<&SearchPriors>,
    ) -> TracedItem {
        let bench = &self.config.benchmarks[item.bench];
        let core = item.core;
        let buffer = Arc::new(EventBuffer::new());
        note(traced, &buffer, || TraceEvent::SweepStarted {
            program: bench.name.clone(),
            dataset: bench.dataset.label().to_owned(),
            core: core.index() as u8,
            shard: item.index as u32,
        });
        let result = self.characterize_item(bench, core, traced, &buffer, cache, priors);
        if self.config.profile {
            for event in result
                .profile
                .sample_events(&bench.name, bench.dataset.label(), core)
            {
                note(traced, &buffer, || event);
            }
        }
        note(traced, &buffer, || TraceEvent::SweepFinished {
            program: bench.name.clone(),
            dataset: bench.dataset.label().to_owned(),
            core: core.index() as u8,
            runs: result.runs.len() as u32,
        });
        TracedItem {
            events: buffer.drain(),
            golden_key: (bench.name.clone(), bench.dataset.label().to_owned()),
            golden: result.golden,
            runs: result.runs,
            power_cycles: result.power_cycles,
            fresh_golden: result.fresh_golden,
            fresh_steps: result.fresh_steps,
            profile: result.profile,
        }
    }

    /// Characterizes one (benchmark, core) item: golden capture plus the
    /// strategy-directed walk of the voltage grid, each probe answered from
    /// the cache when possible and executed on a pristine board otherwise.
    fn characterize_item(
        &self,
        bench: &BenchmarkRef,
        core: CoreId,
        traced: bool,
        buffer: &Arc<EventBuffer>,
        cache: Option<&CampaignCache>,
        priors: Option<&SearchPriors>,
    ) -> ItemResult {
        let program = margins_workloads::suite::by_name(&bench.name, bench.dataset)
            // lint: allow(no-panic) — benchmark names validated at config build time
            .expect("benchmark validated at config build time");
        // Cached entries do not retain counter files, so counter-collecting
        // campaigns always execute their probes.
        let cache = if self.config.collect_counters {
            None
        } else {
            cache
        };
        let chip = self.spec.to_string();
        let dataset = bench.dataset.label();
        let core_u8 = core.index() as u8;
        let enhancements = encode_enhancements(self.config.enhancements);

        let mut watchdog = Watchdog::new();
        let mut recoveries = 0u32;
        let mut cached_cycles = 0u32;
        let mut cache_hits = 0u32;
        let mut machine_probes = 0u32;
        let mut fresh_golden: Option<(GoldenKey, GoldenEntry)> = None;
        let mut fresh_steps: Vec<(StepKey, StepEntry)> = Vec::new();
        // Work accounting is a pure function of the deterministic run
        // records, so the tallies are identical across reruns and shard
        // counts. Cached replays retain no ops/fault-sample counts, so a
        // warm rerun legitimately reports less executed work.
        let mut tallies = PhaseTallies::new();

        // Golden run at nominal conditions.
        let golden_key = GoldenKey {
            chip: chip.clone(),
            target_mhz: self.config.target_frequency.get(),
            parked_mhz: self.config.parked_frequency.get(),
            enhancements,
            seed: self.config.seed,
            program: bench.name.clone(),
            dataset: dataset.to_owned(),
            core: core_u8,
        };
        let cached_golden = cache.and_then(|c| c.golden(&golden_key)).cloned();
        if cache.is_some() {
            tallies.record_cache_probe();
            let hit = cached_golden.is_some();
            note(traced, buffer, || TraceEvent::CacheLookup {
                program: bench.name.clone(),
                dataset: dataset.to_owned(),
                core: core_u8,
                probe: "golden".to_owned(),
                mv: 0,
                hit,
            });
        }
        let golden = if let Some(entry) = cached_golden {
            let golden = OutputDigest::from_value(entry.digest);
            note(traced, buffer, || TraceEvent::GoldenCaptured {
                program: bench.name.clone(),
                dataset: dataset.to_owned(),
                core: core_u8,
                digest: golden.to_string(),
                runtime_s: entry.runtime_s,
            });
            golden
        } else {
            let mut system = self.fresh_board(traced, buffer);
            watchdog.ensure_responsive_observed(&mut system, &mut recoveries);
            self.apply_reliable_cores_setup(&mut system, core);
            let golden_seed = run_seed(self.config.seed, &bench.name, dataset, core, 0, u32::MAX);
            let record = system
                .run(program.as_ref(), core, golden_seed)
                // lint: allow(no-panic) — a pristine board at nominal V/F is responsive
                .expect("system responsive after watchdog check");
            assert_eq!(
                record.outcome,
                margins_sim::RunOutcome::Completed,
                "golden run at nominal must complete"
            );
            tallies.record_run(
                Phase::GoldenRun,
                record.instructions,
                record.fault_samples,
                (record.corrected_errors + record.uncorrected_errors) as u64,
            );
            let golden = record.digest;
            note(traced, buffer, || TraceEvent::GoldenCaptured {
                program: bench.name.clone(),
                dataset: dataset.to_owned(),
                core: core_u8,
                digest: golden.to_string(),
                runtime_s: record.runtime_s,
            });
            if cache.is_some() {
                fresh_golden = Some((
                    golden_key,
                    GoldenEntry {
                        digest: golden.value(),
                        runtime_s: record.runtime_s,
                    },
                ));
            }
            golden
        };

        let steps = self.config.step_count();
        let prior = priors
            .and_then(|p| p.get(&bench.name, dataset, core))
            .map(|p| p.on_grid(self.config.start_voltage));
        let mut plan = SearchPlan::for_strategy(
            self.config.search,
            steps,
            self.config.crash_stop_steps,
            prior,
        );
        let adaptive = self.config.search.is_adaptive();
        let mut runs: Vec<ClassifiedRun> = Vec::new();
        let weights = SeverityWeights::paper();

        while let Some(step) = plan.next_step() {
            let voltage = self.config.start_voltage.down_steps(step);
            let step_key = StepKey {
                chip: chip.clone(),
                rail: rail_label(self.config.rail).to_owned(),
                target_mhz: self.config.target_frequency.get(),
                parked_mhz: self.config.parked_frequency.get(),
                enhancements,
                seed: self.config.seed,
                iterations: self.config.iterations,
                program: bench.name.clone(),
                dataset: dataset.to_owned(),
                core: core_u8,
                mv: voltage.get(),
            };
            let cached_step = cache.and_then(|c| c.step(&step_key)).cloned();
            if cache.is_some() {
                tallies.record_cache_probe();
                let hit = cached_step.is_some();
                note(traced, buffer, || TraceEvent::CacheLookup {
                    program: bench.name.clone(),
                    dataset: dataset.to_owned(),
                    core: core_u8,
                    probe: "step".to_owned(),
                    mv: voltage.get(),
                    hit,
                });
            }
            let verdict = if let Some(entry) = cached_step {
                // Replay. The original probe ran on a pristine board with
                // seeds derived only from campaign coordinates, so its
                // stored per-iteration outcomes are exactly what executing
                // the probe now would produce.
                cache_hits += 1;
                let (pmd_mv, soc_mv) = match self.config.rail {
                    SweptRail::Pmd => (voltage, SOC_NOMINAL),
                    SweptRail::PcpSoc => (PMD_NOMINAL, voltage),
                };
                for (iteration, run) in entry.runs.iter().enumerate() {
                    let classified = ClassifiedRun {
                        program: bench.name.clone(),
                        dataset: dataset.to_owned(),
                        core,
                        pmd_mv,
                        soc_mv,
                        freq: self.config.target_frequency,
                        iteration: iteration as u32,
                        effects: run.effects,
                        corrected_errors: run.corrected_errors as usize,
                        uncorrected_errors: run.uncorrected_errors as usize,
                        runtime_s: run.runtime_s,
                        energy_j: run.energy_j,
                        counters: None,
                    };
                    note(traced, buffer, || TraceEvent::RunCompleted {
                        program: classified.program.clone(),
                        dataset: classified.dataset.clone(),
                        core: core_u8,
                        mv: voltage.get(),
                        iteration: classified.iteration,
                        effects: classified.effects.to_string(),
                        severity: weights.run_severity(classified.effects),
                        runtime_s: classified.runtime_s,
                        energy_j: classified.energy_j,
                        corrected_errors: classified.corrected_errors as u64,
                        uncorrected_errors: classified.uncorrected_errors as u64,
                    });
                    runs.push(classified);
                }
                for _ in 0..entry.power_cycles {
                    recoveries += 1;
                    let recovery = recoveries;
                    note(traced, buffer, || TraceEvent::WatchdogPowerCycle {
                        recovery,
                    });
                }
                cached_cycles += entry.power_cycles;
                StepVerdict {
                    abnormal: entry.any_abnormal(),
                    any_sc: entry.any_system_crash(),
                    all_sc: entry.all_system_crash(),
                }
            } else {
                if adaptive {
                    let phase = plan.phase();
                    note(traced, buffer, || TraceEvent::SearchStep {
                        program: bench.name.clone(),
                        core: core_u8,
                        strategy: self.config.search.name().to_owned(),
                        phase: phase.to_owned(),
                        step,
                        mv: voltage.get(),
                    });
                }
                machine_probes += 1;
                let cycles_before = watchdog.power_cycles();
                let mut system = self.fresh_board(traced, buffer);
                self.apply_reliable_cores_setup(&mut system, core);
                note(traced, buffer, || TraceEvent::VoltageStepped {
                    rail: self.rail_name().to_owned(),
                    mv: voltage.get(),
                    step,
                });
                let mut step_runs: Vec<CachedRun> = Vec::new();
                let mut sc_runs = 0u32;
                let mut abnormal = false;
                for iteration in 0..self.config.iterations {
                    if watchdog.ensure_responsive_observed(&mut system, &mut recoveries) {
                        // Recovery wiped the V/F setup; reapply it.
                        self.apply_reliable_cores_setup(&mut system, core);
                    }
                    self.set_swept_rail(&mut system, voltage);
                    let seed = run_seed(
                        self.config.seed,
                        &bench.name,
                        dataset,
                        core,
                        voltage.get(),
                        iteration,
                    );
                    let record = system
                        .run(program.as_ref(), core, seed)
                        // lint: allow(no-panic) — watchdog.ensure_responsive_observed() ran this iteration
                        .expect("ensured responsive before the run");
                    // Safe data collection: restore nominal before
                    // persisting the log (§2.2.1) — only possible if the
                    // board survived.
                    if system.is_responsive() {
                        self.restore_swept_rail(&mut system);
                    }
                    tallies.record_run(
                        if adaptive {
                            Phase::SearchStep
                        } else {
                            Phase::Probe
                        },
                        record.instructions,
                        record.fault_samples,
                        (record.corrected_errors + record.uncorrected_errors) as u64,
                    );
                    let classified = classify_run(
                        &record,
                        Some(golden),
                        iteration,
                        self.config.collect_counters,
                    );
                    if classified.effects.is_system_crash() {
                        sc_runs += 1;
                    }
                    if !classified.effects.is_normal() {
                        abnormal = true;
                    }
                    note(traced, buffer, || TraceEvent::RunCompleted {
                        program: classified.program.clone(),
                        dataset: classified.dataset.clone(),
                        core: core_u8,
                        mv: voltage.get(),
                        iteration,
                        effects: classified.effects.to_string(),
                        severity: weights.run_severity(classified.effects),
                        runtime_s: classified.runtime_s,
                        energy_j: classified.energy_j,
                        corrected_errors: classified.corrected_errors as u64,
                        uncorrected_errors: classified.uncorrected_errors as u64,
                    });
                    if cache.is_some() {
                        step_runs.push(CachedRun {
                            effects: classified.effects,
                            corrected_errors: classified.corrected_errors as u64,
                            uncorrected_errors: classified.uncorrected_errors as u64,
                            runtime_s: classified.runtime_s,
                            energy_j: classified.energy_j,
                        });
                    }
                    runs.push(classified);
                }
                // Recover a trailing hang inside the probe that caused it,
                // so the probe's power-cycle count — and thus its cache
                // entry and trace — never depends on what runs next.
                watchdog.ensure_responsive_observed(&mut system, &mut recoveries);
                let step_cycles = watchdog.power_cycles() - cycles_before;
                if cache.is_some() {
                    fresh_steps.push((
                        step_key,
                        StepEntry {
                            runs: step_runs,
                            power_cycles: step_cycles,
                        },
                    ));
                }
                StepVerdict {
                    abnormal,
                    any_sc: sc_runs > 0,
                    all_sc: self.config.iterations > 0 && sc_runs == self.config.iterations,
                }
            };
            plan.record(step, verdict);
        }

        if let Some((stop_step, consecutive_all_sc)) = plan.early_stop() {
            note(traced, buffer, || TraceEvent::EarlyStop {
                program: bench.name.clone(),
                core: core_u8,
                mv: self.config.start_voltage.down_steps(stop_step).get(),
                consecutive_all_sc,
            });
        }
        if adaptive {
            note(traced, buffer, || TraceEvent::SearchConcluded {
                program: bench.name.clone(),
                core: core_u8,
                strategy: self.config.search.name().to_owned(),
                probed_steps: machine_probes,
                grid_steps: steps,
                cache_hits,
            });
        }
        // `recoveries` counts fresh watchdog interventions plus replayed
        // power cycles, so board-init work matches between cold and warm
        // runs of the same campaign.
        tallies.record_recoveries(u64::from(recoveries));
        ItemResult {
            golden,
            runs,
            power_cycles: watchdog.power_cycles() + cached_cycles,
            fresh_golden,
            fresh_steps,
            profile: tallies,
        }
    }

    fn set_swept_rail(&self, system: &mut System, voltage: Millivolts) {
        let mut slimpro = system.slimpro_mut();
        match self.config.rail {
            SweptRail::Pmd => slimpro
                .set_pmd_voltage(voltage)
                // lint: allow(no-panic) — sweep grid validated at config build time
                .expect("sweep voltages validated at config build time"),
            SweptRail::PcpSoc => slimpro
                .set_soc_voltage(voltage)
                // lint: allow(no-panic) — sweep grid validated at config build time
                .expect("sweep voltages validated at config build time"),
        }
    }

    fn restore_swept_rail(&self, system: &mut System) {
        let mut slimpro = system.slimpro_mut();
        match self.config.rail {
            SweptRail::Pmd => slimpro
                .set_pmd_voltage(PMD_NOMINAL)
                // lint: allow(no-panic) — nominal is on-grid by construction
                .expect("nominal is always valid"),
            SweptRail::PcpSoc => slimpro
                .set_soc_voltage(SOC_NOMINAL)
                // lint: allow(no-panic) — nominal is on-grid by construction
                .expect("nominal is always valid"),
        }
    }

    /// The reliable-cores setup of §2.2.1.
    fn apply_reliable_cores_setup(&self, system: &mut System, core: CoreId) {
        let target_pmd = core.pmd();
        let mut slimpro = system.slimpro_mut();
        for pmd in PmdId::all() {
            let f = if pmd == target_pmd {
                self.config.target_frequency
            } else {
                self.config.parked_frequency
            };
            slimpro
                .set_pmd_frequency(pmd, f)
                // lint: allow(no-panic) — frequencies validated at config build time
                .expect("frequencies validated at config build time");
        }
    }
}

impl CampaignOutcome {
    /// Merges several campaigns of the *same chip and configuration shape*
    /// into one outcome whose iteration space is the concatenation of the
    /// inputs — the paper's methodology of "running the entire
    /// time-consuming undervolting experiment ten times for each benchmark
    /// … during 6 months" (§3.2) and aggregating.
    ///
    /// Iteration indices of later campaigns are shifted so every run keeps
    /// a unique (benchmark, core, voltage, iteration) coordinate; the
    /// merged `config.iterations` is the sum.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError`] when the campaigns disagree on chip, rail,
    /// voltage grid or frequency setup.
    pub fn merge<I>(outcomes: I) -> Result<CampaignOutcome, MergeError>
    where
        I: IntoIterator<Item = CampaignOutcome>,
    {
        let mut iter = outcomes.into_iter();
        let mut merged = iter.next().ok_or(MergeError::Empty)?;
        for outcome in iter {
            if outcome.spec != merged.spec {
                return Err(MergeError::ChipMismatch);
            }
            let a = &merged.config;
            let b = &outcome.config;
            if a.start_voltage != b.start_voltage
                || a.floor_voltage != b.floor_voltage
                || a.target_frequency != b.target_frequency
                || a.parked_frequency != b.parked_frequency
                || a.rail != b.rail
                || a.enhancements != b.enhancements
            {
                return Err(MergeError::ConfigMismatch);
            }
            let offset = merged.config.iterations;
            merged.config.iterations += outcome.config.iterations;
            merged.runs.extend(outcome.runs.into_iter().map(|mut r| {
                r.iteration += offset;
                r
            }));
            merged.goldens.extend(outcome.goldens);
            merged.watchdog_power_cycles += outcome.watchdog_power_cycles;
        }
        let rail = merged.config.rail;
        merged.runs.sort_by(|a, b| {
            (
                &a.program,
                &a.dataset,
                a.core,
                std::cmp::Reverse(a.swept_mv(rail)),
                a.iteration,
            )
                .cmp(&(
                    &b.program,
                    &b.dataset,
                    b.core,
                    std::cmp::Reverse(b.swept_mv(rail)),
                    b.iteration,
                ))
        });
        Ok(merged)
    }
}

/// Error merging campaign outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeError {
    /// No outcomes were provided.
    Empty,
    /// The campaigns characterized different chips.
    ChipMismatch,
    /// The campaigns used incompatible configurations.
    ConfigMismatch,
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Empty => f.write_str("no campaign outcomes to merge"),
            MergeError::ChipMismatch => f.write_str("campaigns characterized different chips"),
            MergeError::ConfigMismatch => f.write_str("campaigns used incompatible configurations"),
        }
    }
}

impl std::error::Error for MergeError {}

/// One completed work item, as delivered from an executor to the merge
/// loop of [`Campaign::run`]: the item's staged trace events plus its
/// share of the outcome.
#[derive(Debug)]
pub(crate) struct TracedItem {
    events: Vec<TraceEvent>,
    golden_key: (String, String),
    golden: OutputDigest,
    runs: Vec<ClassifiedRun>,
    power_cycles: u32,
    fresh_golden: Option<(GoldenKey, GoldenEntry)>,
    fresh_steps: Vec<(StepKey, StepEntry)>,
    profile: PhaseTallies,
}

/// What one (benchmark, core) item produced, before trace packaging.
struct ItemResult {
    golden: OutputDigest,
    runs: Vec<ClassifiedRun>,
    power_cycles: u32,
    fresh_golden: Option<(GoldenKey, GoldenEntry)>,
    fresh_steps: Vec<(StepKey, StepEntry)>,
    profile: PhaseTallies,
}

/// Seals `event` into the canonical stream and fans it out to every sink.
fn emit_record(finalizer: &mut StreamFinalizer, sinks: &mut [&mut dyn Sink], event: TraceEvent) {
    let record = finalizer.seal(event);
    for sink in sinks.iter_mut() {
        sink.emit(&record);
    }
}

/// Stages a runner-level event into the item's buffer when tracing.
fn note(traced: bool, buffer: &EventBuffer, event: impl FnOnce() -> TraceEvent) {
    if traced {
        buffer.record(&event());
    }
}

/// A nominal-conditions workload profile (Figure 6, phase 2): the full PMU
/// counter file plus the golden digest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Benchmark name.
    pub name: String,
    /// Dataset label.
    pub dataset: String,
    /// PMU counters of the nominal run.
    pub counters: CounterFile,
    /// Golden output digest.
    pub golden: OutputDigest,
    /// Modelled runtime at nominal conditions, seconds.
    pub runtime_s: f64,
    /// Modelled cycles.
    pub cycles: u64,
}

/// Error returned by [`profile`] when a benchmark name is not in the
/// workload suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBenchmark {
    /// The unresolvable benchmark name.
    pub name: String,
    /// Suite benchmarks closest to the unresolvable name (best first).
    pub suggestions: Vec<String>,
}

impl UnknownBenchmark {
    /// An error for `name`, with near-miss suggestions from the suite.
    #[must_use]
    pub fn new(name: &str) -> Self {
        UnknownBenchmark {
            name: name.to_owned(),
            suggestions: suggest_benchmarks(name),
        }
    }
}

impl std::fmt::Display for UnknownBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown benchmark '{}'", self.name)?;
        if let Some((first, rest)) = self.suggestions.split_first() {
            write!(f, " (did you mean '{first}'")?;
            for s in rest {
                write!(f, ", '{s}'")?;
            }
            write!(f, "?)")?;
        }
        Ok(())
    }
}

impl std::error::Error for UnknownBenchmark {}

/// Suite names close to `name`: within edit distance 2, or sharing a
/// substring with it. At most three, best matches first.
fn suggest_benchmarks(name: &str) -> Vec<String> {
    let needle = name.to_ascii_lowercase();
    let mut scored: Vec<(usize, &str)> = margins_workloads::suite::ALL_NAMES
        .iter()
        .filter_map(|candidate| {
            let distance = edit_distance(&needle, candidate);
            let related = distance <= 2
                || (!needle.is_empty()
                    && (candidate.contains(&needle) || needle.contains(candidate)));
            related.then_some((distance, *candidate))
        })
        .collect();
    scored.sort();
    scored
        .into_iter()
        .take(3)
        .map(|(_, n)| n.to_owned())
        .collect()
}

/// Levenshtein distance via the single-row dynamic program.
fn edit_distance(a: &str, b: &str) -> usize {
    let b: Vec<char> = b.chars().collect();
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.chars().enumerate() {
        let mut diagonal = row[0];
        row[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let substitution = diagonal + usize::from(ca != *cb);
            diagonal = row[j + 1];
            row[j + 1] = substitution.min(diagonal + 1).min(row[j] + 1);
        }
    }
    row[b.len()]
}

/// Profiles `benchmarks` at nominal conditions on `core` of a fresh chip
/// (§4.1: "collecting the performance counters of the entire benchmarks
/// using perf").
///
/// # Errors
///
/// Returns [`UnknownBenchmark`] when a benchmark name does not resolve in
/// `margins_workloads::suite` — unlike campaign execution, `profile` takes
/// benchmark lists that never went through config validation.
pub fn profile(
    spec: ChipSpec,
    benchmarks: &[BenchmarkRef],
    core: CoreId,
) -> Result<Vec<WorkloadProfile>, UnknownBenchmark> {
    let mut system = System::new(spec, SystemConfig::default());
    benchmarks
        .iter()
        .map(|b| {
            let program = margins_workloads::suite::by_name(&b.name, b.dataset)
                .ok_or_else(|| UnknownBenchmark::new(&b.name))?;
            let record = system
                .run(program.as_ref(), core, 0x0090_F11E)
                // lint: allow(no-panic) — a fresh system at nominal V/F is responsive
                .expect("nominal profiling never crashes the board");
            Ok(WorkloadProfile {
                name: b.name.clone(),
                dataset: b.dataset.label().to_owned(),
                counters: record.counters,
                golden: record.digest,
                runtime_s: record.runtime_s,
                cycles: record.cycles,
            })
        })
        .collect()
}

/// Deterministic per-run seed from the campaign coordinates.
fn run_seed(base: u64, name: &str, dataset: &str, core: CoreId, mv: u32, iteration: u32) -> u64 {
    let mut h = base ^ 0x517C_C1B7_2722_0A95;
    for b in name.bytes().chain([0xFF]).chain(dataset.bytes()) {
        h = splitmix(h ^ u64::from(b));
    }
    h = splitmix(h ^ (core.index() as u64) << 32);
    h = splitmix(h ^ u64::from(mv) << 8);
    splitmix(h ^ u64::from(iteration))
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effect::Effect;
    use margins_sim::{Corner, Millivolts};

    fn tiny_config(bench: &str, core: u8, hi: u32, lo: u32, iters: u32) -> CampaignConfig {
        CampaignConfig::builder()
            .benchmarks([bench])
            .cores([CoreId::new(core)])
            .iterations(iters)
            .start_voltage(Millivolts::new(hi))
            .floor_voltage(Millivolts::new(lo))
            .seed(7)
            .build()
            .unwrap()
    }

    #[test]
    fn safe_band_sweep_is_all_normal() {
        // namd on the robust core: Vmin ≈ 867, so [890, 880] is safe.
        let cfg = tiny_config("namd", 4, 890, 880, 3);
        let out = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg).execute();
        assert_eq!(out.runs.len(), 3 * 3);
        assert!(out.runs.iter().all(|r| r.effects.is_normal()));
        assert_eq!(out.watchdog_power_cycles, 0);
    }

    #[test]
    fn deep_sweep_reaches_crashes_and_recovers() {
        let cfg = tiny_config("bwaves", 0, 890, 840, 2);
        let out = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg).execute();
        let any_sc = out.runs.iter().any(|r| r.effects.contains(Effect::Sc));
        assert!(any_sc, "sweeping bwaves to 840mV on core 0 must crash");
        assert!(
            out.watchdog_power_cycles > 0,
            "watchdog must have recovered"
        );
        // The early-stop keeps the sweep from sweeping all 11 steps blindly.
        let swept: std::collections::BTreeSet<Millivolts> =
            out.runs.iter().map(|r| r.pmd_mv).collect();
        assert!(swept.len() <= 11);
    }

    #[test]
    fn abnormal_effects_appear_below_vmin() {
        // bwaves on sensitive core 0: Vmin ≈ 905; sweep through it.
        let cfg = tiny_config("bwaves", 0, 915, 885, 4);
        let out = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg).execute();
        let abnormal = out.runs.iter().filter(|r| !r.effects.is_normal()).count();
        assert!(abnormal > 0, "sweeping through Vmin must expose effects");
        // And the top of the sweep is still clean.
        assert!(out
            .runs
            .iter()
            .filter(|r| r.pmd_mv == Millivolts::new(915))
            .all(|r| r.effects.is_normal()));
    }

    #[test]
    fn parallel_equals_serial() {
        let cfg = CampaignConfig::builder()
            .benchmarks(["namd", "mcf"])
            .cores([CoreId::new(0), CoreId::new(4)])
            .iterations(2)
            .start_voltage(Millivolts::new(890))
            .floor_voltage(Millivolts::new(870))
            .seed(11)
            .build()
            .unwrap();
        let campaign = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg);
        let serial = campaign.execute();
        let parallel = campaign.execute_parallel(4);
        assert_eq!(serial.runs.len(), parallel.runs.len());
        for (a, b) in serial.runs.iter().zip(&parallel.runs) {
            assert_eq!(a.program, b.program);
            assert_eq!(a.core, b.core);
            assert_eq!(a.pmd_mv, b.pmd_mv);
            assert_eq!(a.iteration, b.iteration);
            assert_eq!(
                a.effects, b.effects,
                "{} {} {}",
                a.program, a.core, a.pmd_mv
            );
        }
        assert_eq!(serial.goldens, parallel.goldens);
    }

    #[test]
    fn cached_rerun_hits_and_preserves_outcome() {
        let cfg = tiny_config("bwaves", 0, 915, 885, 2);
        let campaign = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg);
        let plain = campaign.execute();

        let mut cache = CampaignCache::new();
        let cold = campaign.execute_with(1, &mut [], Some(&mut cache), None);
        assert!(!cache.is_empty(), "cold run must populate the cache");

        let mut cache_after = cache.clone();
        let warm = campaign.execute_with(1, &mut [], Some(&mut cache_after), None);
        assert_eq!(
            cache.to_jsonl(),
            cache_after.to_jsonl(),
            "a fully-cached rerun must not grow the cache"
        );

        for outcome in [&cold, &warm] {
            assert_eq!(outcome.runs, plain.runs);
            assert_eq!(outcome.goldens, plain.goldens);
            assert_eq!(outcome.watchdog_power_cycles, plain.watchdog_power_cycles);
        }
    }

    #[test]
    fn profiles_cover_all_counters_and_goldens() {
        let benches = vec![
            BenchmarkRef {
                name: "namd".into(),
                dataset: margins_workloads::Dataset::Ref,
            },
            BenchmarkRef {
                name: "mcf".into(),
                dataset: margins_workloads::Dataset::Ref,
            },
        ];
        let profiles =
            profile(ChipSpec::new(Corner::Ttt, 0), &benches, CoreId::new(0)).expect("suite names");
        assert_eq!(profiles.len(), 2);
        for p in &profiles {
            assert!(p.counters.get(margins_sim::PmuEvent::InstRetired) > 0);
            assert!(p.cycles > 0);
        }
        assert_ne!(profiles[0].golden, profiles[1].golden);
    }

    #[test]
    fn profiling_unknown_benchmark_is_an_error_not_a_panic() {
        let benches = vec![BenchmarkRef {
            name: "no-such-benchmark".into(),
            dataset: margins_workloads::Dataset::Ref,
        }];
        let err = profile(ChipSpec::new(Corner::Ttt, 0), &benches, CoreId::new(0)).unwrap_err();
        assert_eq!(err.name, "no-such-benchmark");
        assert!(err.to_string().contains("no-such-benchmark"));
    }

    #[test]
    fn unknown_benchmark_suggests_near_misses() {
        let err = UnknownBenchmark::new("namd2");
        assert_eq!(err.suggestions.first().map(String::as_str), Some("namd"));
        let rendered = err.to_string();
        assert!(rendered.contains("unknown benchmark 'namd2'"), "{rendered}");
        assert!(rendered.contains("did you mean 'namd'"), "{rendered}");

        let hopeless = UnknownBenchmark::new("zzzzzz");
        assert!(hopeless.suggestions.is_empty());
        assert!(!hopeless.to_string().contains("did you mean"));
    }

    #[test]
    fn traced_execution_streams_a_valid_stream_and_matches_outcome() {
        let cfg = tiny_config("bwaves", 0, 915, 895, 2);
        let campaign = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg);

        let mut memory = margins_trace::MemorySink::new();
        let mut jsonl = margins_trace::JsonlSink::new(Vec::new());
        let traced = {
            let mut sinks: [&mut dyn margins_trace::Sink; 2] = [&mut memory, &mut jsonl];
            campaign.execute_traced(1, &mut sinks)
        };
        let untraced = campaign.execute();

        // Tracing must not perturb campaign results.
        assert_eq!(traced.runs.len(), untraced.runs.len());
        for (a, b) in traced.runs.iter().zip(&untraced.runs) {
            assert_eq!(
                (&a.program, a.core, a.pmd_mv, a.iteration),
                (&b.program, b.core, b.pmd_mv, b.iteration)
            );
            assert_eq!(a.effects, b.effects);
        }
        assert_eq!(traced.goldens, untraced.goldens);
        assert_eq!(traced.watchdog_power_cycles, untraced.watchdog_power_cycles);

        // The serialized stream validates structurally.
        let bytes = jsonl.into_inner().expect("in-memory writer");
        let text = String::from_utf8(bytes).expect("utf8");
        let stats = margins_trace::validate_jsonl(&text).expect("structurally valid stream");
        assert_eq!(stats.records as usize, memory.records.len());
        assert_eq!(stats.runs as usize, traced.runs.len());
        assert_eq!(stats.campaigns, 1);
        assert_eq!(stats.sweeps, 1);
        assert_eq!(stats.power_cycles, u64::from(traced.watchdog_power_cycles));

        // Per-run events carry classification and severity verbatim.
        let weights = SeverityWeights::paper();
        let completed: Vec<_> = memory
            .records
            .iter()
            .filter_map(|r| match &r.event {
                TraceEvent::RunCompleted {
                    effects, severity, ..
                } => Some((effects.clone(), *severity)),
                _ => None,
            })
            .collect();
        assert_eq!(completed.len(), traced.runs.len());
        for ((effects, severity), run) in completed.iter().zip(&traced.runs) {
            assert_eq!(*effects, run.effects.to_string());
            assert!((severity - weights.run_severity(run.effects)).abs() < 1e-12);
        }
    }

    #[test]
    fn metered_execution_matches_serial_and_sharded() {
        let cfg = CampaignConfig::builder()
            .benchmarks(["bwaves", "namd"])
            .cores([CoreId::new(0), CoreId::new(4)])
            .iterations(1)
            .start_voltage(Millivolts::new(915))
            .floor_voltage(Millivolts::new(895))
            .seed(7)
            .build()
            .unwrap();
        let campaign = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg);

        let (serial, serial_metrics) = campaign.execute_metered(1, &mut [], None, None);
        let (sharded, sharded_metrics) = campaign.execute_metered(4, &mut [], None, None);

        // Metering must not perturb campaign results.
        let plain = campaign.execute();
        assert_eq!(serial.runs.len(), plain.runs.len());
        assert_eq!(sharded.runs.len(), plain.runs.len());

        // The registry rides the deterministic stream, so serial and
        // sharded snapshots agree byte for byte.
        let exposition = serial_metrics.to_openmetrics();
        assert_eq!(exposition, sharded_metrics.to_openmetrics());
        assert!(
            exposition.contains("voltmargin_campaigns_total 1"),
            "{exposition}"
        );
        assert!(
            exposition.contains("voltmargin_sweeps_total 4"),
            "{exposition}"
        );
        assert!(exposition.ends_with("# EOF\n"), "{exposition}");

        // The registry sees the same stream other sinks do.
        let mut memory = margins_trace::MemorySink::new();
        let (_, metered) = {
            let mut sinks: [&mut dyn margins_trace::Sink; 1] = [&mut memory];
            campaign.execute_metered(1, &mut sinks, None, None)
        };
        let mut replayed = margins_trace::MetricsRegistry::new();
        for record in &memory.records {
            margins_trace::Sink::emit(&mut replayed, record);
        }
        margins_trace::Sink::finish(&mut replayed);
        assert_eq!(metered.to_openmetrics(), replayed.to_openmetrics());
    }

    #[test]
    fn profiled_stream_is_byte_identical_serial_vs_sharded() {
        let cfg = CampaignConfig::builder()
            .benchmarks(["bwaves", "namd"])
            .cores([CoreId::new(0), CoreId::new(4)])
            .iterations(1)
            .start_voltage(Millivolts::new(915))
            .floor_voltage(Millivolts::new(895))
            .seed(7)
            .profile(true)
            .build()
            .unwrap();
        let campaign = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg);

        let stream = |threads: usize| {
            let mut jsonl = margins_trace::JsonlSink::new(Vec::new());
            {
                let mut sinks: [&mut dyn margins_trace::Sink; 1] = [&mut jsonl];
                let _ = campaign.execute_traced(threads, &mut sinks);
            }
            String::from_utf8(jsonl.into_inner().expect("in-memory writer")).expect("utf8")
        };

        let serial = stream(1);
        let sharded = stream(4);
        let rerun = stream(1);
        assert_eq!(
            serial, sharded,
            "profiled stream must not depend on shard count"
        );
        assert_eq!(
            serial, rerun,
            "profiled stream must be stable across reruns"
        );

        let stats = margins_trace::validate_jsonl(&serial).expect("valid profiled stream");
        assert_eq!(stats.sweeps, 4);
        assert_eq!(stats.profile_samples, 5 * 4, "five phases per sweep");
        assert_eq!(stats.profile_phases, 5, "five campaign rollups");
    }

    #[test]
    fn profile_rollups_aggregate_the_per_sweep_samples() {
        let cfg = CampaignConfig::builder()
            .benchmarks(["bwaves", "namd"])
            .cores([CoreId::new(0)])
            .iterations(2)
            .start_voltage(Millivolts::new(915))
            .floor_voltage(Millivolts::new(895))
            .seed(7)
            .profile(true)
            .build()
            .unwrap();
        let campaign = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg);
        let mut memory = margins_trace::MemorySink::new();
        {
            let mut sinks: [&mut dyn margins_trace::Sink; 1] = [&mut memory];
            let _ = campaign.execute_traced(1, &mut sinks);
        }

        let mut sampled: std::collections::BTreeMap<String, (u64, u64)> =
            std::collections::BTreeMap::new();
        let mut rolled: std::collections::BTreeMap<String, (u64, u64)> =
            std::collections::BTreeMap::new();
        for record in &memory.records {
            match &record.event {
                TraceEvent::ProfileSample {
                    phase,
                    ops,
                    fault_samples,
                    ..
                } => {
                    let e = sampled.entry(phase.clone()).or_default();
                    e.0 += ops;
                    e.1 += fault_samples;
                }
                TraceEvent::ProfilePhase {
                    phase,
                    sweeps,
                    ops,
                    fault_samples,
                    ..
                } => {
                    assert_eq!(*sweeps, 2);
                    rolled.insert(phase.clone(), (*ops, *fault_samples));
                }
                _ => {}
            }
        }
        assert_eq!(sampled, rolled, "rollups must sum the per-sweep samples");

        // An exhaustive sweep attributes step work to `probe`, none to
        // `search_step`, and executes real instructions in both executed
        // phases.
        assert!(rolled["golden_run"].0 > 0);
        assert!(rolled["probe"].0 > 0);
        assert!(rolled["probe"].1 > 0, "deep probes draw fault samples");
        assert_eq!(rolled["search_step"], (0, 0));
    }

    #[test]
    fn merging_campaigns_concatenates_iterations() {
        let make = |seed: u64| {
            let cfg = tiny_config("namd", 4, 890, 880, 2);
            let cfg = CampaignConfig { seed, ..cfg };
            Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg).execute()
        };
        let a = make(1);
        let b = make(2);
        let merged = CampaignOutcome::merge([a.clone(), b]).unwrap();
        assert_eq!(merged.config.iterations, 4);
        assert_eq!(merged.runs.len(), a.runs.len() * 2);
        // Iteration indices are unique per coordinate.
        let mut seen = std::collections::HashSet::new();
        for r in &merged.runs {
            assert!(
                seen.insert((r.pmd_mv, r.iteration)),
                "{}@{}",
                r.pmd_mv,
                r.iteration
            );
        }
        // The merged outcome analyzes cleanly with the widened N.
        let result = crate::regions::analyze(&merged, &crate::severity::SeverityWeights::paper());
        assert_eq!(result.summaries[0].steps[0].effect_sets.len(), 4);
    }

    #[test]
    fn merge_rejects_mismatched_campaigns() {
        let a = Campaign::new(
            ChipSpec::new(Corner::Ttt, 0),
            tiny_config("namd", 4, 890, 880, 1),
        )
        .execute();
        let b = Campaign::new(
            ChipSpec::new(Corner::Tff, 1),
            tiny_config("namd", 4, 890, 880, 1),
        )
        .execute();
        assert_eq!(
            CampaignOutcome::merge([a.clone(), b]).unwrap_err(),
            MergeError::ChipMismatch
        );
        let c = Campaign::new(
            ChipSpec::new(Corner::Ttt, 0),
            tiny_config("namd", 4, 895, 880, 1),
        )
        .execute();
        assert_eq!(
            CampaignOutcome::merge([a, c]).unwrap_err(),
            MergeError::ConfigMismatch
        );
        assert_eq!(
            CampaignOutcome::merge(Vec::new()).unwrap_err(),
            MergeError::Empty
        );
    }

    #[test]
    fn run_seeds_are_distinct_across_coordinates() {
        let s = |mv, iter| run_seed(1, "bwaves", "ref", CoreId::new(0), mv, iter);
        assert_ne!(s(900, 0), s(900, 1));
        assert_ne!(s(900, 0), s(895, 0));
        assert_ne!(
            run_seed(1, "bwaves", "ref", CoreId::new(0), 900, 0),
            run_seed(1, "bwaves", "ref", CoreId::new(1), 900, 0)
        );
        assert_ne!(
            run_seed(1, "bwaves", "ref", CoreId::new(0), 900, 0),
            run_seed(1, "bwaves", "train", CoreId::new(0), 900, 0)
        );
        assert_eq!(s(900, 3), s(900, 3), "seeds are deterministic");
    }

    #[test]
    fn edit_distance_matches_known_values() {
        assert_eq!(edit_distance("", "namd"), 4);
        assert_eq!(edit_distance("namd", "namd"), 0);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("mcf", "lbm"), 3);
    }
}
