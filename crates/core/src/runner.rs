//! The execution phase of Figure 2: voltage sweeps with recovery.
//!
//! For every (benchmark, core) pair the runner applies the *reliable cores
//! setup* (target PMD at full clock, every other PMD parked at 300 MHz),
//! captures a golden output digest at nominal conditions, then walks the
//! shared PMD rail downward in 5 mV steps executing N iterations per step.
//! After each run the rail is restored to nominal before the log is
//! persisted (*safe data collection*), and the watchdog power-cycles the
//! board whenever a run hangs it.

use crate::classify::{classify_run, ClassifiedRun};
use crate::config::SweptRail;
use crate::config::{BenchmarkRef, CampaignConfig};
use crate::severity::SeverityWeights;
use crate::watchdog::Watchdog;
use margins_sim::volt::{Millivolts, PMD_NOMINAL, SOC_NOMINAL};
use margins_sim::{ChipSpec, CoreId, CounterFile, OutputDigest, PmdId, System, SystemConfig};
use margins_trace::{EventBuffer, Sink, StreamFinalizer, TraceEvent};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A characterization campaign: one chip, one configuration.
#[derive(Debug, Clone)]
pub struct Campaign {
    spec: ChipSpec,
    config: CampaignConfig,
}

/// Everything a campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The characterized chip.
    pub spec: ChipSpec,
    /// The configuration that ran.
    pub config: CampaignConfig,
    /// All classified runs, ordered by (benchmark, core, voltage ↓, iter).
    pub runs: Vec<ClassifiedRun>,
    /// Golden digests per (benchmark, dataset).
    pub goldens: BTreeMap<(String, String), OutputDigest>,
    /// Watchdog recoveries performed during the campaign.
    pub watchdog_power_cycles: u32,
}

impl Campaign {
    /// Creates a campaign for `spec` with `config`.
    #[must_use]
    pub fn new(spec: ChipSpec, config: CampaignConfig) -> Self {
        Campaign { spec, config }
    }

    /// The chip under characterization.
    #[must_use]
    pub fn spec(&self) -> ChipSpec {
        self.spec
    }

    /// The campaign configuration.
    #[must_use]
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Executes the campaign serially.
    #[must_use]
    pub fn execute(&self) -> CampaignOutcome {
        self.execute_parallel(1)
    }

    /// Executes the campaign sharded over `threads` worker threads, one
    /// pristine simulated board per work item. Results are bit-identical to
    /// the serial execution: run seeds depend only on (campaign seed,
    /// benchmark, core, voltage, iteration), and every sweep starts from
    /// power-on state, never from another item's board history.
    #[must_use]
    pub fn execute_parallel(&self, threads: usize) -> CampaignOutcome {
        self.execute_traced(threads, &mut [])
    }

    /// Executes the campaign sharded over `threads` workers while streaming
    /// telemetry into `sinks`.
    ///
    /// Every sink receives the same finalized record stream, live and in
    /// canonical order: the campaign preamble (`CampaignStarted`, one
    /// `ShardScheduled` per (benchmark, core) work item — the *logical*
    /// shard; which worker thread executes it is an execution detail the
    /// trace never records), then each item's events in item order —
    /// benchmarks-major, exactly the order the serial execution visits
    /// them — then the `CampaignFinished` summary.
    /// Workers stage their events in per-item buffers; the merge thread
    /// releases an item's events as soon as its place in the canonical
    /// order is reached, so the stream is *byte-deterministic* for a fixed
    /// (chip, configuration) regardless of `threads` or scheduling, while
    /// progress sinks still see events during the campaign.
    ///
    /// Passing no sinks disables tracing entirely: no event is ever
    /// constructed, and campaign results are identical either way.
    #[must_use]
    pub fn execute_traced(&self, threads: usize, sinks: &mut [&mut dyn Sink]) -> CampaignOutcome {
        let items: Vec<(usize, CoreId)> = self
            .config
            .benchmarks
            .iter()
            .enumerate()
            .flat_map(|(bi, _)| self.config.cores.iter().map(move |c| (bi, *c)))
            .collect();
        let threads = threads.clamp(1, items.len().max(1));

        // Shard work items round-robin, remembering each item's canonical
        // position so the merge below can reorder completions.
        let mut shards: Vec<Vec<(usize, usize, CoreId)>> = vec![Vec::new(); threads];
        for (i, (bench_idx, core)) in items.iter().enumerate() {
            shards[i % threads].push((i, *bench_idx, *core));
        }
        let traced = !sinks.is_empty();

        let mut finalizer = StreamFinalizer::new();
        if traced {
            emit_record(
                &mut finalizer,
                sinks,
                TraceEvent::CampaignStarted {
                    chip: self.spec.to_string(),
                    rail: self.rail_name().to_owned(),
                    benchmarks: self.config.benchmarks.len() as u32,
                    cores: self.config.cores.len() as u32,
                    steps: self.config.step_count(),
                    iterations: self.config.iterations,
                    shards: items.len() as u32,
                    seed: self.config.seed,
                },
            );
            // The schedule announces *logical* shards (one per work item,
            // in canonical order) so the preamble is byte-identical no
            // matter how many worker threads execute it.
            for (item_idx, _) in items.iter().enumerate() {
                emit_record(
                    &mut finalizer,
                    sinks,
                    TraceEvent::ShardScheduled {
                        shard: item_idx as u32,
                        items: self.config.step_count() * self.config.iterations,
                    },
                );
            }
        }

        let mut runs: Vec<ClassifiedRun> = Vec::new();
        let mut goldens = BTreeMap::new();
        let mut power_cycles = 0u32;
        crossbeam::thread::scope(|scope| {
            let (tx, rx) = crossbeam::channel::unbounded::<(usize, TracedItem)>();
            for shard in &shards {
                let tx = tx.clone();
                scope.spawn(move |_| self.run_shard_items(shard, traced, &tx));
            }
            drop(tx);

            // Reorder buffer: completions arrive in scheduling order; emit
            // and accumulate them in canonical item order.
            let mut pending: BTreeMap<usize, TracedItem> = BTreeMap::new();
            let mut next = 0usize;
            for (idx, item) in rx {
                pending.insert(idx, item);
                while let Some(ready) = pending.remove(&next) {
                    for event in ready.events {
                        emit_record(&mut finalizer, sinks, event);
                    }
                    goldens.insert(ready.golden_key, ready.golden);
                    runs.extend(ready.runs);
                    power_cycles += ready.power_cycles;
                    next += 1;
                }
            }
        })
        // lint: allow(no-panic) — scope error only surfaces worker panics
        .expect("campaign worker panicked");

        let rail = self.config.rail;
        runs.sort_by(|a, b| {
            (
                &a.program,
                &a.dataset,
                a.core,
                std::cmp::Reverse(a.swept_mv(rail)),
                a.iteration,
            )
                .cmp(&(
                    &b.program,
                    &b.dataset,
                    b.core,
                    std::cmp::Reverse(b.swept_mv(rail)),
                    b.iteration,
                ))
        });
        if traced {
            let total = runs.len() as u64;
            emit_record(
                &mut finalizer,
                sinks,
                TraceEvent::CampaignFinished {
                    runs: total,
                    power_cycles,
                },
            );
            for sink in sinks.iter_mut() {
                sink.finish();
            }
        }
        CampaignOutcome {
            spec: self.spec,
            config: self.config.clone(),
            runs,
            goldens,
            watchdog_power_cycles: power_cycles,
        }
    }

    /// The serialized name of the swept rail in trace events.
    fn rail_name(&self) -> &'static str {
        match self.config.rail {
            SweptRail::Pmd => "pmd",
            SweptRail::PcpSoc => "soc",
        }
    }

    fn run_shard_items(
        &self,
        items: &[(usize, usize, CoreId)],
        traced: bool,
        tx: &crossbeam::channel::Sender<(usize, TracedItem)>,
    ) {
        let sys_config = SystemConfig {
            enhancements: self.config.enhancements,
            ..SystemConfig::default()
        };
        for (global_idx, bench_idx, core) in items {
            // A pristine board per work item — the §2.2.1 initialization
            // phase. Starting every sweep from power-on state keeps all
            // modelled quantities (golden runtime, thermal history)
            // independent of which items a worker ran before, so traced
            // streams match across serial and sharded schedules.
            let mut system = System::new(self.spec, sys_config);
            let mut watchdog = Watchdog::new();
            let bench = &self.config.benchmarks[*bench_idx];
            let buffer = Arc::new(EventBuffer::new());
            if traced {
                system.set_observer(buffer.clone());
                system.observe(|| TraceEvent::SweepStarted {
                    program: bench.name.clone(),
                    dataset: bench.dataset.label().to_owned(),
                    core: core.index() as u8,
                    shard: *global_idx as u32,
                });
            }
            let sweep = self.sweep(&mut system, &mut watchdog, bench, *core);
            if traced {
                let sweep_runs = sweep.runs.len() as u32;
                system.observe(|| TraceEvent::SweepFinished {
                    program: bench.name.clone(),
                    dataset: bench.dataset.label().to_owned(),
                    core: core.index() as u8,
                    runs: sweep_runs,
                });
                system.clear_observer();
            }
            let item = TracedItem {
                events: buffer.drain(),
                golden_key: (bench.name.clone(), bench.dataset.label().to_owned()),
                golden: sweep.golden,
                runs: sweep.runs,
                power_cycles: watchdog.power_cycles(),
            };
            // A closed receiver means the campaign was abandoned; nothing
            // useful remains to do with this item's result.
            let _ = tx.send((*global_idx, item));
        }
    }

    /// The downward sweep for one (benchmark, core) pair.
    fn sweep(
        &self,
        system: &mut System,
        watchdog: &mut Watchdog,
        bench: &BenchmarkRef,
        core: CoreId,
    ) -> SweepRuns {
        let program = margins_workloads::suite::by_name(&bench.name, bench.dataset)
            // lint: allow(no-panic) — benchmark names validated at config build time
            .expect("benchmark validated at config build time");

        let mut recoveries = 0u32;
        watchdog.ensure_responsive_observed(system, &mut recoveries);
        self.apply_reliable_cores_setup(system, core);

        // Golden run at nominal conditions.
        let golden_seed = run_seed(
            self.config.seed,
            &bench.name,
            bench.dataset.label(),
            core,
            0,
            u32::MAX,
        );
        let golden_record = system
            .run(program.as_ref(), core, golden_seed)
            // lint: allow(no-panic) — watchdog.ensure_responsive_observed() ran just above
            .expect("system responsive after watchdog check");
        assert_eq!(
            golden_record.outcome,
            margins_sim::RunOutcome::Completed,
            "golden run at nominal must complete"
        );
        let golden = golden_record.digest;
        system.observe(|| TraceEvent::GoldenCaptured {
            program: bench.name.clone(),
            dataset: bench.dataset.label().to_owned(),
            core: core.index() as u8,
            digest: golden.to_string(),
            runtime_s: golden_record.runtime_s,
        });

        let mut runs: Vec<ClassifiedRun> = Vec::new();
        let mut consecutive_all_sc = 0u32;
        for (step, voltage) in self.config.sweep_voltages().enumerate() {
            system.observe(|| TraceEvent::VoltageStepped {
                rail: self.rail_name().to_owned(),
                mv: voltage.get(),
                step: step as u32,
            });
            let mut sc_runs = 0u32;
            for iteration in 0..self.config.iterations {
                if watchdog.ensure_responsive_observed(system, &mut recoveries) {
                    // Recovery wiped the V/F setup; reapply it.
                    self.apply_reliable_cores_setup(system, core);
                }
                self.set_swept_rail(system, voltage);
                let seed = run_seed(
                    self.config.seed,
                    &bench.name,
                    bench.dataset.label(),
                    core,
                    voltage.get(),
                    iteration,
                );
                let record = system
                    .run(program.as_ref(), core, seed)
                    // lint: allow(no-panic) — watchdog.ensure_responsive_observed() ran this iteration
                    .expect("ensured responsive before the run");
                // Safe data collection: restore nominal before persisting
                // the log (§2.2.1) — only possible if the board survived.
                if system.is_responsive() {
                    self.restore_swept_rail(system);
                }
                let classified = classify_run(
                    &record,
                    Some(golden),
                    iteration,
                    self.config.collect_counters,
                );
                if classified.effects.is_system_crash() {
                    sc_runs += 1;
                }
                system.observe(|| TraceEvent::RunCompleted {
                    program: classified.program.clone(),
                    dataset: classified.dataset.clone(),
                    core: core.index() as u8,
                    mv: voltage.get(),
                    iteration,
                    effects: classified.effects.to_string(),
                    severity: SeverityWeights::paper().run_severity(classified.effects),
                    runtime_s: classified.runtime_s,
                    energy_j: classified.energy_j,
                    corrected_errors: classified.corrected_errors as u64,
                    uncorrected_errors: classified.uncorrected_errors as u64,
                });
                runs.push(classified);
            }
            if sc_runs == self.config.iterations {
                consecutive_all_sc += 1;
            } else {
                consecutive_all_sc = 0;
            }
            if self.config.crash_stop_steps > 0
                && consecutive_all_sc >= self.config.crash_stop_steps
            {
                system.observe(|| TraceEvent::EarlyStop {
                    program: bench.name.clone(),
                    core: core.index() as u8,
                    mv: voltage.get(),
                    consecutive_all_sc,
                });
                break;
            }
        }
        // Leave the board responsive before handing it to the next item, so
        // a trailing hang is recovered — and traced — inside the sweep that
        // caused it. Attributing the recovery to the hanging sweep (instead
        // of the next item's setup, which differs between serial and
        // sharded schedules) keeps traced streams scheduling-independent.
        watchdog.ensure_responsive_observed(system, &mut recoveries);
        SweepRuns { golden, runs }
    }

    fn set_swept_rail(&self, system: &mut System, voltage: Millivolts) {
        let mut slimpro = system.slimpro_mut();
        match self.config.rail {
            SweptRail::Pmd => slimpro
                .set_pmd_voltage(voltage)
                // lint: allow(no-panic) — sweep grid validated at config build time
                .expect("sweep voltages validated at config build time"),
            SweptRail::PcpSoc => slimpro
                .set_soc_voltage(voltage)
                // lint: allow(no-panic) — sweep grid validated at config build time
                .expect("sweep voltages validated at config build time"),
        }
    }

    fn restore_swept_rail(&self, system: &mut System) {
        let mut slimpro = system.slimpro_mut();
        match self.config.rail {
            SweptRail::Pmd => slimpro
                .set_pmd_voltage(PMD_NOMINAL)
                // lint: allow(no-panic) — nominal is on-grid by construction
                .expect("nominal is always valid"),
            SweptRail::PcpSoc => slimpro
                .set_soc_voltage(SOC_NOMINAL)
                // lint: allow(no-panic) — nominal is on-grid by construction
                .expect("nominal is always valid"),
        }
    }

    /// The reliable-cores setup of §2.2.1.
    fn apply_reliable_cores_setup(&self, system: &mut System, core: CoreId) {
        let target_pmd = core.pmd();
        let mut slimpro = system.slimpro_mut();
        for pmd in PmdId::all() {
            let f = if pmd == target_pmd {
                self.config.target_frequency
            } else {
                self.config.parked_frequency
            };
            slimpro
                .set_pmd_frequency(pmd, f)
                // lint: allow(no-panic) — frequencies validated at config build time
                .expect("frequencies validated at config build time");
        }
    }
}

impl CampaignOutcome {
    /// Merges several campaigns of the *same chip and configuration shape*
    /// into one outcome whose iteration space is the concatenation of the
    /// inputs — the paper's methodology of "running the entire
    /// time-consuming undervolting experiment ten times for each benchmark
    /// … during 6 months" (§3.2) and aggregating.
    ///
    /// Iteration indices of later campaigns are shifted so every run keeps
    /// a unique (benchmark, core, voltage, iteration) coordinate; the
    /// merged `config.iterations` is the sum.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError`] when the campaigns disagree on chip, rail,
    /// voltage grid or frequency setup.
    pub fn merge<I>(outcomes: I) -> Result<CampaignOutcome, MergeError>
    where
        I: IntoIterator<Item = CampaignOutcome>,
    {
        let mut iter = outcomes.into_iter();
        let mut merged = iter.next().ok_or(MergeError::Empty)?;
        for outcome in iter {
            if outcome.spec != merged.spec {
                return Err(MergeError::ChipMismatch);
            }
            let a = &merged.config;
            let b = &outcome.config;
            if a.start_voltage != b.start_voltage
                || a.floor_voltage != b.floor_voltage
                || a.target_frequency != b.target_frequency
                || a.parked_frequency != b.parked_frequency
                || a.rail != b.rail
                || a.enhancements != b.enhancements
            {
                return Err(MergeError::ConfigMismatch);
            }
            let offset = merged.config.iterations;
            merged.config.iterations += outcome.config.iterations;
            merged.runs.extend(outcome.runs.into_iter().map(|mut r| {
                r.iteration += offset;
                r
            }));
            merged.goldens.extend(outcome.goldens);
            merged.watchdog_power_cycles += outcome.watchdog_power_cycles;
        }
        let rail = merged.config.rail;
        merged.runs.sort_by(|a, b| {
            (
                &a.program,
                &a.dataset,
                a.core,
                std::cmp::Reverse(a.swept_mv(rail)),
                a.iteration,
            )
                .cmp(&(
                    &b.program,
                    &b.dataset,
                    b.core,
                    std::cmp::Reverse(b.swept_mv(rail)),
                    b.iteration,
                ))
        });
        Ok(merged)
    }
}

/// Error merging campaign outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeError {
    /// No outcomes were provided.
    Empty,
    /// The campaigns characterized different chips.
    ChipMismatch,
    /// The campaigns used incompatible configurations.
    ConfigMismatch,
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Empty => f.write_str("no campaign outcomes to merge"),
            MergeError::ChipMismatch => f.write_str("campaigns characterized different chips"),
            MergeError::ConfigMismatch => f.write_str("campaigns used incompatible configurations"),
        }
    }
}

impl std::error::Error for MergeError {}

/// One completed work item, as delivered from a shard worker to the merge
/// thread: the item's staged trace events plus its share of the outcome.
struct TracedItem {
    events: Vec<TraceEvent>,
    golden_key: (String, String),
    golden: OutputDigest,
    runs: Vec<ClassifiedRun>,
    power_cycles: u32,
}

/// Seals `event` into the canonical stream and fans it out to every sink.
fn emit_record(finalizer: &mut StreamFinalizer, sinks: &mut [&mut dyn Sink], event: TraceEvent) {
    let record = finalizer.seal(event);
    for sink in sinks.iter_mut() {
        sink.emit(&record);
    }
}

struct SweepRuns {
    golden: OutputDigest,
    runs: Vec<ClassifiedRun>,
}

/// A nominal-conditions workload profile (Figure 6, phase 2): the full PMU
/// counter file plus the golden digest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Benchmark name.
    pub name: String,
    /// Dataset label.
    pub dataset: String,
    /// PMU counters of the nominal run.
    pub counters: CounterFile,
    /// Golden output digest.
    pub golden: OutputDigest,
    /// Modelled runtime at nominal conditions, seconds.
    pub runtime_s: f64,
    /// Modelled cycles.
    pub cycles: u64,
}

/// Error returned by [`profile`] when a benchmark name is not in the
/// workload suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBenchmark {
    /// The unresolvable benchmark name.
    pub name: String,
}

impl std::fmt::Display for UnknownBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown benchmark '{}'", self.name)
    }
}

impl std::error::Error for UnknownBenchmark {}

/// Profiles `benchmarks` at nominal conditions on `core` of a fresh chip
/// (§4.1: "collecting the performance counters of the entire benchmarks
/// using perf").
///
/// # Errors
///
/// Returns [`UnknownBenchmark`] when a benchmark name does not resolve in
/// `margins_workloads::suite` — unlike campaign execution, `profile` takes
/// benchmark lists that never went through config validation.
pub fn profile(
    spec: ChipSpec,
    benchmarks: &[BenchmarkRef],
    core: CoreId,
) -> Result<Vec<WorkloadProfile>, UnknownBenchmark> {
    let mut system = System::new(spec, SystemConfig::default());
    benchmarks
        .iter()
        .map(|b| {
            let program = margins_workloads::suite::by_name(&b.name, b.dataset).ok_or_else(
                || UnknownBenchmark {
                    name: b.name.clone(),
                },
            )?;
            let record = system
                .run(program.as_ref(), core, 0x0090_F11E)
                // lint: allow(no-panic) — a fresh system at nominal V/F is responsive
                .expect("nominal profiling never crashes the board");
            Ok(WorkloadProfile {
                name: b.name.clone(),
                dataset: b.dataset.label().to_owned(),
                counters: record.counters,
                golden: record.digest,
                runtime_s: record.runtime_s,
                cycles: record.cycles,
            })
        })
        .collect()
}

/// Deterministic per-run seed from the campaign coordinates.
fn run_seed(base: u64, name: &str, dataset: &str, core: CoreId, mv: u32, iteration: u32) -> u64 {
    let mut h = base ^ 0x517C_C1B7_2722_0A95;
    for b in name.bytes().chain([0xFF]).chain(dataset.bytes()) {
        h = splitmix(h ^ u64::from(b));
    }
    h = splitmix(h ^ (core.index() as u64) << 32);
    h = splitmix(h ^ u64::from(mv) << 8);
    splitmix(h ^ u64::from(iteration))
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effect::Effect;
    use margins_sim::{Corner, Millivolts};

    fn tiny_config(bench: &str, core: u8, hi: u32, lo: u32, iters: u32) -> CampaignConfig {
        CampaignConfig::builder()
            .benchmarks([bench])
            .cores([CoreId::new(core)])
            .iterations(iters)
            .start_voltage(Millivolts::new(hi))
            .floor_voltage(Millivolts::new(lo))
            .seed(7)
            .build()
            .unwrap()
    }

    #[test]
    fn safe_band_sweep_is_all_normal() {
        // namd on the robust core: Vmin ≈ 867, so [890, 880] is safe.
        let cfg = tiny_config("namd", 4, 890, 880, 3);
        let out = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg).execute();
        assert_eq!(out.runs.len(), 3 * 3);
        assert!(out.runs.iter().all(|r| r.effects.is_normal()));
        assert_eq!(out.watchdog_power_cycles, 0);
    }

    #[test]
    fn deep_sweep_reaches_crashes_and_recovers() {
        let cfg = tiny_config("bwaves", 0, 890, 840, 2);
        let out = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg).execute();
        let any_sc = out.runs.iter().any(|r| r.effects.contains(Effect::Sc));
        assert!(any_sc, "sweeping bwaves to 840mV on core 0 must crash");
        assert!(
            out.watchdog_power_cycles > 0,
            "watchdog must have recovered"
        );
        // The early-stop keeps the sweep from sweeping all 11 steps blindly.
        let swept: std::collections::BTreeSet<Millivolts> =
            out.runs.iter().map(|r| r.pmd_mv).collect();
        assert!(swept.len() <= 11);
    }

    #[test]
    fn abnormal_effects_appear_below_vmin() {
        // bwaves on sensitive core 0: Vmin ≈ 905; sweep through it.
        let cfg = tiny_config("bwaves", 0, 915, 885, 4);
        let out = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg).execute();
        let abnormal = out.runs.iter().filter(|r| !r.effects.is_normal()).count();
        assert!(abnormal > 0, "sweeping through Vmin must expose effects");
        // And the top of the sweep is still clean.
        assert!(out
            .runs
            .iter()
            .filter(|r| r.pmd_mv == Millivolts::new(915))
            .all(|r| r.effects.is_normal()));
    }

    #[test]
    fn parallel_equals_serial() {
        let cfg = CampaignConfig::builder()
            .benchmarks(["namd", "mcf"])
            .cores([CoreId::new(0), CoreId::new(4)])
            .iterations(2)
            .start_voltage(Millivolts::new(890))
            .floor_voltage(Millivolts::new(870))
            .seed(11)
            .build()
            .unwrap();
        let campaign = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg);
        let serial = campaign.execute();
        let parallel = campaign.execute_parallel(4);
        assert_eq!(serial.runs.len(), parallel.runs.len());
        for (a, b) in serial.runs.iter().zip(&parallel.runs) {
            assert_eq!(a.program, b.program);
            assert_eq!(a.core, b.core);
            assert_eq!(a.pmd_mv, b.pmd_mv);
            assert_eq!(a.iteration, b.iteration);
            assert_eq!(
                a.effects, b.effects,
                "{} {} {}",
                a.program, a.core, a.pmd_mv
            );
        }
        assert_eq!(serial.goldens, parallel.goldens);
    }

    #[test]
    fn profiles_cover_all_counters_and_goldens() {
        let benches = vec![
            BenchmarkRef {
                name: "namd".into(),
                dataset: margins_workloads::Dataset::Ref,
            },
            BenchmarkRef {
                name: "mcf".into(),
                dataset: margins_workloads::Dataset::Ref,
            },
        ];
        let profiles =
            profile(ChipSpec::new(Corner::Ttt, 0), &benches, CoreId::new(0)).expect("suite names");
        assert_eq!(profiles.len(), 2);
        for p in &profiles {
            assert!(p.counters.get(margins_sim::PmuEvent::InstRetired) > 0);
            assert!(p.cycles > 0);
        }
        assert_ne!(profiles[0].golden, profiles[1].golden);
    }

    #[test]
    fn profiling_unknown_benchmark_is_an_error_not_a_panic() {
        let benches = vec![BenchmarkRef {
            name: "no-such-benchmark".into(),
            dataset: margins_workloads::Dataset::Ref,
        }];
        let err = profile(ChipSpec::new(Corner::Ttt, 0), &benches, CoreId::new(0)).unwrap_err();
        assert_eq!(err.name, "no-such-benchmark");
        assert!(err.to_string().contains("no-such-benchmark"));
    }

    #[test]
    fn traced_execution_streams_a_valid_stream_and_matches_outcome() {
        let cfg = tiny_config("bwaves", 0, 915, 895, 2);
        let campaign = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg);

        let mut memory = margins_trace::MemorySink::new();
        let mut jsonl = margins_trace::JsonlSink::new(Vec::new());
        let traced = {
            let mut sinks: [&mut dyn margins_trace::Sink; 2] = [&mut memory, &mut jsonl];
            campaign.execute_traced(1, &mut sinks)
        };
        let untraced = campaign.execute();

        // Tracing must not perturb campaign results.
        assert_eq!(traced.runs.len(), untraced.runs.len());
        for (a, b) in traced.runs.iter().zip(&untraced.runs) {
            assert_eq!((&a.program, a.core, a.pmd_mv, a.iteration), (
                &b.program, b.core, b.pmd_mv, b.iteration
            ));
            assert_eq!(a.effects, b.effects);
        }
        assert_eq!(traced.goldens, untraced.goldens);
        assert_eq!(traced.watchdog_power_cycles, untraced.watchdog_power_cycles);

        // The serialized stream validates structurally.
        let bytes = jsonl.into_inner().expect("in-memory writer");
        let text = String::from_utf8(bytes).expect("utf8");
        let stats = margins_trace::validate_jsonl(&text).expect("structurally valid stream");
        assert_eq!(stats.records as usize, memory.records.len());
        assert_eq!(stats.runs as usize, traced.runs.len());
        assert_eq!(stats.campaigns, 1);
        assert_eq!(stats.sweeps, 1);
        assert_eq!(stats.power_cycles, u64::from(traced.watchdog_power_cycles));

        // Per-run events carry classification and severity verbatim.
        let weights = SeverityWeights::paper();
        let completed: Vec<_> = memory
            .records
            .iter()
            .filter_map(|r| match &r.event {
                TraceEvent::RunCompleted {
                    effects, severity, ..
                } => Some((effects.clone(), *severity)),
                _ => None,
            })
            .collect();
        assert_eq!(completed.len(), traced.runs.len());
        for ((effects, severity), run) in completed.iter().zip(&traced.runs) {
            assert_eq!(*effects, run.effects.to_string());
            assert!((severity - weights.run_severity(run.effects)).abs() < 1e-12);
        }
    }

    #[test]
    fn merging_campaigns_concatenates_iterations() {
        let make = |seed: u64| {
            let cfg = tiny_config("namd", 4, 890, 880, 2);
            let cfg = CampaignConfig { seed, ..cfg };
            Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg).execute()
        };
        let a = make(1);
        let b = make(2);
        let merged = CampaignOutcome::merge([a.clone(), b]).unwrap();
        assert_eq!(merged.config.iterations, 4);
        assert_eq!(merged.runs.len(), a.runs.len() * 2);
        // Iteration indices are unique per coordinate.
        let mut seen = std::collections::HashSet::new();
        for r in &merged.runs {
            assert!(
                seen.insert((r.pmd_mv, r.iteration)),
                "{}@{}",
                r.pmd_mv,
                r.iteration
            );
        }
        // The merged outcome analyzes cleanly with the widened N.
        let result = crate::regions::analyze(&merged, &crate::severity::SeverityWeights::paper());
        assert_eq!(result.summaries[0].steps[0].effect_sets.len(), 4);
    }

    #[test]
    fn merge_rejects_mismatched_campaigns() {
        let a = Campaign::new(
            ChipSpec::new(Corner::Ttt, 0),
            tiny_config("namd", 4, 890, 880, 1),
        )
        .execute();
        let b = Campaign::new(
            ChipSpec::new(Corner::Tff, 1),
            tiny_config("namd", 4, 890, 880, 1),
        )
        .execute();
        assert_eq!(
            CampaignOutcome::merge([a.clone(), b]).unwrap_err(),
            MergeError::ChipMismatch
        );
        let c = Campaign::new(
            ChipSpec::new(Corner::Ttt, 0),
            tiny_config("namd", 4, 895, 880, 1),
        )
        .execute();
        assert_eq!(
            CampaignOutcome::merge([a, c]).unwrap_err(),
            MergeError::ConfigMismatch
        );
        assert_eq!(
            CampaignOutcome::merge(Vec::new()).unwrap_err(),
            MergeError::Empty
        );
    }

    #[test]
    fn run_seeds_are_distinct_across_coordinates() {
        let s = |mv, iter| run_seed(1, "bwaves", "ref", CoreId::new(0), mv, iter);
        assert_ne!(s(900, 0), s(900, 1));
        assert_ne!(s(900, 0), s(895, 0));
        assert_ne!(
            run_seed(1, "bwaves", "ref", CoreId::new(0), 900, 0),
            run_seed(1, "bwaves", "ref", CoreId::new(1), 900, 0)
        );
        assert_ne!(
            run_seed(1, "bwaves", "ref", CoreId::new(0), 900, 0),
            run_seed(1, "bwaves", "train", CoreId::new(0), 900, 0)
        );
        assert_eq!(s(900, 3), s(900, 3), "seeds are deterministic");
    }
}
