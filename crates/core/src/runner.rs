//! The execution phase of Figure 2: voltage sweeps with recovery.
//!
//! For every (benchmark, core) pair the runner applies the *reliable cores
//! setup* (target PMD at full clock, every other PMD parked at 300 MHz),
//! captures a golden output digest at nominal conditions, then walks the
//! shared PMD rail downward in 5 mV steps executing N iterations per step.
//! After each run the rail is restored to nominal before the log is
//! persisted (*safe data collection*), and the watchdog power-cycles the
//! board whenever a run hangs it.

use crate::classify::{classify_run, ClassifiedRun};
use crate::config::SweptRail;
use crate::config::{BenchmarkRef, CampaignConfig};
use crate::watchdog::Watchdog;
use margins_sim::volt::{Millivolts, PMD_NOMINAL, SOC_NOMINAL};
use margins_sim::{ChipSpec, CoreId, CounterFile, OutputDigest, PmdId, System, SystemConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A characterization campaign: one chip, one configuration.
#[derive(Debug, Clone)]
pub struct Campaign {
    spec: ChipSpec,
    config: CampaignConfig,
}

/// Everything a campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The characterized chip.
    pub spec: ChipSpec,
    /// The configuration that ran.
    pub config: CampaignConfig,
    /// All classified runs, ordered by (benchmark, core, voltage ↓, iter).
    pub runs: Vec<ClassifiedRun>,
    /// Golden digests per (benchmark, dataset).
    pub goldens: BTreeMap<(String, String), OutputDigest>,
    /// Watchdog recoveries performed during the campaign.
    pub watchdog_power_cycles: u32,
}

impl Campaign {
    /// Creates a campaign for `spec` with `config`.
    #[must_use]
    pub fn new(spec: ChipSpec, config: CampaignConfig) -> Self {
        Campaign { spec, config }
    }

    /// The chip under characterization.
    #[must_use]
    pub fn spec(&self) -> ChipSpec {
        self.spec
    }

    /// The campaign configuration.
    #[must_use]
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Executes the campaign serially.
    #[must_use]
    pub fn execute(&self) -> CampaignOutcome {
        self.execute_parallel(1)
    }

    /// Executes the campaign sharded over `threads` worker threads, one
    /// simulated board per worker. Results are bit-identical to the serial
    /// execution: run seeds depend only on (campaign seed, benchmark, core,
    /// voltage, iteration), never on scheduling.
    #[must_use]
    pub fn execute_parallel(&self, threads: usize) -> CampaignOutcome {
        let items: Vec<(usize, CoreId)> = self
            .config
            .benchmarks
            .iter()
            .enumerate()
            .flat_map(|(bi, _)| self.config.cores.iter().map(move |c| (bi, *c)))
            .collect();
        let threads = threads.clamp(1, items.len().max(1));

        let mut shards: Vec<Vec<(usize, CoreId)>> = vec![Vec::new(); threads];
        for (i, item) in items.iter().enumerate() {
            shards[i % threads].push(*item);
        }

        let shard_results: Vec<ShardResult> = if threads == 1 {
            vec![self.run_shard(&shards[0])]
        } else {
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter()
                    .map(|shard| scope.spawn(move |_| self.run_shard(shard)))
                    .collect();
                handles
                    .into_iter()
                    // lint: allow(no-panic) — a panicked worker already lost campaign data
                    .map(|h| h.join().expect("campaign worker panicked"))
                    .collect()
            })
            // lint: allow(no-panic) — scope error only surfaces worker panics
            .expect("campaign scope panicked")
        };

        let mut runs = Vec::new();
        let mut goldens = BTreeMap::new();
        let mut power_cycles = 0;
        for shard in shard_results {
            runs.extend(shard.runs);
            goldens.extend(shard.goldens);
            power_cycles += shard.power_cycles;
        }
        let rail = self.config.rail;
        runs.sort_by(|a, b| {
            (
                &a.program,
                &a.dataset,
                a.core,
                std::cmp::Reverse(a.swept_mv(rail)),
                a.iteration,
            )
                .cmp(&(
                    &b.program,
                    &b.dataset,
                    b.core,
                    std::cmp::Reverse(b.swept_mv(rail)),
                    b.iteration,
                ))
        });
        CampaignOutcome {
            spec: self.spec,
            config: self.config.clone(),
            runs,
            goldens,
            watchdog_power_cycles: power_cycles,
        }
    }

    fn run_shard(&self, items: &[(usize, CoreId)]) -> ShardResult {
        let sys_config = SystemConfig {
            enhancements: self.config.enhancements,
            ..SystemConfig::default()
        };
        let mut system = System::new(self.spec, sys_config);
        let mut watchdog = Watchdog::new();
        let mut result = ShardResult::default();
        for (bench_idx, core) in items {
            let bench = &self.config.benchmarks[*bench_idx];
            let sweep = self.sweep(&mut system, &mut watchdog, bench, *core);
            result.goldens.insert(
                (bench.name.clone(), bench.dataset.label().to_owned()),
                sweep.golden,
            );
            result.runs.extend(sweep.runs);
        }
        result.power_cycles = watchdog.power_cycles();
        result
    }

    /// The downward sweep for one (benchmark, core) pair.
    fn sweep(
        &self,
        system: &mut System,
        watchdog: &mut Watchdog,
        bench: &BenchmarkRef,
        core: CoreId,
    ) -> SweepRuns {
        let program = margins_workloads::suite::by_name(&bench.name, bench.dataset)
            // lint: allow(no-panic) — benchmark names validated at config build time
            .expect("benchmark validated at config build time");

        watchdog.ensure_responsive(system);
        self.apply_reliable_cores_setup(system, core);

        // Golden run at nominal conditions.
        let golden_seed = run_seed(
            self.config.seed,
            &bench.name,
            bench.dataset.label(),
            core,
            0,
            u32::MAX,
        );
        let golden_record = system
            .run(program.as_ref(), core, golden_seed)
            // lint: allow(no-panic) — watchdog.ensure_responsive() ran just above
            .expect("system responsive after watchdog check");
        assert_eq!(
            golden_record.outcome,
            margins_sim::RunOutcome::Completed,
            "golden run at nominal must complete"
        );
        let golden = golden_record.digest;

        let mut runs = Vec::new();
        let mut consecutive_all_sc = 0u32;
        for voltage in self.config.sweep_voltages() {
            let mut sc_runs = 0u32;
            for iteration in 0..self.config.iterations {
                if watchdog.ensure_responsive(system) {
                    // Recovery wiped the V/F setup; reapply it.
                    self.apply_reliable_cores_setup(system, core);
                }
                self.set_swept_rail(system, voltage);
                let seed = run_seed(
                    self.config.seed,
                    &bench.name,
                    bench.dataset.label(),
                    core,
                    voltage.get(),
                    iteration,
                );
                let record = system
                    .run(program.as_ref(), core, seed)
                    // lint: allow(no-panic) — watchdog.ensure_responsive() ran this iteration
                    .expect("ensured responsive before the run");
                // Safe data collection: restore nominal before persisting
                // the log (§2.2.1) — only possible if the board survived.
                if system.is_responsive() {
                    self.restore_swept_rail(system);
                }
                let classified = classify_run(
                    &record,
                    Some(golden),
                    iteration,
                    self.config.collect_counters,
                );
                if classified.effects.is_system_crash() {
                    sc_runs += 1;
                }
                runs.push(classified);
            }
            if sc_runs == self.config.iterations {
                consecutive_all_sc += 1;
            } else {
                consecutive_all_sc = 0;
            }
            if self.config.crash_stop_steps > 0
                && consecutive_all_sc >= self.config.crash_stop_steps
            {
                break;
            }
        }
        SweepRuns { golden, runs }
    }

    fn set_swept_rail(&self, system: &mut System, voltage: Millivolts) {
        let mut slimpro = system.slimpro_mut();
        match self.config.rail {
            SweptRail::Pmd => slimpro
                .set_pmd_voltage(voltage)
                // lint: allow(no-panic) — sweep grid validated at config build time
                .expect("sweep voltages validated at config build time"),
            SweptRail::PcpSoc => slimpro
                .set_soc_voltage(voltage)
                // lint: allow(no-panic) — sweep grid validated at config build time
                .expect("sweep voltages validated at config build time"),
        }
    }

    fn restore_swept_rail(&self, system: &mut System) {
        let mut slimpro = system.slimpro_mut();
        match self.config.rail {
            SweptRail::Pmd => slimpro
                .set_pmd_voltage(PMD_NOMINAL)
                // lint: allow(no-panic) — nominal is on-grid by construction
                .expect("nominal is always valid"),
            SweptRail::PcpSoc => slimpro
                .set_soc_voltage(SOC_NOMINAL)
                // lint: allow(no-panic) — nominal is on-grid by construction
                .expect("nominal is always valid"),
        }
    }

    /// The reliable-cores setup of §2.2.1.
    fn apply_reliable_cores_setup(&self, system: &mut System, core: CoreId) {
        let target_pmd = core.pmd();
        let mut slimpro = system.slimpro_mut();
        for pmd in PmdId::all() {
            let f = if pmd == target_pmd {
                self.config.target_frequency
            } else {
                self.config.parked_frequency
            };
            slimpro
                .set_pmd_frequency(pmd, f)
                // lint: allow(no-panic) — frequencies validated at config build time
                .expect("frequencies validated at config build time");
        }
    }
}

impl CampaignOutcome {
    /// Merges several campaigns of the *same chip and configuration shape*
    /// into one outcome whose iteration space is the concatenation of the
    /// inputs — the paper's methodology of "running the entire
    /// time-consuming undervolting experiment ten times for each benchmark
    /// … during 6 months" (§3.2) and aggregating.
    ///
    /// Iteration indices of later campaigns are shifted so every run keeps
    /// a unique (benchmark, core, voltage, iteration) coordinate; the
    /// merged `config.iterations` is the sum.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError`] when the campaigns disagree on chip, rail,
    /// voltage grid or frequency setup.
    pub fn merge<I>(outcomes: I) -> Result<CampaignOutcome, MergeError>
    where
        I: IntoIterator<Item = CampaignOutcome>,
    {
        let mut iter = outcomes.into_iter();
        let mut merged = iter.next().ok_or(MergeError::Empty)?;
        for outcome in iter {
            if outcome.spec != merged.spec {
                return Err(MergeError::ChipMismatch);
            }
            let a = &merged.config;
            let b = &outcome.config;
            if a.start_voltage != b.start_voltage
                || a.floor_voltage != b.floor_voltage
                || a.target_frequency != b.target_frequency
                || a.parked_frequency != b.parked_frequency
                || a.rail != b.rail
                || a.enhancements != b.enhancements
            {
                return Err(MergeError::ConfigMismatch);
            }
            let offset = merged.config.iterations;
            merged.config.iterations += outcome.config.iterations;
            merged.runs.extend(outcome.runs.into_iter().map(|mut r| {
                r.iteration += offset;
                r
            }));
            merged.goldens.extend(outcome.goldens);
            merged.watchdog_power_cycles += outcome.watchdog_power_cycles;
        }
        let rail = merged.config.rail;
        merged.runs.sort_by(|a, b| {
            (
                &a.program,
                &a.dataset,
                a.core,
                std::cmp::Reverse(a.swept_mv(rail)),
                a.iteration,
            )
                .cmp(&(
                    &b.program,
                    &b.dataset,
                    b.core,
                    std::cmp::Reverse(b.swept_mv(rail)),
                    b.iteration,
                ))
        });
        Ok(merged)
    }
}

/// Error merging campaign outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeError {
    /// No outcomes were provided.
    Empty,
    /// The campaigns characterized different chips.
    ChipMismatch,
    /// The campaigns used incompatible configurations.
    ConfigMismatch,
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Empty => f.write_str("no campaign outcomes to merge"),
            MergeError::ChipMismatch => f.write_str("campaigns characterized different chips"),
            MergeError::ConfigMismatch => f.write_str("campaigns used incompatible configurations"),
        }
    }
}

impl std::error::Error for MergeError {}

#[derive(Default)]
struct ShardResult {
    runs: Vec<ClassifiedRun>,
    goldens: BTreeMap<(String, String), OutputDigest>,
    power_cycles: u32,
}

struct SweepRuns {
    golden: OutputDigest,
    runs: Vec<ClassifiedRun>,
}

/// A nominal-conditions workload profile (Figure 6, phase 2): the full PMU
/// counter file plus the golden digest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Benchmark name.
    pub name: String,
    /// Dataset label.
    pub dataset: String,
    /// PMU counters of the nominal run.
    pub counters: CounterFile,
    /// Golden output digest.
    pub golden: OutputDigest,
    /// Modelled runtime at nominal conditions, seconds.
    pub runtime_s: f64,
    /// Modelled cycles.
    pub cycles: u64,
}

/// Profiles `benchmarks` at nominal conditions on `core` of a fresh chip
/// (§4.1: "collecting the performance counters of the entire benchmarks
/// using perf").
#[must_use]
pub fn profile(spec: ChipSpec, benchmarks: &[BenchmarkRef], core: CoreId) -> Vec<WorkloadProfile> {
    let mut system = System::new(spec, SystemConfig::default());
    benchmarks
        .iter()
        .map(|b| {
            let program = margins_workloads::suite::by_name(&b.name, b.dataset)
                .unwrap_or_else(|| panic!("unknown benchmark '{}'", b.name));
            let record = system
                .run(program.as_ref(), core, 0x0090_F11E)
                // lint: allow(no-panic) — a fresh system at nominal V/F is responsive
                .expect("nominal profiling never crashes the board");
            WorkloadProfile {
                name: b.name.clone(),
                dataset: b.dataset.label().to_owned(),
                counters: record.counters,
                golden: record.digest,
                runtime_s: record.runtime_s,
                cycles: record.cycles,
            }
        })
        .collect()
}

/// Deterministic per-run seed from the campaign coordinates.
fn run_seed(base: u64, name: &str, dataset: &str, core: CoreId, mv: u32, iteration: u32) -> u64 {
    let mut h = base ^ 0x517C_C1B7_2722_0A95;
    for b in name.bytes().chain([0xFF]).chain(dataset.bytes()) {
        h = splitmix(h ^ u64::from(b));
    }
    h = splitmix(h ^ (core.index() as u64) << 32);
    h = splitmix(h ^ u64::from(mv) << 8);
    splitmix(h ^ u64::from(iteration))
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effect::Effect;
    use margins_sim::{Corner, Millivolts};

    fn tiny_config(bench: &str, core: u8, hi: u32, lo: u32, iters: u32) -> CampaignConfig {
        CampaignConfig::builder()
            .benchmarks([bench])
            .cores([CoreId::new(core)])
            .iterations(iters)
            .start_voltage(Millivolts::new(hi))
            .floor_voltage(Millivolts::new(lo))
            .seed(7)
            .build()
            .unwrap()
    }

    #[test]
    fn safe_band_sweep_is_all_normal() {
        // namd on the robust core: Vmin ≈ 867, so [890, 880] is safe.
        let cfg = tiny_config("namd", 4, 890, 880, 3);
        let out = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg).execute();
        assert_eq!(out.runs.len(), 3 * 3);
        assert!(out.runs.iter().all(|r| r.effects.is_normal()));
        assert_eq!(out.watchdog_power_cycles, 0);
    }

    #[test]
    fn deep_sweep_reaches_crashes_and_recovers() {
        let cfg = tiny_config("bwaves", 0, 890, 840, 2);
        let out = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg).execute();
        let any_sc = out.runs.iter().any(|r| r.effects.contains(Effect::Sc));
        assert!(any_sc, "sweeping bwaves to 840mV on core 0 must crash");
        assert!(
            out.watchdog_power_cycles > 0,
            "watchdog must have recovered"
        );
        // The early-stop keeps the sweep from sweeping all 11 steps blindly.
        let swept: std::collections::BTreeSet<Millivolts> =
            out.runs.iter().map(|r| r.pmd_mv).collect();
        assert!(swept.len() <= 11);
    }

    #[test]
    fn abnormal_effects_appear_below_vmin() {
        // bwaves on sensitive core 0: Vmin ≈ 905; sweep through it.
        let cfg = tiny_config("bwaves", 0, 915, 885, 4);
        let out = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg).execute();
        let abnormal = out.runs.iter().filter(|r| !r.effects.is_normal()).count();
        assert!(abnormal > 0, "sweeping through Vmin must expose effects");
        // And the top of the sweep is still clean.
        assert!(out
            .runs
            .iter()
            .filter(|r| r.pmd_mv == Millivolts::new(915))
            .all(|r| r.effects.is_normal()));
    }

    #[test]
    fn parallel_equals_serial() {
        let cfg = CampaignConfig::builder()
            .benchmarks(["namd", "mcf"])
            .cores([CoreId::new(0), CoreId::new(4)])
            .iterations(2)
            .start_voltage(Millivolts::new(890))
            .floor_voltage(Millivolts::new(870))
            .seed(11)
            .build()
            .unwrap();
        let campaign = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg);
        let serial = campaign.execute();
        let parallel = campaign.execute_parallel(4);
        assert_eq!(serial.runs.len(), parallel.runs.len());
        for (a, b) in serial.runs.iter().zip(&parallel.runs) {
            assert_eq!(a.program, b.program);
            assert_eq!(a.core, b.core);
            assert_eq!(a.pmd_mv, b.pmd_mv);
            assert_eq!(a.iteration, b.iteration);
            assert_eq!(
                a.effects, b.effects,
                "{} {} {}",
                a.program, a.core, a.pmd_mv
            );
        }
        assert_eq!(serial.goldens, parallel.goldens);
    }

    #[test]
    fn profiles_cover_all_counters_and_goldens() {
        let benches = vec![
            BenchmarkRef {
                name: "namd".into(),
                dataset: margins_workloads::Dataset::Ref,
            },
            BenchmarkRef {
                name: "mcf".into(),
                dataset: margins_workloads::Dataset::Ref,
            },
        ];
        let profiles = profile(ChipSpec::new(Corner::Ttt, 0), &benches, CoreId::new(0));
        assert_eq!(profiles.len(), 2);
        for p in &profiles {
            assert!(p.counters.get(margins_sim::PmuEvent::InstRetired) > 0);
            assert!(p.cycles > 0);
        }
        assert_ne!(profiles[0].golden, profiles[1].golden);
    }

    #[test]
    fn merging_campaigns_concatenates_iterations() {
        let make = |seed: u64| {
            let cfg = tiny_config("namd", 4, 890, 880, 2);
            let cfg = CampaignConfig { seed, ..cfg };
            Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg).execute()
        };
        let a = make(1);
        let b = make(2);
        let merged = CampaignOutcome::merge([a.clone(), b]).unwrap();
        assert_eq!(merged.config.iterations, 4);
        assert_eq!(merged.runs.len(), a.runs.len() * 2);
        // Iteration indices are unique per coordinate.
        let mut seen = std::collections::HashSet::new();
        for r in &merged.runs {
            assert!(
                seen.insert((r.pmd_mv, r.iteration)),
                "{}@{}",
                r.pmd_mv,
                r.iteration
            );
        }
        // The merged outcome analyzes cleanly with the widened N.
        let result = crate::regions::analyze(&merged, &crate::severity::SeverityWeights::paper());
        assert_eq!(result.summaries[0].steps[0].effect_sets.len(), 4);
    }

    #[test]
    fn merge_rejects_mismatched_campaigns() {
        let a = Campaign::new(
            ChipSpec::new(Corner::Ttt, 0),
            tiny_config("namd", 4, 890, 880, 1),
        )
        .execute();
        let b = Campaign::new(
            ChipSpec::new(Corner::Tff, 1),
            tiny_config("namd", 4, 890, 880, 1),
        )
        .execute();
        assert_eq!(
            CampaignOutcome::merge([a.clone(), b]).unwrap_err(),
            MergeError::ChipMismatch
        );
        let c = Campaign::new(
            ChipSpec::new(Corner::Ttt, 0),
            tiny_config("namd", 4, 895, 880, 1),
        )
        .execute();
        assert_eq!(
            CampaignOutcome::merge([a, c]).unwrap_err(),
            MergeError::ConfigMismatch
        );
        assert_eq!(
            CampaignOutcome::merge(Vec::new()).unwrap_err(),
            MergeError::Empty
        );
    }

    #[test]
    fn run_seeds_are_distinct_across_coordinates() {
        let s = |mv, iter| run_seed(1, "bwaves", "ref", CoreId::new(0), mv, iter);
        assert_ne!(s(900, 0), s(900, 1));
        assert_ne!(s(900, 0), s(895, 0));
        assert_ne!(
            run_seed(1, "bwaves", "ref", CoreId::new(0), 900, 0),
            run_seed(1, "bwaves", "ref", CoreId::new(1), 900, 0)
        );
        assert_ne!(
            run_seed(1, "bwaves", "ref", CoreId::new(0), 900, 0),
            run_seed(1, "bwaves", "train", CoreId::new(0), 900, 0)
        );
        assert_eq!(s(900, 3), s(900, 3), "seeds are deterministic");
    }
}
