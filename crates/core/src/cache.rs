//! The persistent campaign result cache.
//!
//! Characterization time is the limiting cost of margin studies — the
//! paper's massive campaign ran for months. Since every characterization
//! point in this reproduction is a pure function of its coordinates
//! (chip, rail, frequencies, enhancements, seed, iteration count,
//! benchmark, core, voltage — each probe runs on a pristine board), its
//! classified outcome can be persisted and replayed: repeated and
//! incremental campaigns skip already-characterized points entirely.
//!
//! The cache is a pair of [`BTreeMap`]s (step probes and golden
//! captures), persisted as JSONL with one record per line in key order,
//! so the byte stream is deterministic for a given content. Serialization
//! is hand-rolled — a small writer plus the shared [`margins_trace::json`]
//! recursive-descent reader — so the on-disk format is fully controlled
//! by this module, floats round-trip exactly (shortest representation),
//! and a corrupted or truncated file is rejected with a typed
//! [`CacheError`], never a panic.

use crate::config::{CampaignConfig, SweptRail};
use crate::effect::EffectSet;
use crate::search::{ItemPrior, SearchPriors};
use margins_sim::{CoreId, Enhancements};
use margins_trace::json;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// Identifies one step probe: every coordinate its outcome depends on.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct StepKey {
    /// Chip identity (corner + serial), e.g. `"TTT#0"`.
    pub chip: String,
    /// Swept rail label (`"pmd"` or `"soc"`).
    pub rail: String,
    /// Target-core PMD clock, MHz.
    pub target_mhz: u32,
    /// Parked-PMD clock, MHz.
    pub parked_mhz: u32,
    /// Enhancement flags, encoded by [`encode_enhancements`].
    pub enhancements: u8,
    /// Campaign seed.
    pub seed: u64,
    /// Iterations per step — a 2-iteration probe is not a prefix of a
    /// 10-iteration probe (the crash-stop and verdict logic differ), so
    /// the count is part of the key.
    pub iterations: u32,
    /// Benchmark name.
    pub program: String,
    /// Dataset label.
    pub dataset: String,
    /// Target core index.
    pub core: u8,
    /// Swept-rail voltage of the probe, millivolts.
    pub mv: u32,
}

/// Identifies one golden capture (nominal conditions — no swept voltage,
/// no iteration count).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct GoldenKey {
    /// Chip identity (corner + serial).
    pub chip: String,
    /// Target-core PMD clock, MHz.
    pub target_mhz: u32,
    /// Parked-PMD clock, MHz.
    pub parked_mhz: u32,
    /// Enhancement flags, encoded by [`encode_enhancements`].
    pub enhancements: u8,
    /// Campaign seed.
    pub seed: u64,
    /// Benchmark name.
    pub program: String,
    /// Dataset label.
    pub dataset: String,
    /// Target core index.
    pub core: u8,
}

/// One cached iteration of a step probe. Coordinates already present in
/// the [`StepKey`] (program, core, voltages, frequency) are not repeated;
/// the runner reconstructs the full `ClassifiedRun` from key + entry.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedRun {
    /// Observed Table 3 effects.
    pub effects: EffectSet,
    /// Corrected-error reports.
    pub corrected_errors: u64,
    /// Uncorrected-error reports.
    pub uncorrected_errors: u64,
    /// Modelled runtime, seconds.
    pub runtime_s: f64,
    /// Modelled energy, joules.
    pub energy_j: f64,
}

/// Everything one step probe produced.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StepEntry {
    /// Per-iteration outcomes, in iteration order.
    pub runs: Vec<CachedRun>,
    /// Watchdog power cycles the probe triggered (including the trailing
    /// recovery of a hang in its last iteration).
    pub power_cycles: u32,
}

impl StepEntry {
    /// Whether any iteration manifested an abnormal effect.
    #[must_use]
    pub fn any_abnormal(&self) -> bool {
        self.runs.iter().any(|r| !r.effects.is_normal())
    }

    /// Whether any iteration crashed the whole system.
    #[must_use]
    pub fn any_system_crash(&self) -> bool {
        self.runs.iter().any(|r| r.effects.is_system_crash())
    }

    /// Whether every iteration crashed the whole system.
    #[must_use]
    pub fn all_system_crash(&self) -> bool {
        !self.runs.is_empty() && self.runs.iter().all(|r| r.effects.is_system_crash())
    }
}

/// One cached golden capture.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenEntry {
    /// Golden output digest value.
    pub digest: u64,
    /// Modelled nominal runtime, seconds.
    pub runtime_s: f64,
}

/// Typed error loading or parsing a cache file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// The file could not be read or written.
    Io {
        /// Path involved.
        path: String,
        /// OS error message.
        message: String,
    },
    /// A line of the file is not a valid cache record (corruption,
    /// truncation, or an unknown record kind).
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Io { path, message } => write!(f, "cache file {path}: {message}"),
            CacheError::Corrupt { line, message } => {
                write!(f, "corrupt cache record on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for CacheError {}

/// Packs the enhancement flags into the stable bit layout used by cache
/// keys (bit 0 = extended ECC, bit 1 = residue checks, bit 2 = adaptive
/// clocking).
#[must_use]
pub fn encode_enhancements(e: Enhancements) -> u8 {
    u8::from(e.extended_ecc) | u8::from(e.residue_checks) << 1 | u8::from(e.adaptive_clocking) << 2
}

/// The label cache keys use for a swept rail.
#[must_use]
pub fn rail_label(rail: SweptRail) -> &'static str {
    match rail {
        SweptRail::Pmd => "pmd",
        SweptRail::PcpSoc => "soc",
    }
}

/// The persistent, byte-deterministic campaign result cache.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignCache {
    steps: BTreeMap<StepKey, StepEntry>,
    goldens: BTreeMap<GoldenKey, GoldenEntry>,
}

impl CampaignCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        CampaignCache::default()
    }

    /// Total records (step probes + golden captures).
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len() + self.goldens.len()
    }

    /// Whether the cache holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty() && self.goldens.is_empty()
    }

    /// Looks up a step probe.
    #[must_use]
    pub fn step(&self, key: &StepKey) -> Option<&StepEntry> {
        self.steps.get(key)
    }

    /// Inserts (or replaces) a step probe.
    pub fn insert_step(&mut self, key: StepKey, entry: StepEntry) {
        self.steps.insert(key, entry);
    }

    /// Looks up a golden capture.
    #[must_use]
    pub fn golden(&self, key: &GoldenKey) -> Option<&GoldenEntry> {
        self.goldens.get(key)
    }

    /// Inserts (or replaces) a golden capture.
    pub fn insert_golden(&mut self, key: GoldenKey, entry: GoldenEntry) {
        self.goldens.insert(key, entry);
    }

    /// All step probes, in key order.
    pub fn steps(&self) -> impl Iterator<Item = (&StepKey, &StepEntry)> {
        self.steps.iter()
    }

    /// Derives [`SearchPriors`] for `config` on `chip` from every cached
    /// probe of the same machine setup, *ignoring seed and iteration
    /// count*: a pilot campaign with a different seed contributes priors
    /// (its boundaries transfer) without contributing cache hits (its run
    /// outcomes do not).
    ///
    /// The prior for each (program, dataset, core) is the highest cached
    /// voltage at which the item misbehaved / crashed — under the
    /// monotonicity the region model assumes, that is the boundary.
    #[must_use]
    pub fn derive_priors(&self, chip: &str, config: &CampaignConfig) -> SearchPriors {
        let rail = rail_label(config.rail);
        let enh = encode_enhancements(config.enhancements);
        let mut priors = SearchPriors::new();
        let mut best: BTreeMap<(String, String, u8), ItemPrior> = BTreeMap::new();
        for (key, entry) in &self.steps {
            if key.chip != chip
                || key.rail != rail
                || key.target_mhz != config.target_frequency.get()
                || key.parked_mhz != config.parked_frequency.get()
                || key.enhancements != enh
            {
                continue;
            }
            let slot = best
                .entry((key.program.clone(), key.dataset.clone(), key.core))
                .or_default();
            if entry.any_abnormal() && slot.vmin_mv.is_none_or(|mv| key.mv > mv) {
                slot.vmin_mv = Some(key.mv);
            }
            if entry.any_system_crash() && slot.crash_mv.is_none_or(|mv| key.mv > mv) {
                slot.crash_mv = Some(key.mv);
            }
        }
        for ((program, dataset, core), prior) in best {
            // Cache files are untrusted input: an out-of-range core id is
            // dropped rather than allowed to panic CoreId's constructor.
            if (core as usize) >= margins_sim::topology::NUM_CORES {
                continue;
            }
            if prior.vmin_mv.is_some() || prior.crash_mv.is_some() {
                priors.insert(&program, &dataset, CoreId::new(core), prior);
            }
        }
        priors
    }

    /// Serializes the cache as JSONL, golden records first, each section
    /// in key order — byte-deterministic for a given content.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (key, entry) in &self.goldens {
            out.push_str("{\"kind\":\"golden\"");
            push_str_field(&mut out, "chip", &key.chip);
            push_raw_field(&mut out, "target_mhz", &key.target_mhz.to_string());
            push_raw_field(&mut out, "parked_mhz", &key.parked_mhz.to_string());
            push_raw_field(&mut out, "enh", &key.enhancements.to_string());
            push_raw_field(&mut out, "seed", &key.seed.to_string());
            push_str_field(&mut out, "program", &key.program);
            push_str_field(&mut out, "dataset", &key.dataset);
            push_raw_field(&mut out, "core", &key.core.to_string());
            push_str_field(&mut out, "digest", &format!("{:016x}", entry.digest));
            push_raw_field(&mut out, "runtime_s", &fmt_f64(entry.runtime_s));
            out.push_str("}\n");
        }
        for (key, entry) in &self.steps {
            out.push_str("{\"kind\":\"step\"");
            push_str_field(&mut out, "chip", &key.chip);
            push_str_field(&mut out, "rail", &key.rail);
            push_raw_field(&mut out, "target_mhz", &key.target_mhz.to_string());
            push_raw_field(&mut out, "parked_mhz", &key.parked_mhz.to_string());
            push_raw_field(&mut out, "enh", &key.enhancements.to_string());
            push_raw_field(&mut out, "seed", &key.seed.to_string());
            push_raw_field(&mut out, "iterations", &key.iterations.to_string());
            push_str_field(&mut out, "program", &key.program);
            push_str_field(&mut out, "dataset", &key.dataset);
            push_raw_field(&mut out, "core", &key.core.to_string());
            push_raw_field(&mut out, "mv", &key.mv.to_string());
            push_raw_field(&mut out, "power_cycles", &entry.power_cycles.to_string());
            out.push_str(",\"runs\":[");
            for (i, run) in entry.runs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"effects\":");
                push_json_string(&mut out, &run.effects.to_string());
                push_raw_field(&mut out, "ce", &run.corrected_errors.to_string());
                push_raw_field(&mut out, "ue", &run.uncorrected_errors.to_string());
                push_raw_field(&mut out, "runtime_s", &fmt_f64(run.runtime_s));
                push_raw_field(&mut out, "energy_j", &fmt_f64(run.energy_j));
                out.push('}');
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Parses a cache back from its JSONL form.
    ///
    /// # Errors
    ///
    /// [`CacheError::Corrupt`] on the first malformed line — a truncated
    /// trailing line, a non-JSON line, an unknown record kind, or a
    /// record missing a field all reject the file.
    pub fn from_jsonl(input: &str) -> Result<CampaignCache, CacheError> {
        let mut cache = CampaignCache::new();
        for (idx, line) in input.lines().enumerate() {
            let lineno = idx + 1;
            let corrupt = |message: String| CacheError::Corrupt {
                line: lineno,
                message,
            };
            if line.trim().is_empty() {
                return Err(corrupt("blank line (the writer never emits one)".into()));
            }
            let value = json::parse(line).map_err(&corrupt)?;
            let obj = Fields::of(&value).map_err(&corrupt)?;
            match obj.str("kind").map_err(&corrupt)? {
                "golden" => {
                    let key = GoldenKey {
                        chip: obj.str("chip").map_err(&corrupt)?.to_owned(),
                        target_mhz: obj.u32("target_mhz").map_err(&corrupt)?,
                        parked_mhz: obj.u32("parked_mhz").map_err(&corrupt)?,
                        enhancements: obj.u8("enh").map_err(&corrupt)?,
                        seed: obj.u64("seed").map_err(&corrupt)?,
                        program: obj.str("program").map_err(&corrupt)?.to_owned(),
                        dataset: obj.str("dataset").map_err(&corrupt)?.to_owned(),
                        core: obj.u8("core").map_err(&corrupt)?,
                    };
                    let digest = u64::from_str_radix(obj.str("digest").map_err(&corrupt)?, 16)
                        .map_err(|e| corrupt(format!("digest: {e}")))?;
                    let entry = GoldenEntry {
                        digest,
                        runtime_s: obj.f64("runtime_s").map_err(&corrupt)?,
                    };
                    cache.goldens.insert(key, entry);
                }
                "step" => {
                    let key = StepKey {
                        chip: obj.str("chip").map_err(&corrupt)?.to_owned(),
                        rail: obj.str("rail").map_err(&corrupt)?.to_owned(),
                        target_mhz: obj.u32("target_mhz").map_err(&corrupt)?,
                        parked_mhz: obj.u32("parked_mhz").map_err(&corrupt)?,
                        enhancements: obj.u8("enh").map_err(&corrupt)?,
                        seed: obj.u64("seed").map_err(&corrupt)?,
                        iterations: obj.u32("iterations").map_err(&corrupt)?,
                        program: obj.str("program").map_err(&corrupt)?.to_owned(),
                        dataset: obj.str("dataset").map_err(&corrupt)?.to_owned(),
                        core: obj.u8("core").map_err(&corrupt)?,
                        mv: obj.u32("mv").map_err(&corrupt)?,
                    };
                    let mut runs = Vec::new();
                    for item in obj.arr("runs").map_err(&corrupt)? {
                        let run = Fields::of(item).map_err(&corrupt)?;
                        let effects: EffectSet = run
                            .str("effects")
                            .map_err(&corrupt)?
                            .parse()
                            .map_err(|e| corrupt(format!("effects: {e}")))?;
                        runs.push(CachedRun {
                            effects,
                            corrected_errors: run.u64("ce").map_err(&corrupt)?,
                            uncorrected_errors: run.u64("ue").map_err(&corrupt)?,
                            runtime_s: run.f64("runtime_s").map_err(&corrupt)?,
                            energy_j: run.f64("energy_j").map_err(&corrupt)?,
                        });
                    }
                    let entry = StepEntry {
                        runs,
                        power_cycles: obj.u32("power_cycles").map_err(&corrupt)?,
                    };
                    cache.steps.insert(key, entry);
                }
                kind => return Err(corrupt(format!("unknown record kind '{kind}'"))),
            }
        }
        Ok(cache)
    }

    /// Loads a cache file. A missing file is an empty cache (the first
    /// campaign of an incremental series starts cold); any other read
    /// failure or malformed content is an error.
    ///
    /// # Errors
    ///
    /// [`CacheError::Io`] when the file exists but cannot be read,
    /// [`CacheError::Corrupt`] when a line does not parse.
    pub fn load(path: impl AsRef<Path>) -> Result<CampaignCache, CacheError> {
        let path = path.as_ref();
        match std::fs::read_to_string(path) {
            Ok(text) => CampaignCache::from_jsonl(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(CampaignCache::new()),
            Err(e) => Err(CacheError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            }),
        }
    }

    /// Persists the cache, overwriting `path`.
    ///
    /// # Errors
    ///
    /// [`CacheError::Io`] when the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CacheError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_jsonl()).map_err(|e| CacheError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }

    /// Compacts a cache file in place: parses it (later duplicates of a
    /// [`StepKey`]/[`GoldenKey`] supersede earlier ones, exactly as
    /// [`CampaignCache::from_jsonl`] resolves them on every load) and
    /// rewrites it in canonical serialized form — goldens first, key
    /// order, no superseded lines. Idempotent: compacting an
    /// already-compact file leaves it byte-identical and untouched on
    /// disk.
    ///
    /// # Errors
    ///
    /// [`CacheError::Io`] when the file is missing or unreadable (unlike
    /// [`CampaignCache::load`], a missing file is an error here — there is
    /// nothing to compact), [`CacheError::Corrupt`] when a line does not
    /// parse.
    pub fn compact_file(path: impl AsRef<Path>) -> Result<CompactionStats, CacheError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| CacheError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        let cache = CampaignCache::from_jsonl(&text)?;
        let compacted = cache.to_jsonl();
        let stats = CompactionStats {
            lines_before: text.lines().count(),
            lines_after: compacted.lines().count(),
            rewritten: compacted != text,
        };
        if stats.rewritten {
            std::fs::write(path, compacted).map_err(|e| CacheError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
        }
        Ok(stats)
    }
}

/// What [`CampaignCache::compact_file`] did to a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Lines in the file before compaction.
    pub lines_before: usize,
    /// Lines after compaction (records surviving deduplication).
    pub lines_after: usize,
    /// Whether the file was rewritten (false when already canonical).
    pub rewritten: bool,
}

impl CompactionStats {
    /// Superseded lines dropped by the compaction.
    #[must_use]
    pub fn dropped(&self) -> usize {
        self.lines_before.saturating_sub(self.lines_after)
    }
}

/// Fresh results appended to a [`SharedCampaignCache`] since its last
/// publish, in append order.
#[derive(Debug, Default)]
struct CacheLog {
    goldens: Vec<(GoldenKey, GoldenEntry)>,
    steps: Vec<(StepKey, StepEntry)>,
}

impl CacheLog {
    fn is_empty(&self) -> bool {
        self.goldens.is_empty() && self.steps.is_empty()
    }
}

/// A concurrently shareable [`CampaignCache`]: several campaigns may look
/// up and contribute results against one store at the same time.
///
/// # Concurrency model
///
/// The store is a published immutable snapshot (`Arc<CampaignCache>`)
/// plus an append log of fresh results:
///
/// * **Reads never block on writes.** [`SharedCampaignCache::snapshot`]
///   clones the `Arc` — campaigns then probe their snapshot lock-free for
///   their entire run. A campaign's lookups are fixed at its start, so
///   its results are independent of what sibling campaigns publish
///   mid-run (the same schedule-independence the single-campaign path
///   guarantees).
/// * **Writes append.** [`SharedCampaignCache::append_golden`] /
///   [`SharedCampaignCache::append_step`] push onto the log;
///   [`SharedCampaignCache::publish`] folds the log into a new snapshot.
///   Appends from concurrent campaigns interleave arbitrarily, but the
///   fold lands in [`BTreeMap`]s — identical coordinates produce
///   identical entries (probes are pure functions of their keys), so the
///   published cache, and therefore the saved JSONL, is byte-deterministic
///   regardless of completion order.
///
/// Serialization ([`SharedCampaignCache::to_jsonl`] /
/// [`SharedCampaignCache::save`]) publishes pending appends first and then
/// emits the snapshot's canonical JSONL — byte-identical to what a plain
/// [`CampaignCache`] holding the same records writes.
#[derive(Debug, Default)]
pub struct SharedCampaignCache {
    snapshot: Mutex<Arc<CampaignCache>>,
    log: Mutex<CacheLog>,
}

impl SharedCampaignCache {
    /// An empty shared cache.
    #[must_use]
    pub fn new() -> Self {
        SharedCampaignCache::default()
    }

    /// Loads a shared cache from a file ([`CampaignCache::load`]
    /// semantics: a missing file is an empty cache).
    ///
    /// # Errors
    ///
    /// [`CacheError::Io`] when the file exists but cannot be read,
    /// [`CacheError::Corrupt`] when a line does not parse.
    pub fn load(path: impl AsRef<Path>) -> Result<SharedCampaignCache, CacheError> {
        Ok(CampaignCache::load(path)?.into())
    }

    /// The current published snapshot. A cheap `Arc` clone: the lock is
    /// held only for the clone, never while a reader probes the cache,
    /// so lookups never block on concurrent appends or publishes.
    #[must_use]
    pub fn snapshot(&self) -> Arc<CampaignCache> {
        self.snapshot.lock().clone()
    }

    /// Appends a fresh golden capture to the log (visible to snapshots
    /// after the next [`SharedCampaignCache::publish`]).
    pub fn append_golden(&self, key: GoldenKey, entry: GoldenEntry) {
        self.log.lock().goldens.push((key, entry));
    }

    /// Appends a fresh step probe to the log (visible to snapshots after
    /// the next [`SharedCampaignCache::publish`]).
    pub fn append_step(&self, key: StepKey, entry: StepEntry) {
        self.log.lock().steps.push((key, entry));
    }

    /// Folds every logged append into a new published snapshot. A no-op
    /// when the log is empty. Readers holding older snapshots are
    /// unaffected; new [`SharedCampaignCache::snapshot`] calls see the
    /// fold.
    pub fn publish(&self) {
        // Lock order everywhere in this type: log, then snapshot.
        let mut log = self.log.lock();
        if log.is_empty() {
            return;
        }
        let mut snapshot = self.snapshot.lock();
        let mut next = CampaignCache::clone(&snapshot);
        for (key, entry) in log.goldens.drain(..) {
            next.insert_golden(key, entry);
        }
        for (key, entry) in log.steps.drain(..) {
            next.insert_step(key, entry);
        }
        *snapshot = Arc::new(next);
    }

    /// Total records in the published view (pending appends are published
    /// first).
    #[must_use]
    pub fn len(&self) -> usize {
        self.publish();
        self.snapshot.lock().len()
    }

    /// Whether the published view holds no records (pending appends are
    /// published first).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Publishes pending appends and serializes the store as canonical
    /// JSONL — byte-identical to [`CampaignCache::to_jsonl`] on the same
    /// records.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        self.publish();
        self.snapshot.lock().to_jsonl()
    }

    /// Publishes pending appends and persists the store, overwriting
    /// `path`.
    ///
    /// # Errors
    ///
    /// [`CacheError::Io`] when the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CacheError> {
        self.publish();
        self.snapshot.lock().save(path)
    }

    /// Publishes pending appends and extracts a plain owned cache.
    #[must_use]
    pub fn into_cache(self) -> CampaignCache {
        self.publish();
        CampaignCache::clone(&self.snapshot.lock())
    }
}

impl From<CampaignCache> for SharedCampaignCache {
    fn from(cache: CampaignCache) -> SharedCampaignCache {
        SharedCampaignCache {
            snapshot: Mutex::new(Arc::new(cache)),
            log: Mutex::new(CacheLog::default()),
        }
    }
}

/// Appends `,"name":"escaped value"` to `out`.
fn push_str_field(out: &mut String, name: &str, value: &str) {
    out.push_str(",\"");
    out.push_str(name);
    out.push_str("\":");
    push_json_string(out, value);
}

/// Appends `,"name":raw` to `out` (for already-serialized numbers).
fn push_raw_field(out: &mut String, name: &str, raw: &str) {
    out.push_str(",\"");
    out.push_str(name);
    out.push_str("\":");
    out.push_str(raw);
}

/// Appends `value` as a JSON string literal.
fn push_json_string(out: &mut String, value: &str) {
    json::escape_into(out, value);
}

/// Shortest round-trip representation of a finite `f64`; non-finite values
/// never occur in modelled runtimes/energies and serialize defensively as
/// `null` so the reader rejects the record instead of producing invalid
/// JSON.
fn fmt_f64(v: f64) -> String {
    json::fmt_f64(v)
}

/// Typed access to the fields of a parsed JSON object.
struct Fields<'a> {
    map: &'a BTreeMap<String, json::Value>,
}

impl<'a> Fields<'a> {
    fn of(value: &'a json::Value) -> Result<Fields<'a>, String> {
        match value {
            json::Value::Object(map) => Ok(Fields { map }),
            _ => Err("expected a JSON object".to_owned()),
        }
    }

    fn get(&self, name: &str) -> Result<&'a json::Value, String> {
        self.map
            .get(name)
            .ok_or_else(|| format!("missing field '{name}'"))
    }

    fn str(&self, name: &str) -> Result<&'a str, String> {
        match self.get(name)? {
            json::Value::String(s) => Ok(s),
            _ => Err(format!("field '{name}' is not a string")),
        }
    }

    fn number(&self, name: &str) -> Result<&'a str, String> {
        match self.get(name)? {
            json::Value::Number(raw) => Ok(raw),
            _ => Err(format!("field '{name}' is not a number")),
        }
    }

    fn u64(&self, name: &str) -> Result<u64, String> {
        self.number(name)?
            .parse()
            .map_err(|e| format!("field '{name}': {e}"))
    }

    fn u32(&self, name: &str) -> Result<u32, String> {
        self.number(name)?
            .parse()
            .map_err(|e| format!("field '{name}': {e}"))
    }

    fn u8(&self, name: &str) -> Result<u8, String> {
        self.number(name)?
            .parse()
            .map_err(|e| format!("field '{name}': {e}"))
    }

    fn f64(&self, name: &str) -> Result<f64, String> {
        self.number(name)?
            .parse()
            .map_err(|e| format!("field '{name}': {e}"))
    }

    fn arr(&self, name: &str) -> Result<&'a [json::Value], String> {
        match self.get(name)? {
            json::Value::Array(items) => Ok(items),
            _ => Err(format!("field '{name}' is not an array")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effect::Effect;

    fn step_key(mv: u32) -> StepKey {
        StepKey {
            chip: "TTT#0".into(),
            rail: "pmd".into(),
            target_mhz: 2400,
            parked_mhz: 300,
            enhancements: 0,
            seed: 0xC0FF_EE00,
            iterations: 2,
            program: "bwaves".into(),
            dataset: "ref".into(),
            core: 0,
            mv,
        }
    }

    fn entry(effects: &[EffectSet]) -> StepEntry {
        StepEntry {
            runs: effects
                .iter()
                .map(|e| CachedRun {
                    effects: *e,
                    corrected_errors: 1,
                    uncorrected_errors: 0,
                    runtime_s: 0.062_5,
                    energy_j: 1.25e-2,
                })
                .collect(),
            power_cycles: 1,
        }
    }

    fn sample() -> CampaignCache {
        let mut cache = CampaignCache::new();
        cache.insert_step(step_key(900), entry(&[EffectSet::new(), EffectSet::new()]));
        cache.insert_step(
            step_key(880),
            entry(&[
                EffectSet::of(Effect::Sc),
                [Effect::Sdc, Effect::Ce].into_iter().collect(),
            ]),
        );
        cache.insert_golden(
            GoldenKey {
                chip: "TTT#0".into(),
                target_mhz: 2400,
                parked_mhz: 300,
                enhancements: 0,
                seed: 0xC0FF_EE00,
                program: "bwaves".into(),
                dataset: "ref".into(),
                core: 0,
            },
            GoldenEntry {
                digest: 0xDEAD_BEEF_0123_4567,
                runtime_s: 0.5,
            },
        );
        cache
    }

    #[test]
    fn jsonl_round_trips_losslessly() {
        let cache = sample();
        let text = cache.to_jsonl();
        let reloaded = CampaignCache::from_jsonl(&text).expect("own output parses");
        assert_eq!(reloaded, cache);
        // And the serialization is byte-deterministic.
        assert_eq!(reloaded.to_jsonl(), text);
    }

    #[test]
    fn extreme_values_round_trip() {
        let mut cache = CampaignCache::new();
        let mut key = step_key(5);
        key.seed = u64::MAX; // would lose precision through f64
        key.program = "we\"ird\\name\n".into();
        cache.insert_step(
            key.clone(),
            StepEntry {
                runs: vec![CachedRun {
                    effects: EffectSet::of(Effect::Ue),
                    corrected_errors: u64::MAX,
                    uncorrected_errors: 7,
                    runtime_s: 1.234_567_890_123_456_7e-12,
                    energy_j: f64::MIN_POSITIVE,
                }],
                power_cycles: 0,
            },
        );
        let reloaded = CampaignCache::from_jsonl(&cache.to_jsonl()).expect("parses");
        assert_eq!(reloaded, cache);
        assert!(reloaded.step(&key).is_some());
    }

    #[test]
    fn truncated_and_corrupt_files_are_typed_errors() {
        let text = sample().to_jsonl();
        // Truncate mid-line: the trailing fragment must be rejected.
        let cut = text.len() - 10;
        let err = CampaignCache::from_jsonl(&text[..cut]).expect_err("truncated");
        assert!(matches!(err, CacheError::Corrupt { .. }), "{err}");

        for garbage in [
            "not json at all\n",
            "{\"kind\":\"mystery\"}\n",
            "{\"kind\":\"step\"}\n",                // missing fields
            "{\"kind\":\"golden\",\"chip\":3}\n",   // wrong type
            "[1,2,3]\n",                            // not an object
            "\n",                                   // blank line
            "{\"kind\":\"step\",\"seed\":1e309}\n", // unparseable number field
        ] {
            let err = CampaignCache::from_jsonl(garbage).expect_err(garbage);
            assert!(matches!(err, CacheError::Corrupt { .. }), "{garbage:?}");
            assert!(err.to_string().contains("line 1"), "{err}");
        }
    }

    #[test]
    fn load_of_missing_file_is_an_empty_cache() {
        let cache =
            CampaignCache::load("/nonexistent/dir/never-here.jsonl").expect("missing file is cold");
        assert!(cache.is_empty());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn save_and_load_round_trip_through_disk() {
        let dir = std::env::temp_dir().join("margins-cache-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("roundtrip.jsonl");
        let cache = sample();
        cache.save(&path).expect("save");
        let reloaded = CampaignCache::load(&path).expect("load");
        assert_eq!(reloaded, cache);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn priors_derive_from_matching_entries_only() {
        let mut cache = sample(); // abnormal at 880 (SC), normal at 900
        let mut other_rail = step_key(910);
        other_rail.rail = "soc".into();
        cache.insert_step(other_rail, entry(&[EffectSet::of(Effect::Sc)]));
        let mut other_seed = step_key(895);
        other_seed.seed = 1; // different seed still contributes priors
        cache.insert_step(other_seed, entry(&[EffectSet::of(Effect::Sdc)]));

        let config = CampaignConfig::builder()
            .benchmarks(["bwaves"])
            .build()
            .expect("valid config");
        let priors = cache.derive_priors("TTT#0", &config);
        let prior = priors
            .get("bwaves", "ref", CoreId::new(0))
            .expect("prior derived");
        // Highest abnormal voltage across seeds: the 895 SDC entry.
        assert_eq!(prior.vmin_mv, Some(895));
        // Highest crash voltage on the pmd rail: 880 (the soc entry at 910
        // belongs to a different machine setup).
        assert_eq!(prior.crash_mv, Some(880));
        // A different chip has no priors.
        assert!(cache.derive_priors("TFF#1", &config).is_empty());
    }

    #[test]
    fn enhancement_bits_are_stable() {
        assert_eq!(encode_enhancements(Enhancements::stock()), 0);
        assert_eq!(encode_enhancements(Enhancements::all()), 0b111);
        let ecc = Enhancements {
            extended_ecc: true,
            ..Enhancements::stock()
        };
        assert_eq!(encode_enhancements(ecc), 0b001);
    }

    #[test]
    fn compaction_drops_superseded_lines_and_is_idempotent() {
        // Hand-build a log with duplicates: the same step key appears
        // three times (two stale, one live), the same golden twice, plus
        // lines deliberately out of canonical order (step before golden).
        let live = sample();
        let mut stale = CampaignCache::new();
        stale.insert_step(step_key(900), entry(&[EffectSet::of(Effect::Sc)]));
        let stale_step_line = stale
            .to_jsonl()
            .lines()
            .next()
            .expect("one line")
            .to_owned();
        let mut log = String::new();
        log.push_str(&stale_step_line);
        log.push('\n');
        log.push_str(&stale_step_line);
        log.push('\n');
        log.push_str(&live.to_jsonl());

        let dir = std::env::temp_dir().join("margins-cache-compact-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("dup.jsonl");
        std::fs::write(&path, &log).expect("write log");

        let stats = CampaignCache::compact_file(&path).expect("compacts");
        assert_eq!(stats.lines_before, 5);
        assert_eq!(stats.lines_after, 3);
        assert_eq!(stats.dropped(), 2);
        assert!(stats.rewritten);

        // The rewrite resolves duplicates exactly like a load would:
        // the surviving content equals the live cache's canonical form.
        let compacted = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(compacted, live.to_jsonl());

        // Second run: byte-identical, nothing rewritten.
        let again = CampaignCache::compact_file(&path).expect("idempotent");
        assert_eq!(again.lines_before, 3);
        assert_eq!(again.lines_after, 3);
        assert_eq!(again.dropped(), 0);
        assert!(!again.rewritten);
        assert_eq!(
            std::fs::read_to_string(&path).expect("read back"),
            compacted
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compacting_a_missing_or_corrupt_file_is_a_typed_error() {
        let err = CampaignCache::compact_file("/nonexistent/never.jsonl").expect_err("missing");
        assert!(matches!(err, CacheError::Io { .. }), "{err}");

        let dir = std::env::temp_dir().join("margins-cache-compact-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("corrupt.jsonl");
        std::fs::write(&path, "not json\n").expect("write");
        let err = CampaignCache::compact_file(&path).expect_err("corrupt");
        assert!(matches!(err, CacheError::Corrupt { line: 1, .. }), "{err}");
        // A corrupt file is left untouched.
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "not json\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shared_cache_snapshots_are_fixed_while_appends_publish() {
        let shared = SharedCampaignCache::from(sample());
        let before = shared.snapshot();
        assert_eq!(before.len(), 3);

        // Appends are invisible until published…
        let mut key = step_key(870);
        key.core = 1;
        shared.append_step(key.clone(), entry(&[EffectSet::new()]));
        assert!(shared.snapshot().step(&key).is_none());

        // …and invisible to snapshots taken before the publish even after.
        shared.publish();
        assert!(before.step(&key).is_none());
        assert!(shared.snapshot().step(&key).is_some());
        assert_eq!(shared.len(), 4);
    }

    #[test]
    fn shared_cache_serializes_like_the_equivalent_owned_cache() {
        // Two "campaigns" append the same records in different orders;
        // the published store serializes identically either way, and
        // identically to a plain cache holding the same records.
        let mut owned = sample();
        let mut extra = step_key(865);
        extra.program = "namd".into();
        owned.insert_step(extra.clone(), entry(&[EffectSet::new()]));

        let ab = SharedCampaignCache::from(sample());
        ab.append_step(extra.clone(), entry(&[EffectSet::new()]));
        let ba = SharedCampaignCache::new();
        ba.append_step(extra, entry(&[EffectSet::new()]));
        for (k, e) in sample().steps() {
            ba.append_step(k.clone(), e.clone());
        }
        ba.append_golden(
            GoldenKey {
                chip: "TTT#0".into(),
                target_mhz: 2400,
                parked_mhz: 300,
                enhancements: 0,
                seed: 0xC0FF_EE00,
                program: "bwaves".into(),
                dataset: "ref".into(),
                core: 0,
            },
            GoldenEntry {
                digest: 0xDEAD_BEEF_0123_4567,
                runtime_s: 0.5,
            },
        );

        assert_eq!(ab.to_jsonl(), owned.to_jsonl());
        assert_eq!(ba.to_jsonl(), owned.to_jsonl());
        assert_eq!(ab.into_cache(), owned);
    }

    #[test]
    fn shared_cache_handles_concurrent_appenders() {
        let shared = SharedCampaignCache::new();
        std::thread::scope(|scope| {
            for core in 0..4u8 {
                let shared = &shared;
                scope.spawn(move || {
                    for mv in [900, 890, 880] {
                        let mut key = step_key(mv);
                        key.core = core;
                        shared.append_step(key, entry(&[EffectSet::new()]));
                    }
                    shared.publish();
                });
            }
        });
        assert_eq!(shared.len(), 12);
        // Key-ordered serialization makes the result append-order-free.
        let mut owned = CampaignCache::new();
        for core in 0..4u8 {
            for mv in [880, 890, 900] {
                let mut key = step_key(mv);
                key.core = core;
                owned.insert_step(key, entry(&[EffectSet::new()]));
            }
        }
        assert_eq!(shared.to_jsonl(), owned.to_jsonl());
    }

    #[test]
    fn step_entry_verdict_helpers() {
        let normal = entry(&[EffectSet::new()]);
        assert!(!normal.any_abnormal() && !normal.any_system_crash());
        let mixed = entry(&[EffectSet::new(), EffectSet::of(Effect::Sc)]);
        assert!(mixed.any_abnormal() && mixed.any_system_crash());
        assert!(!mixed.all_system_crash());
        let all = entry(&[EffectSet::of(Effect::Sc), EffectSet::of(Effect::Sc)]);
        assert!(all.all_system_crash());
        assert!(!StepEntry::default().all_system_crash());
    }
}
