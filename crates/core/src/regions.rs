//! Regions-of-operation analysis (§3.1–§3.3, Figures 3–4).
//!
//! From a campaign's classified runs this module derives, per
//! (benchmark, dataset, core):
//!
//! * the **safe Vmin** — the lowest voltage above which every iteration of
//!   every step ran normally (the paper plots the conservative Vmin over
//!   the ten campaign iterations),
//! * the **highest crash voltage** — the highest step at which at least one
//!   iteration took the system down,
//! * the per-step [`RegionKind`] (Safe blue / Unsafe grey / Crash black),
//! * the per-step severity values of §3.4.1 (Figure 5's heat-map), and
//! * the *average* Vmin / crash voltage across iterations (the green/red
//!   lines of Figure 4).

use crate::classify::ClassifiedRun;
use crate::effect::{Effect, EffectSet};
use crate::runner::CampaignOutcome;
use crate::severity::{Severity, SeverityWeights};
use margins_sim::{ChipSpec, CoreId, Millivolts};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The three regions of operation (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// Normal operation only — the blue region.
    Safe,
    /// Abnormal behaviour (SDC/CE/UE/AC) but no system crash — grey.
    Unsafe,
    /// At least one run crashed the system — black.
    Crash,
}

impl RegionKind {
    /// Classifies a voltage step by the effects its runs manifested.
    #[must_use]
    pub fn of_runs<'a, I: IntoIterator<Item = &'a EffectSet>>(runs: I) -> RegionKind {
        let mut any_abnormal = false;
        for e in runs {
            if e.is_system_crash() {
                return RegionKind::Crash;
            }
            any_abnormal |= !e.is_normal();
        }
        if any_abnormal {
            RegionKind::Unsafe
        } else {
            RegionKind::Safe
        }
    }
}

/// Statistics of one voltage step of one sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepStats {
    /// The step voltage (mV).
    pub mv: u32,
    /// Effect sets of the N iterations at this step.
    pub effect_sets: Vec<EffectSet>,
    /// Severity S_v of this step.
    pub severity: Severity,
    /// Region classification of this step.
    pub region: RegionKind,
}

impl StepStats {
    /// Runs at this step manifesting `effect`.
    #[must_use]
    pub fn count(&self, effect: Effect) -> usize {
        self.effect_sets
            .iter()
            .filter(|s| s.contains(effect))
            .count()
    }

    /// The union of all effects observed at this step.
    #[must_use]
    pub fn observed(&self) -> EffectSet {
        self.effect_sets
            .iter()
            .fold(EffectSet::new(), |acc, e| acc.union(*e))
    }
}

/// The analysis of one (benchmark, dataset, core) sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSummary {
    /// Benchmark name.
    pub program: String,
    /// Dataset label.
    pub dataset: String,
    /// Core under characterization.
    pub core: CoreId,
    /// Per-step statistics, descending voltage.
    pub steps: Vec<StepStats>,
    /// The conservative safe Vmin over all iterations (Figure 4's bar top),
    /// `None` when even the highest swept step misbehaved.
    pub safe_vmin: Option<Millivolts>,
    /// Highest voltage at which any iteration crashed the system.
    pub highest_crash: Option<Millivolts>,
    /// Mean per-iteration Vmin (Figure 4's green line), when computable.
    pub average_vmin: Option<f64>,
    /// Mean per-iteration highest crash voltage (Figure 4's red line).
    pub average_crash: Option<f64>,
}

impl SweepSummary {
    /// Step stats at an exact voltage.
    #[must_use]
    pub fn step(&self, mv: Millivolts) -> Option<&StepStats> {
        self.steps.iter().find(|s| s.mv == mv.get())
    }

    /// The guardband from nominal down to the safe Vmin.
    #[must_use]
    pub fn guardband_mv(&self) -> Option<Millivolts> {
        self.safe_vmin
            .map(|v| Millivolts::new(margins_sim::volt::PMD_NOMINAL.get() - v.get()))
    }

    /// Steps inside the unsafe or crash region (severity > 0) — the sample
    /// pool of the §4.3.2 severity prediction.
    pub fn abnormal_steps(&self) -> impl Iterator<Item = &StepStats> {
        self.steps.iter().filter(|s| s.region != RegionKind::Safe)
    }
}

/// The full analysis of a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationResult {
    /// The characterized chip.
    pub spec: ChipSpec,
    /// Severity weights used.
    pub weights: SeverityWeights,
    /// One summary per (benchmark, dataset, core).
    pub summaries: Vec<SweepSummary>,
}

impl CharacterizationResult {
    /// The summary for an exact (benchmark, dataset, core) key.
    #[must_use]
    pub fn summary(&self, program: &str, dataset: &str, core: CoreId) -> Option<&SweepSummary> {
        self.summaries
            .iter()
            .find(|s| s.program == program && s.dataset == dataset && s.core == core)
    }

    /// All summaries of one benchmark (across cores).
    pub fn by_program<'a>(
        &'a self,
        program: &'a str,
    ) -> impl Iterator<Item = &'a SweepSummary> + 'a {
        self.summaries.iter().filter(move |s| s.program == program)
    }

    /// The most robust core for `program` (lowest safe Vmin) — the per-chip
    /// series of Figure 3.
    #[must_use]
    pub fn most_robust_core(&self, program: &str) -> Option<(CoreId, Millivolts)> {
        self.by_program(program)
            .filter_map(|s| s.safe_vmin.map(|v| (s.core, v)))
            .min_by_key(|(_, v)| *v)
    }

    /// The most sensitive core for `program` (highest safe Vmin).
    #[must_use]
    pub fn most_sensitive_core(&self, program: &str) -> Option<(CoreId, Millivolts)> {
        self.by_program(program)
            .filter_map(|s| s.safe_vmin.map(|v| (s.core, v)))
            .max_by_key(|(_, v)| *v)
    }
}

/// Runs the parsing/analysis phase over a campaign outcome.
#[must_use]
pub fn analyze(outcome: &CampaignOutcome, weights: &SeverityWeights) -> CharacterizationResult {
    // Group runs by (program, dataset, core) then by voltage (descending).
    type Key = (String, String, CoreId);
    let rail = outcome.config.rail;
    let mut grouped: BTreeMap<Key, BTreeMap<std::cmp::Reverse<Millivolts>, Vec<&ClassifiedRun>>> =
        BTreeMap::new();
    for run in &outcome.runs {
        grouped
            .entry((run.program.clone(), run.dataset.clone(), run.core))
            .or_default()
            .entry(std::cmp::Reverse(run.swept_mv(rail)))
            .or_default()
            .push(run);
    }

    let mut summaries = Vec::with_capacity(grouped.len());
    for ((program, dataset, core), by_voltage) in grouped {
        let iterations = outcome.config.iterations;
        let mut steps = Vec::with_capacity(by_voltage.len());
        for (std::cmp::Reverse(mv), runs) in &by_voltage {
            let mut sets: Vec<EffectSet> = vec![EffectSet::new(); iterations as usize];
            for r in runs {
                if (r.iteration as usize) < sets.len() {
                    sets[r.iteration as usize] = r.effects;
                }
            }
            let severity = weights.severity(sets.iter());
            let region = RegionKind::of_runs(sets.iter());
            steps.push(StepStats {
                mv: mv.get(),
                effect_sets: sets,
                severity,
                region,
            });
        }

        // Conservative Vmin: descending scan until the first abnormal step.
        let mut safe_vmin = None;
        for step in &steps {
            if step.region == RegionKind::Safe {
                safe_vmin = Some(Millivolts::new(step.mv));
            } else {
                break;
            }
        }
        let highest_crash = steps
            .iter()
            .filter(|s| s.region == RegionKind::Crash)
            .map(|s| Millivolts::new(s.mv))
            .max();

        // Per-iteration Vmin / crash for the Figure 4 average lines.
        let mut iter_vmins = Vec::new();
        let mut iter_crashes = Vec::new();
        for it in 0..iterations as usize {
            let mut vmin = None;
            for step in &steps {
                if step.effect_sets[it].is_normal() {
                    vmin = Some(step.mv);
                } else {
                    break;
                }
            }
            if let Some(v) = vmin {
                iter_vmins.push(f64::from(v));
            }
            if let Some(c) = steps
                .iter()
                .filter(|s| s.effect_sets[it].is_system_crash())
                .map(|s| s.mv)
                .max()
            {
                iter_crashes.push(f64::from(c));
            }
        }
        let average_vmin = mean(&iter_vmins);
        let average_crash = mean(&iter_crashes);

        summaries.push(SweepSummary {
            program,
            dataset,
            core,
            steps,
            safe_vmin,
            highest_crash,
            average_vmin,
            average_crash,
        });
    }

    CharacterizationResult {
        spec: outcome.spec,
        weights: *weights,
        summaries,
    }
}

fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CampaignConfig;
    use crate::runner::Campaign;
    use margins_sim::Corner;

    fn analyzed(bench: &str, core: u8, hi: u32, lo: u32) -> CharacterizationResult {
        let cfg = CampaignConfig::builder()
            .benchmarks([bench])
            .cores([CoreId::new(core)])
            .iterations(4)
            .start_voltage(Millivolts::new(hi))
            .floor_voltage(Millivolts::new(lo))
            .seed(3)
            .build()
            .unwrap();
        let out = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg).execute();
        analyze(&out, &SeverityWeights::paper())
    }

    #[test]
    fn region_kind_classification() {
        let safe = [EffectSet::new(), EffectSet::new()];
        assert_eq!(RegionKind::of_runs(safe.iter()), RegionKind::Safe);
        let unsafe_ = [EffectSet::of(Effect::Sdc), EffectSet::new()];
        assert_eq!(RegionKind::of_runs(unsafe_.iter()), RegionKind::Unsafe);
        let crash = [EffectSet::of(Effect::Sdc), EffectSet::of(Effect::Sc)];
        assert_eq!(RegionKind::of_runs(crash.iter()), RegionKind::Crash);
    }

    #[test]
    fn fully_safe_sweep_reports_floor_as_vmin() {
        let r = analyzed("namd", 4, 890, 880);
        let s = &r.summaries[0];
        assert_eq!(s.safe_vmin, Some(Millivolts::new(880)));
        assert_eq!(s.highest_crash, None);
        assert!(s.steps.iter().all(|st| st.region == RegionKind::Safe));
        assert_eq!(s.average_vmin, Some(880.0));
        assert_eq!(s.average_crash, None);
        assert_eq!(s.guardband_mv(), Some(Millivolts::new(100)));
    }

    #[test]
    fn sweep_through_vmin_produces_ordered_regions() {
        // bwaves on core 0 (sensitive): Vmin ≈ 905, crash ≈ 875.
        let r = analyzed("bwaves", 0, 920, 845);
        let s = &r.summaries[0];
        let vmin = s.safe_vmin.expect("920 must be safe").get();
        assert!(
            (890..=915).contains(&vmin),
            "core-0 bwaves Vmin out of band: {vmin}"
        );
        let crash = s.highest_crash.expect("845 reaches the crash region").get();
        assert!(crash < vmin, "crash {crash} must sit below Vmin {vmin}");
        // Severity grows (weakly) as voltage decreases through the unsafe
        // region: compare the first abnormal step against the deepest one.
        let abnormal: Vec<&StepStats> = s.abnormal_steps().collect();
        assert!(abnormal.len() >= 2);
        assert!(
            abnormal.last().unwrap().severity.value() >= abnormal.first().unwrap().severity.value(),
            "severity must not shrink with depth"
        );
        // The conservative Vmin is the max over per-iteration Vmins, so
        // the Figure 4 green line (the average) sits at or below it.
        assert!(s.average_vmin.unwrap() <= f64::from(vmin));
    }

    #[test]
    fn severity_zero_exactly_in_safe_steps() {
        let r = analyzed("bwaves", 0, 920, 860);
        let s = &r.summaries[0];
        for st in &s.steps {
            if st.region == RegionKind::Safe {
                assert_eq!(st.severity, Severity::ZERO, "{}mV", st.mv);
            } else {
                assert!(st.severity.value() > 0.0, "{}mV", st.mv);
            }
        }
    }

    #[test]
    fn robust_vs_sensitive_core_lookup() {
        let cfg = CampaignConfig::builder()
            .benchmarks(["milc"])
            .cores([CoreId::new(0), CoreId::new(4)])
            .iterations(3)
            .start_voltage(Millivolts::new(920))
            .floor_voltage(Millivolts::new(855))
            .seed(5)
            .build()
            .unwrap();
        let out = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg).execute();
        let r = analyze(&out, &SeverityWeights::paper());
        let (robust, robust_v) = r.most_robust_core("milc").unwrap();
        let (sensitive, sensitive_v) = r.most_sensitive_core("milc").unwrap();
        assert_eq!(robust, CoreId::new(4), "PMD2 cores are the robust ones");
        assert_eq!(sensitive, CoreId::new(0));
        assert!(robust_v < sensitive_v, "{robust_v} vs {sensitive_v}");
    }

    #[test]
    fn step_lookup_and_observed_union() {
        let r = analyzed("bwaves", 0, 920, 880);
        let s = &r.summaries[0];
        assert!(s.step(Millivolts::new(920)).is_some());
        assert!(s.step(Millivolts::new(921)).is_none());
        let top = s.step(Millivolts::new(920)).unwrap();
        assert!(top.observed().is_normal());
        assert_eq!(top.count(Effect::Sc), 0);
    }
}
