//! Adaptive Vmin search strategies.
//!
//! The paper's characterization walks the full descending voltage grid for
//! every (benchmark, core) item (§2.2.1), but its deliverable is only the
//! region *boundaries* of §3: the conservative safe Vmin (the last step
//! before the first abnormal one) and the highest crash step. Both are
//! boundaries of monotone predicates over the grid — "some iteration
//! misbehaved" and "some iteration crashed the system" flip from false to
//! true as voltage drops — so they can be located with a bisection instead
//! of a linear scan, and a good prior turns the bisection into a couple of
//! confirmation probes.
//!
//! A [`SearchPlan`] is an iterative driver: the runner asks [`next_step`]
//! which grid step to probe, executes the probe (every probe runs on a
//! pristine board, so its outcome is independent of visit order), and
//! feeds the [`StepVerdict`] back via [`record`]. The plan guarantees that
//! when it concludes, the steps it probed are sufficient for
//! [`regions::analyze`] to report the *same* safe Vmin and highest crash
//! step the exhaustive sweep would: the boundary step is probed abnormal
//! and the step directly above it is probed normal.
//!
//! [`next_step`]: SearchPlan::next_step
//! [`record`]: SearchPlan::record
//! [`regions::analyze`]: crate::regions::analyze

use margins_sim::{CoreId, Millivolts};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a campaign visits the voltage grid of each (benchmark, core) item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum SearchStrategy {
    /// Visit every step top-down — the paper's massive campaign, stopping
    /// early only after `crash_stop_steps` consecutive all-crash steps.
    #[default]
    Exhaustive,
    /// Bisect for the first abnormal step and then for the first crash
    /// step, with confirmation probes directly above each candidate
    /// boundary.
    Bisection,
    /// Bisection seeded from a predictor-guided or cached prior: the first
    /// probe lands on the expected boundary, so a good prior resolves an
    /// item in a handful of probes.
    WarmStart,
}

impl SearchStrategy {
    /// Parses the CLI spelling of a strategy.
    #[must_use]
    pub fn parse(s: &str) -> Option<SearchStrategy> {
        match s {
            "exhaustive" => Some(SearchStrategy::Exhaustive),
            "bisection" => Some(SearchStrategy::Bisection),
            "warm-start" | "warmstart" => Some(SearchStrategy::WarmStart),
            _ => None,
        }
    }

    /// The canonical spelling used in traces and on the CLI.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SearchStrategy::Exhaustive => "exhaustive",
            SearchStrategy::Bisection => "bisection",
            SearchStrategy::WarmStart => "warm-start",
        }
    }

    /// Whether the strategy visits a data-dependent subset of the grid.
    #[must_use]
    pub fn is_adaptive(self) -> bool {
        !matches!(self, SearchStrategy::Exhaustive)
    }

    /// Whether the strategy consumes warm-start priors — the signal the
    /// runner uses to derive priors from a cache before execution starts.
    #[must_use]
    pub fn uses_priors(self) -> bool {
        matches!(self, SearchStrategy::WarmStart)
    }
}

impl std::fmt::Display for SearchStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What the search needs to know about one probed step, aggregated over
/// the step's iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepVerdict {
    /// Some iteration manifested an abnormal effect (the step would not be
    /// part of the safe region).
    pub abnormal: bool,
    /// Some iteration crashed the whole system.
    pub any_sc: bool,
    /// Every iteration crashed the whole system (feeds the exhaustive
    /// sweep's crash-stop rule).
    pub all_sc: bool,
}

/// Boundary priors for one (benchmark, core) item, in millivolts on the
/// swept rail. Millivolts rather than step indices so a prior derived from
/// one campaign grid transfers to another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ItemPrior {
    /// Expected voltage of the first abnormal step (the step right below
    /// the safe Vmin).
    pub vmin_mv: Option<u32>,
    /// Expected voltage of the highest crash step.
    pub crash_mv: Option<u32>,
}

/// Per-item boundary priors for [`SearchStrategy::WarmStart`], keyed by
/// (program, dataset, core).
///
/// Priors are fixed before the campaign executes, so warm-started searches
/// stay schedule-independent: a prior can come from the margin predictor
/// or from a previously persisted [`CampaignCache`], never from sibling
/// items of the running campaign.
///
/// [`CampaignCache`]: crate::cache::CampaignCache
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchPriors {
    map: BTreeMap<(String, String, u8), ItemPrior>,
}

impl SearchPriors {
    /// An empty prior set.
    #[must_use]
    pub fn new() -> Self {
        SearchPriors::default()
    }

    /// Sets the prior for one item.
    pub fn insert(&mut self, program: &str, dataset: &str, core: CoreId, prior: ItemPrior) {
        self.map.insert(
            (program.to_owned(), dataset.to_owned(), core.index() as u8),
            prior,
        );
    }

    /// The prior for one item, if any.
    #[must_use]
    pub fn get(&self, program: &str, dataset: &str, core: CoreId) -> Option<ItemPrior> {
        self.map
            .get(&(program.to_owned(), dataset.to_owned(), core.index() as u8))
            .copied()
    }

    /// Number of items with a prior.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no priors are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Incremental first-true binary search over step indices `[start, end)`
/// of a (presumed) monotone predicate, with optional seeding and galloping
/// so a good prior resolves in two probes.
///
/// The invariant maintained across probes: every increment of `lo` came
/// from a probe that evaluated false at `lo - 1`, and every decrement of
/// `hi` from a probe that evaluated true at `hi`. The search concludes at
/// `lo == hi == b`, so the boundary is always *confirmed*: step `b` was
/// probed true (unless `b == end`) and step `b - 1` was probed false
/// (unless `b == start`). If the predicate is non-monotone around the
/// prior, a true probe simply lowers `hi` and the search continues above
/// it — the reported boundary is the first true step among those probed.
#[derive(Debug, Clone)]
struct BoundarySearch {
    end: u32,
    lo: u32,
    hi: u32,
    stage: Stage,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Probe the prior first.
    Seed(u32),
    /// The prior (and everything probed since) was true: walk upward in
    /// doubling strides looking for a false step.
    GallopUp(u32),
    /// The prior was false: walk downward in doubling strides looking for
    /// a true step.
    GallopDown(u32),
    /// Plain binary search inside a bracketed `[lo, hi)`.
    Bisect,
    Done,
}

impl BoundarySearch {
    fn new(start: u32, end: u32, prior: Option<u32>) -> Self {
        let mut s = BoundarySearch {
            end,
            lo: start,
            hi: end,
            stage: Stage::Bisect,
        };
        if start >= end {
            s.lo = end;
            s.stage = Stage::Done;
            return s;
        }
        if let Some(p) = prior {
            s.stage = Stage::Seed(p.clamp(start, end - 1));
        }
        s
    }

    fn is_done(&self) -> bool {
        self.stage == Stage::Done
    }

    /// The resolved boundary: first true step, or `end` when every probed
    /// step was false. Meaningful only once [`BoundarySearch::is_done`].
    fn boundary(&self) -> u32 {
        self.hi
    }

    /// The next step to probe, or `None` when the boundary is resolved.
    fn next(&self) -> Option<u32> {
        match self.stage {
            Stage::Done => None,
            Stage::Seed(p) => Some(p),
            Stage::GallopUp(size) => Some(self.hi - size.min(self.hi - self.lo)),
            Stage::GallopDown(size) => Some((self.lo.saturating_add(size) - 1).min(self.end - 1)),
            Stage::Bisect => Some(self.lo + (self.hi - self.lo) / 2),
        }
    }

    /// Feeds back the predicate value at `step` (which must be the step
    /// returned by [`BoundarySearch::next`]).
    fn record(&mut self, step: u32, value: bool) {
        if self.stage == Stage::Done {
            return;
        }
        if value {
            self.hi = self.hi.min(step);
        } else {
            self.lo = self.lo.max(step + 1);
        }
        self.stage = match (self.stage, value) {
            (Stage::Seed(_), true) => Stage::GallopUp(1),
            (Stage::Seed(_), false) => Stage::GallopDown(1),
            (Stage::GallopUp(s), true) => Stage::GallopUp(s.saturating_mul(2)),
            (Stage::GallopDown(s), false) => Stage::GallopDown(s.saturating_mul(2)),
            (Stage::GallopUp(_), false) | (Stage::GallopDown(_), true) => Stage::Bisect,
            (stage @ (Stage::Bisect | Stage::Done), _) => stage,
        };
        if self.lo >= self.hi {
            self.lo = self.hi;
            self.stage = Stage::Done;
        }
    }
}

/// The iterative search driver for one (benchmark, core) item.
///
/// Usage: `while let Some(step) = plan.next_step() { probe; plan.record }`.
/// Probes are pure (pristine board per step), so the plan replays an
/// already-known verdict instead of requesting the same step twice.
#[derive(Debug, Clone)]
pub struct SearchPlan {
    kind: PlanKind,
}

#[derive(Debug, Clone)]
enum PlanKind {
    Exhaustive {
        steps: u32,
        crash_stop: u32,
        next: u32,
        consecutive_all_sc: u32,
        stopped: Option<(u32, u32)>,
    },
    Adaptive {
        steps: u32,
        verdicts: BTreeMap<u32, StepVerdict>,
        vmin: BoundarySearch,
        crash: Option<BoundarySearch>,
        prior_crash: Option<u32>,
    },
}

impl SearchPlan {
    /// The exhaustive top-down sweep over `steps` grid points with the
    /// crash-stop rule (`crash_stop == 0` disables it).
    #[must_use]
    pub fn exhaustive(steps: u32, crash_stop: u32) -> SearchPlan {
        SearchPlan {
            kind: PlanKind::Exhaustive {
                steps,
                crash_stop,
                next: 0,
                consecutive_all_sc: 0,
                stopped: None,
            },
        }
    }

    /// An adaptive (bisection) plan over `steps` grid points, optionally
    /// seeded with prior step indices for the two boundaries.
    #[must_use]
    pub fn adaptive(steps: u32, prior_vmin: Option<u32>, prior_crash: Option<u32>) -> SearchPlan {
        SearchPlan {
            kind: PlanKind::Adaptive {
                steps,
                verdicts: BTreeMap::new(),
                vmin: BoundarySearch::new(0, steps, prior_vmin),
                crash: None,
                prior_crash,
            },
        }
    }

    /// The plan for `strategy` over `steps` grid points.
    #[must_use]
    pub fn for_strategy(
        strategy: SearchStrategy,
        steps: u32,
        crash_stop: u32,
        prior: Option<ResolvedPrior>,
    ) -> SearchPlan {
        match strategy {
            SearchStrategy::Exhaustive => SearchPlan::exhaustive(steps, crash_stop),
            SearchStrategy::Bisection => SearchPlan::adaptive(steps, None, None),
            SearchStrategy::WarmStart => SearchPlan::adaptive(
                steps,
                prior.and_then(|p| p.vmin_step),
                prior.and_then(|p| p.crash_step),
            ),
        }
    }

    /// The next grid step to probe, or `None` when the search concluded.
    pub fn next_step(&mut self) -> Option<u32> {
        match &mut self.kind {
            PlanKind::Exhaustive {
                steps,
                next,
                stopped,
                ..
            } => {
                if stopped.is_some() || *next >= *steps {
                    None
                } else {
                    Some(*next)
                }
            }
            PlanKind::Adaptive {
                steps,
                verdicts,
                vmin,
                crash,
                prior_crash,
            } => loop {
                if !vmin.is_done() {
                    // lint: allow(no-panic) — !is_done() guarantees a next step
                    let q = vmin.next().expect("unfinished search proposes a step");
                    match verdicts.get(&q) {
                        Some(v) => vmin.record(q, v.abnormal),
                        None => return Some(q),
                    }
                    continue;
                }
                let b = vmin.boundary();
                if b >= *steps {
                    // Every step down to the floor is safe: no crash
                    // region can exist either.
                    return None;
                }
                let crash =
                    crash.get_or_insert_with(|| BoundarySearch::new(b, *steps, *prior_crash));
                if crash.is_done() {
                    return None;
                }
                // lint: allow(no-panic) — !is_done() guarantees a next step
                let q = crash.next().expect("unfinished search proposes a step");
                match verdicts.get(&q) {
                    Some(v) => crash.record(q, v.any_sc),
                    None => return Some(q),
                }
            },
        }
    }

    /// Feeds back the verdict for the step returned by
    /// [`SearchPlan::next_step`].
    pub fn record(&mut self, step: u32, verdict: StepVerdict) {
        match &mut self.kind {
            PlanKind::Exhaustive {
                crash_stop,
                next,
                consecutive_all_sc,
                stopped,
                ..
            } => {
                if verdict.all_sc {
                    *consecutive_all_sc += 1;
                } else {
                    *consecutive_all_sc = 0;
                }
                if *crash_stop > 0 && *consecutive_all_sc >= *crash_stop {
                    *stopped = Some((step, *consecutive_all_sc));
                }
                *next = step + 1;
            }
            PlanKind::Adaptive {
                verdicts,
                vmin,
                crash,
                ..
            } => {
                verdicts.insert(step, verdict);
                if vmin.is_done() {
                    if let Some(c) = crash {
                        c.record(step, verdict.any_sc);
                    }
                } else {
                    vmin.record(step, verdict.abnormal);
                }
            }
        }
    }

    /// Steps probed so far (each counts once, however often its verdict
    /// was replayed).
    #[must_use]
    pub fn probed(&self) -> u32 {
        match &self.kind {
            PlanKind::Exhaustive { next, .. } => *next,
            PlanKind::Adaptive { verdicts, .. } => verdicts.len() as u32,
        }
    }

    /// Which boundary the plan is currently hunting, for trace events.
    #[must_use]
    pub fn phase(&self) -> &'static str {
        match &self.kind {
            PlanKind::Exhaustive { .. } => "sweep",
            PlanKind::Adaptive { vmin, .. } => {
                if vmin.is_done() {
                    "crash"
                } else {
                    "vmin"
                }
            }
        }
    }

    /// The exhaustive sweep's crash-stop trigger, as (step, consecutive
    /// all-crash steps), when it fired.
    #[must_use]
    pub fn early_stop(&self) -> Option<(u32, u32)> {
        match &self.kind {
            PlanKind::Exhaustive { stopped, .. } => *stopped,
            PlanKind::Adaptive { .. } => None,
        }
    }

    /// The resolved boundaries, once [`SearchPlan::next_step`] returned
    /// `None`: (first abnormal step, first crash step), each `None` when
    /// the predicate never became true on the grid. The exhaustive plan
    /// reports `None` here — its verdicts live in the run log.
    #[must_use]
    pub fn boundaries(&self) -> (Option<u32>, Option<u32>) {
        match &self.kind {
            PlanKind::Exhaustive { .. } => (None, None),
            PlanKind::Adaptive {
                steps, vmin, crash, ..
            } => {
                let b = (vmin.is_done() && vmin.boundary() < *steps).then(|| vmin.boundary());
                let c = crash
                    .as_ref()
                    .filter(|c| c.is_done() && c.boundary() < *steps)
                    .map(BoundarySearch::boundary);
                (b, c)
            }
        }
    }
}

impl ItemPrior {
    /// The step index of the expected first abnormal voltage on a grid
    /// starting at `start_mv` with 5 mV steps (clamping handled by the
    /// search itself).
    #[must_use]
    fn step_on_grid(mv: u32, start_mv: u32) -> u32 {
        start_mv.saturating_sub(mv) / margins_sim::volt::VOLTAGE_STEP_MV
    }

    /// Resolves this prior against a concrete grid, producing the step
    /// hints [`SearchPlan::for_strategy`] consumes.
    #[must_use]
    pub fn on_grid(self, start: Millivolts) -> ResolvedPrior {
        ResolvedPrior {
            vmin_step: self.vmin_mv.map(|mv| Self::step_on_grid(mv, start.get())),
            crash_step: self.crash_mv.map(|mv| Self::step_on_grid(mv, start.get())),
        }
    }
}

/// An [`ItemPrior`] resolved to step indices on a concrete voltage grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResolvedPrior {
    /// Expected first abnormal step.
    pub vmin_step: Option<u32>,
    /// Expected first crash step.
    pub crash_step: Option<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a plan against a synthetic grid: `vmin_at` is the first
    /// abnormal step, `crash_at` the first crash step (`None` = never).
    /// Returns the probed steps in probe order.
    fn drive(
        plan: &mut SearchPlan,
        steps: u32,
        vmin_at: Option<u32>,
        crash_at: Option<u32>,
    ) -> Vec<u32> {
        let mut probes = Vec::new();
        while let Some(step) = plan.next_step() {
            assert!(step < steps, "plan proposed off-grid step {step}");
            assert!(
                !probes.contains(&step),
                "plan re-probed step {step}: {probes:?}"
            );
            probes.push(step);
            let abnormal = vmin_at.is_some_and(|b| step >= b);
            let any_sc = crash_at.is_some_and(|c| step >= c);
            plan.record(
                step,
                StepVerdict {
                    abnormal,
                    any_sc,
                    all_sc: any_sc,
                },
            );
            assert!(probes.len() <= steps as usize, "plan never concluded");
        }
        probes
    }

    #[test]
    fn exhaustive_plan_visits_every_step_in_order() {
        let mut plan = SearchPlan::exhaustive(8, 0);
        let probes = drive(&mut plan, 8, Some(5), None);
        assert_eq!(probes, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(plan.early_stop(), None);
    }

    #[test]
    fn exhaustive_plan_honours_the_crash_stop_rule() {
        let mut plan = SearchPlan::exhaustive(10, 2);
        let probes = drive(&mut plan, 10, Some(3), Some(4));
        // Steps 4 and 5 are both all-crash: stop after step 5.
        assert_eq!(probes, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(plan.early_stop(), Some((5, 2)));
    }

    #[test]
    fn bisection_finds_confirmed_boundaries_on_every_grid() {
        for steps in 1..=24u32 {
            for vmin_at in 0..=steps {
                let vmin = (vmin_at < steps).then_some(vmin_at);
                for crash_at in vmin_at..=steps {
                    let crash = (crash_at < steps).then_some(crash_at);
                    let mut plan = SearchPlan::adaptive(steps, None, None);
                    drive(&mut plan, steps, vmin, crash);
                    assert_eq!(
                        plan.boundaries(),
                        (vmin, vmin.and(crash)),
                        "steps={steps} vmin={vmin:?} crash={crash:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn warm_start_with_exact_prior_is_a_handful_of_probes() {
        let steps = 23u32;
        for vmin_at in 1..steps - 1 {
            let crash_at = (vmin_at + 2).min(steps - 1);
            let mut plan = SearchPlan::adaptive(steps, Some(vmin_at), Some(crash_at));
            let probes = drive(&mut plan, steps, Some(vmin_at), Some(crash_at));
            assert!(
                probes.len() <= 5,
                "exact priors must resolve in <=5 probes, took {probes:?} for vmin={vmin_at}"
            );
            assert_eq!(plan.boundaries(), (Some(vmin_at), Some(crash_at)));
        }
    }

    #[test]
    fn warm_start_with_wrong_prior_still_finds_the_boundary() {
        let steps = 23u32;
        for prior in 0..steps {
            for truth in 0..=steps {
                let vmin = (truth < steps).then_some(truth);
                let mut plan = SearchPlan::adaptive(steps, Some(prior), None);
                drive(&mut plan, steps, vmin, None);
                assert_eq!(plan.boundaries().0, vmin, "prior={prior} truth={truth:?}");
            }
        }
    }

    #[test]
    fn adaptive_probes_grow_logarithmically() {
        let steps = 128u32;
        let mut plan = SearchPlan::adaptive(steps, None, None);
        let probes = drive(&mut plan, steps, Some(77), Some(90));
        assert!(
            probes.len() <= 2 * 8 + 4,
            "two bisections over 128 steps must stay near 2*log2: {probes:?}"
        );
    }

    #[test]
    fn all_safe_grid_skips_the_crash_search() {
        let mut plan = SearchPlan::adaptive(16, None, None);
        let probes = drive(&mut plan, 16, None, None);
        assert_eq!(plan.boundaries(), (None, None));
        // Resolving "all safe" needs only the bisection path down to the
        // floor probe.
        assert!(probes.contains(&15), "must confirm the floor step");
        assert!(probes.len() <= 5, "{probes:?}");
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in [
            SearchStrategy::Exhaustive,
            SearchStrategy::Bisection,
            SearchStrategy::WarmStart,
        ] {
            assert_eq!(SearchStrategy::parse(s.name()), Some(s));
        }
        assert_eq!(SearchStrategy::parse("bogus"), None);
        assert_eq!(SearchStrategy::default(), SearchStrategy::Exhaustive);
        assert!(!SearchStrategy::Exhaustive.is_adaptive());
        assert!(SearchStrategy::WarmStart.is_adaptive());
    }

    #[test]
    fn priors_resolve_millivolts_to_grid_steps() {
        let prior = ItemPrior {
            vmin_mv: Some(905),
            crash_mv: Some(880),
        };
        let resolved = prior.on_grid(Millivolts::new(930));
        assert_eq!(resolved.vmin_step, Some(5));
        assert_eq!(resolved.crash_step, Some(10));
        // A prior above the grid top clamps to step 0 inside the search.
        assert_eq!(
            ItemPrior {
                vmin_mv: Some(950),
                crash_mv: None
            }
            .on_grid(Millivolts::new(930))
            .vmin_step,
            Some(0)
        );
    }

    #[test]
    fn search_priors_store_and_fetch() {
        let mut p = SearchPriors::new();
        assert!(p.is_empty());
        p.insert(
            "bwaves",
            "ref",
            CoreId::new(0),
            ItemPrior {
                vmin_mv: Some(905),
                crash_mv: Some(880),
            },
        );
        assert_eq!(p.len(), 1);
        assert_eq!(
            p.get("bwaves", "ref", CoreId::new(0))
                .and_then(|i| i.vmin_mv),
            Some(905)
        );
        assert_eq!(p.get("bwaves", "ref", CoreId::new(1)), None);
    }
}
