//! The parsing phase: raw run records → Table 3 effect sets.
//!
//! The physical framework parses serial/EDAC/process logs; here the raw
//! material is the simulator's [`RunRecord`], and — exactly like the paper —
//! SDC detection is an *output comparison* against a golden digest captured
//! at nominal conditions, not an oracle of the fault injector.

use crate::effect::{Effect, EffectSet};
use margins_sim::{CoreId, CounterFile, Millivolts};
use margins_sim::{Megahertz, OutputDigest, RunOutcome, RunRecord};
use serde::{Deserialize, Serialize};

/// One fully classified characterization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifiedRun {
    /// Benchmark name.
    pub program: String,
    /// Input dataset label.
    pub dataset: String,
    /// Core the benchmark was pinned to.
    pub core: CoreId,
    /// PMD-rail voltage of the run.
    pub pmd_mv: Millivolts,
    /// PCP/SoC-rail voltage of the run.
    pub soc_mv: Millivolts,
    /// PMD clock of the target core.
    pub freq: Megahertz,
    /// Iteration index within the campaign (0-based).
    pub iteration: u32,
    /// The Table 3 effects observed.
    pub effects: EffectSet,
    /// Corrected-error reports during the run.
    pub corrected_errors: usize,
    /// Uncorrected-error reports during the run.
    pub uncorrected_errors: usize,
    /// Modelled runtime, seconds.
    pub runtime_s: f64,
    /// Modelled energy, joules.
    pub energy_j: f64,
    /// Performance counters, retained only when the campaign asked for them.
    pub counters: Option<CounterFile>,
}

impl ClassifiedRun {
    /// The voltage of the rail a campaign swept (the step key of the
    /// regions analysis).
    #[must_use]
    pub fn swept_mv(&self, rail: crate::config::SweptRail) -> Millivolts {
        match rail {
            crate::config::SweptRail::Pmd => self.pmd_mv,
            crate::config::SweptRail::PcpSoc => self.soc_mv,
        }
    }
}

/// Classifies a raw run record against the golden digest.
///
/// * system crash → SC (the watchdog timeout / unresponsive board),
/// * application crash → AC (non-zero exit),
/// * EDAC corrected reports → CE, uncorrected → UE,
/// * completed with digest ≠ golden → SDC.
///
/// Multiple effects are all recorded (§3.4.1). When `golden` is `None`
/// (no reference output available) SDC detection is skipped.
#[must_use]
pub fn classify(record: &RunRecord, golden: Option<OutputDigest>) -> EffectSet {
    let mut effects = EffectSet::new();
    match record.outcome {
        RunOutcome::SystemCrashed => effects.insert(Effect::Sc),
        RunOutcome::AppCrashed => effects.insert(Effect::Ac),
        RunOutcome::Completed => {
            if let Some(golden) = golden {
                if record.digest != golden {
                    effects.insert(Effect::Sdc);
                }
            }
        }
    }
    if record.corrected_errors > 0 {
        effects.insert(Effect::Ce);
    }
    if record.uncorrected_errors > 0 {
        effects.insert(Effect::Ue);
    }
    effects
}

/// Builds the classified run from the raw record (the parsing-phase row).
#[must_use]
pub fn classify_run(
    record: &RunRecord,
    golden: Option<OutputDigest>,
    iteration: u32,
    keep_counters: bool,
) -> ClassifiedRun {
    ClassifiedRun {
        program: record.program.clone(),
        dataset: record.dataset.clone(),
        core: record.core,
        pmd_mv: record.pmd_mv,
        soc_mv: record.soc_mv,
        freq: record.freq,
        iteration,
        effects: classify(record, golden),
        corrected_errors: record.corrected_errors,
        uncorrected_errors: record.uncorrected_errors,
        runtime_s: record.runtime_s,
        energy_j: record.energy_j,
        counters: if keep_counters {
            Some(record.counters.clone())
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(outcome: RunOutcome, digest_seed: u64, ce: usize, ue: usize) -> RunRecord {
        let mut digest = OutputDigest::new();
        digest.absorb_u64(digest_seed);
        RunRecord {
            program: "demo".into(),
            dataset: "ref".into(),
            core: CoreId::new(0),
            pmd_mv: Millivolts::new(900),
            soc_mv: Millivolts::new(950),
            freq: Megahertz::new(2400),
            outcome,
            digest,
            corrected_errors: ce,
            uncorrected_errors: ue,
            timing_faults: 0,
            fault_samples: 0,
            silent_corruptions: 0,
            counters: CounterFile::new(),
            cycles: 1000,
            instructions: 900,
            runtime_s: 1e-3,
            energy_j: 1e-2,
            stress_mass: 5.0,
        }
    }

    fn golden() -> OutputDigest {
        let mut d = OutputDigest::new();
        d.absorb_u64(1);
        d
    }

    #[test]
    fn clean_completed_run_is_normal() {
        let r = record(RunOutcome::Completed, 1, 0, 0);
        assert!(classify(&r, Some(golden())).is_normal());
    }

    #[test]
    fn digest_mismatch_is_sdc() {
        let r = record(RunOutcome::Completed, 2, 0, 0);
        let e = classify(&r, Some(golden()));
        assert!(e.contains(Effect::Sdc));
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn sdc_detection_requires_a_golden() {
        let r = record(RunOutcome::Completed, 2, 0, 0);
        assert!(classify(&r, None).is_normal());
    }

    #[test]
    fn crashes_map_to_ac_and_sc() {
        let r = record(RunOutcome::AppCrashed, 1, 0, 0);
        assert!(classify(&r, Some(golden())).contains(Effect::Ac));
        let r = record(RunOutcome::SystemCrashed, 1, 0, 0);
        assert!(classify(&r, Some(golden())).is_system_crash());
    }

    #[test]
    fn edac_reports_map_to_ce_ue_and_coexist_with_sdc() {
        // §3.4.1's example: a run can manifest both SDC and CE.
        let r = record(RunOutcome::Completed, 2, 3, 1);
        let e = classify(&r, Some(golden()));
        assert!(e.contains(Effect::Sdc));
        assert!(e.contains(Effect::Ce));
        assert!(e.contains(Effect::Ue));
        assert_eq!(e.to_string(), "SDC+CE+UE");
    }

    #[test]
    fn crashed_runs_do_not_check_output() {
        // A crashed run's digest is garbage; it must not add SDC.
        let r = record(RunOutcome::AppCrashed, 2, 0, 0);
        let e = classify(&r, Some(golden()));
        assert!(!e.contains(Effect::Sdc));
    }

    #[test]
    fn classify_run_carries_context() {
        let r = record(RunOutcome::Completed, 1, 1, 0);
        let c = classify_run(&r, Some(golden()), 7, false);
        assert_eq!(c.iteration, 7);
        assert_eq!(c.pmd_mv, Millivolts::new(900));
        assert_eq!(c.corrected_errors, 1);
        assert!(c.counters.is_none());
        let c = classify_run(&r, Some(golden()), 7, true);
        assert!(c.counters.is_some());
    }
}
