//! The severity function of §3.4.1 — the paper's second contribution.
//!
//! ```text
//! S_v = W_SDC·SDC/N + W_CE·CE/N + W_UE·UE/N + W_AC·AC/N + W_SC·SC/N
//! ```
//!
//! where each effect parameter counts *the runs (out of N at voltage v) in
//! which the effect appeared* — not how many individual errors each run
//! produced — and the weights translate behaviours into numbers (Table 4:
//! SC=16, AC=8, SDC=4, UE=2, CE=1, NO=0).

use crate::effect::{Effect, EffectSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A severity value (weighted abnormal-run density at one voltage step).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Severity(f64);

impl Severity {
    /// Zero severity: nothing abnormal (the safe region).
    pub const ZERO: Severity = Severity(0.0);

    /// Wraps a raw severity value.
    ///
    /// # Panics
    ///
    /// Panics on NaN (severity is always a finite weighted average).
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "severity cannot be NaN");
        Severity(value)
    }

    /// The raw value.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The mitigation guidance of §4.4 for this severity level, given the
    /// effect mix observed/predicted at the same voltage.
    #[must_use]
    pub fn mitigation(self, observed: EffectSet) -> Mitigation {
        if self.0 <= f64::EPSILON {
            Mitigation::NothingAbnormal
        } else if observed.contains(Effect::Sc) || observed.contains(Effect::Ac) || self.0 >= 8.0 {
            Mitigation::Unusable
        } else if observed.contains(Effect::Sdc) {
            Mitigation::RequiresRecovery
        } else {
            Mitigation::EccProxy
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}", self.0)
    }
}

/// The §4.4 voltage-range classification by first-observed effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mitigation {
    /// severity = 0: "no mitigation action is required"; minimal savings.
    NothingAbnormal,
    /// Corrected errors only (the Itanium-style behaviour of [9, 10]): ECC
    /// serves as a proxy; "significant energy savings … without any
    /// mitigation other than the ECC correction".
    EccProxy,
    /// SDCs (alone or with CE/UE): needs checkpointing/re-execution, or is
    /// acceptable only for fault-tolerant applications (severity ≤ 4).
    RequiresRecovery,
    /// AC/SC territory (severity 8–19): "well beyond the limits of cores
    /// operation"; unusable without hardware redesign.
    Unusable,
}

impl fmt::Display for Mitigation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Mitigation::NothingAbnormal => "nothing abnormal; no mitigation required",
            Mitigation::EccProxy => "corrected errors only; ECC serves as proxy",
            Mitigation::RequiresRecovery => "SDCs present; checkpoint/re-execution required",
            Mitigation::Unusable => "crashes present; range unusable",
        };
        f.write_str(s)
    }
}

/// The severity weights (Table 4). Different weights "can be also used
/// according to the importance of each observed abnormal behavior in a
/// particular system study".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeverityWeights {
    /// Weight of a run manifesting a silent data corruption.
    pub sdc: f64,
    /// Weight of a run manifesting corrected errors.
    pub ce: f64,
    /// Weight of a run manifesting uncorrected errors.
    pub ue: f64,
    /// Weight of a run manifesting an application crash.
    pub ac: f64,
    /// Weight of a run manifesting a system crash.
    pub sc: f64,
}

impl SeverityWeights {
    /// The Table 4 weights used throughout the paper's experiments.
    #[must_use]
    pub fn paper() -> Self {
        SeverityWeights {
            sc: 16.0,
            ac: 8.0,
            sdc: 4.0,
            ue: 2.0,
            ce: 1.0,
        }
    }

    /// The weight assigned to one effect (NO weighs 0).
    #[must_use]
    pub fn weight(&self, effect: Effect) -> f64 {
        match effect {
            Effect::No => 0.0,
            Effect::Sdc => self.sdc,
            Effect::Ce => self.ce,
            Effect::Ue => self.ue,
            Effect::Ac => self.ac,
            Effect::Sc => self.sc,
        }
    }

    /// The severity of a *single* run's effect set: Σ weights of the
    /// effects it manifested.
    #[must_use]
    pub fn run_severity(&self, effects: EffectSet) -> f64 {
        effects.iter().map(|e| self.weight(e)).sum()
    }

    /// The severity function S_v over the N runs executed at one voltage
    /// step: each effect contributes `W_e · (runs manifesting e) / N`.
    ///
    /// Returns [`Severity::ZERO`] for an empty slice.
    #[must_use]
    pub fn severity<'a, I>(&self, runs: I) -> Severity
    where
        I: IntoIterator<Item = &'a EffectSet>,
    {
        let mut n = 0usize;
        let mut total = 0.0;
        for set in runs {
            n += 1;
            total += self.run_severity(*set);
        }
        if n == 0 {
            Severity::ZERO
        } else {
            Severity::new(total / n as f64)
        }
    }

    /// The maximum severity expressible with these weights (every run
    /// manifesting every abnormal effect). With the paper's weights: 31;
    /// in practice §4.4 treats 16–19 as the crash ceiling since SC runs
    /// rarely also log SDC output mismatches.
    #[must_use]
    pub fn max_severity(&self) -> f64 {
        self.sdc + self.ce + self.ue + self.ac + self.sc
    }
}

impl Default for SeverityWeights {
    fn default() -> Self {
        SeverityWeights::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(effects: &[Effect]) -> EffectSet {
        effects.iter().copied().collect()
    }

    #[test]
    fn paper_weights_match_table4() {
        let w = SeverityWeights::paper();
        assert_eq!(w.weight(Effect::Sc), 16.0);
        assert_eq!(w.weight(Effect::Ac), 8.0);
        assert_eq!(w.weight(Effect::Sdc), 4.0);
        assert_eq!(w.weight(Effect::Ue), 2.0);
        assert_eq!(w.weight(Effect::Ce), 1.0);
        assert_eq!(w.weight(Effect::No), 0.0);
    }

    #[test]
    fn all_normal_runs_have_zero_severity() {
        let w = SeverityWeights::paper();
        let runs = vec![EffectSet::new(); 10];
        assert_eq!(w.severity(&runs), Severity::ZERO);
    }

    #[test]
    fn all_sc_runs_reach_16() {
        let w = SeverityWeights::paper();
        let runs = vec![set(&[Effect::Sc]); 10];
        assert_eq!(w.severity(&runs).value(), 16.0);
    }

    #[test]
    fn fig5_style_fractional_values() {
        // 10 runs: 2/3 of them SDC-only would be 2.7 in Figure 5's
        // 1-decimal rendering. Here: 7 SDC of 10 → 2.8.
        let w = SeverityWeights::paper();
        let mut runs = vec![set(&[Effect::Sdc]); 7];
        runs.extend(vec![EffectSet::new(); 3]);
        let s = w.severity(&runs);
        assert!((s.value() - 2.8).abs() < 1e-12);
    }

    #[test]
    fn multi_effect_runs_accumulate_weights() {
        // A run with SDC+CE counts 4+1 = 5 (the §4.4 "severity=5-7" band).
        let w = SeverityWeights::paper();
        let runs = vec![set(&[Effect::Sdc, Effect::Ce]); 10];
        assert_eq!(w.severity(&runs).value(), 5.0);
    }

    #[test]
    fn empty_input_is_zero() {
        let w = SeverityWeights::paper();
        let runs: Vec<EffectSet> = vec![];
        assert_eq!(w.severity(&runs), Severity::ZERO);
    }

    #[test]
    fn mitigation_bands_follow_section_4_4() {
        assert_eq!(
            Severity::ZERO.mitigation(EffectSet::new()),
            Mitigation::NothingAbnormal
        );
        assert_eq!(
            Severity::new(1.0).mitigation(set(&[Effect::Ce])),
            Mitigation::EccProxy
        );
        assert_eq!(
            Severity::new(4.0).mitigation(set(&[Effect::Sdc])),
            Mitigation::RequiresRecovery
        );
        assert_eq!(
            Severity::new(5.0).mitigation(set(&[Effect::Sdc, Effect::Ce])),
            Mitigation::RequiresRecovery
        );
        assert_eq!(
            Severity::new(16.0).mitigation(set(&[Effect::Sc])),
            Mitigation::Unusable
        );
        assert_eq!(
            Severity::new(9.0).mitigation(set(&[Effect::Ac, Effect::Ue])),
            Mitigation::Unusable
        );
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_severity_rejected() {
        let _ = Severity::new(f64::NAN);
    }

    #[test]
    fn max_severity_with_paper_weights() {
        assert_eq!(SeverityWeights::paper().max_severity(), 31.0);
    }
}
