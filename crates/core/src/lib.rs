//! The automated system-level voltage-margin characterization framework —
//! the primary contribution of Papadimitriou et al., MICRO-50 2017 (§2.2),
//! rebuilt over the simulated micro-server of `margins-sim`.
//!
//! The framework mirrors the three phases of the paper's Figure 2:
//!
//! 1. **Initialization** — a [`config::CampaignConfig`] declares the
//!    benchmark list, the voltage/frequency grid, the target cores and the
//!    iteration count.
//! 2. **Execution** — the [`runner`] pins each benchmark to its target
//!    core, parks every other PMD at 300 MHz (*reliable cores setup*,
//!    §2.2.1), steps the shared PMD rail down in 5 mV increments, runs each
//!    configuration N times (*massive iterative execution*), restores
//!    nominal voltage before persisting each run's log (*safe data
//!    collection*), and leans on the [`watchdog`] to power-cycle the board
//!    whenever a run hangs it (*failure recognition*).
//! 3. **Parsing** — [`classify`] turns raw run records into the Table 3
//!    effect taxonomy {NO, SDC, CE, UE, AC, SC}; [`regions`] derives the
//!    safe/unsafe/crash regions, per-core `Vmin` and crash voltages of
//!    Figures 3–4; [`severity`] computes the severity function of §3.4.1;
//!    [`report`] renders everything as CSV, like the framework's "Final
//!    CSV results".
//!
//! [`dataset`] assembles the (performance counters, voltage) → target
//! matrices consumed by the `margins-predict` regression models (Figure 6's
//! profiling + training flow).
//!
//! # Example
//!
//! ```
//! use margins_core::config::CampaignConfig;
//! use margins_core::runner::Campaign;
//! use margins_sim::{ChipSpec, Corner, CoreId, Millivolts};
//!
//! // A deliberately tiny campaign: one benchmark, one core, 3 iterations.
//! let config = CampaignConfig::builder()
//!     .benchmarks(["namd"])
//!     .cores([CoreId::new(4)])
//!     .iterations(3)
//!     .start_voltage(Millivolts::new(880))
//!     .floor_voltage(Millivolts::new(860))
//!     .build()
//!     .unwrap();
//! let result = Campaign::new(ChipSpec::new(Corner::Ttt, 0), config).execute();
//! assert!(!result.runs.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod classify;
pub mod config;
pub mod dataset;
pub mod effect;
pub mod exec;
pub mod profile;
pub mod regions;
pub mod report;
pub mod runner;
pub mod search;
pub mod severity;
pub mod watchdog;

pub use cache::{CacheError, CampaignCache, SharedCampaignCache};
pub use classify::ClassifiedRun;
pub use config::CampaignConfig;
pub use effect::{Effect, EffectSet};
pub use exec::{
    CacheHandle, CampaignExecutor, ExecContext, ExecError, SerialExecutor, ThreadPoolExecutor,
};
pub use regions::{CharacterizationResult, RegionKind, SweepSummary};
pub use runner::{Campaign, UnknownBenchmark};
pub use search::{SearchPriors, SearchStrategy};
pub use severity::{Severity, SeverityWeights};
