//! The effect taxonomy of Table 3.
//!
//! Every characterization run is labelled with the set of effects it
//! manifested. "Note that each characterization run can manifest multiple
//! effects. For instance, in a run both SDC and CE can be observed; thus,
//! both of them are reported for this run." (§3.4.1)

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single observable effect of undervolted execution (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Effect {
    /// Normal operation: completed with no indication of failure.
    No,
    /// Silent data corruption: completed, but the output mismatched the
    /// golden output.
    Sdc,
    /// Corrected error reported by the hardware (EDAC).
    Ce,
    /// Uncorrected (but detected) error reported by the hardware (EDAC).
    Ue,
    /// Application crash: abnormal process termination.
    Ac,
    /// System crash: the machine became unresponsive.
    Sc,
}

impl Effect {
    /// All effects, in Table 3 order.
    pub const ALL: [Effect; 6] = [
        Effect::No,
        Effect::Sdc,
        Effect::Ce,
        Effect::Ue,
        Effect::Ac,
        Effect::Sc,
    ];

    /// The abbreviation used throughout the paper.
    #[must_use]
    pub fn abbreviation(self) -> &'static str {
        match self {
            Effect::No => "NO",
            Effect::Sdc => "SDC",
            Effect::Ce => "CE",
            Effect::Ue => "UE",
            Effect::Ac => "AC",
            Effect::Sc => "SC",
        }
    }

    /// The long description of Table 3.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Effect::No => "the benchmark was successfully completed without any indications of failure",
            Effect::Sdc => "the benchmark was successfully completed, but a mismatch between the program output and the correct output was observed",
            Effect::Ce => "errors were detected and corrected by the hardware",
            Effect::Ue => "errors were detected, but not corrected by the hardware",
            Effect::Ac => "the application process was not terminated normally",
            Effect::Sc => "the system was unresponsive",
        }
    }

    /// Whether this effect is abnormal (anything except NO).
    #[must_use]
    pub fn is_abnormal(self) -> bool {
        self != Effect::No
    }
}

impl fmt::Display for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbreviation())
    }
}

/// The set of effects observed in one run, as a compact bit set.
///
/// ```
/// use margins_core::effect::{Effect, EffectSet};
///
/// let mut set = EffectSet::new();
/// set.insert(Effect::Sdc);
/// set.insert(Effect::Ce);
/// assert!(set.contains(Effect::Sdc));
/// assert!(!set.is_normal());
/// assert_eq!(set.to_string(), "SDC+CE");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct EffectSet {
    bits: u8,
}

impl EffectSet {
    /// The empty set (treated as normal operation).
    #[must_use]
    pub fn new() -> Self {
        EffectSet::default()
    }

    /// A set holding exactly `effect`.
    #[must_use]
    pub fn of(effect: Effect) -> Self {
        let mut s = EffectSet::new();
        s.insert(effect);
        s
    }

    fn bit(effect: Effect) -> u8 {
        1u8 << (effect as u8)
    }

    /// Adds an effect. Inserting [`Effect::No`] is a no-op marker: a set
    /// without abnormal effects already reads as normal operation.
    pub fn insert(&mut self, effect: Effect) {
        if effect != Effect::No {
            self.bits |= Self::bit(effect);
        }
    }

    /// Whether the set contains `effect`. Querying [`Effect::No`] returns
    /// `true` exactly when no abnormal effect is present.
    #[must_use]
    pub fn contains(self, effect: Effect) -> bool {
        if effect == Effect::No {
            self.is_normal()
        } else {
            self.bits & Self::bit(effect) != 0
        }
    }

    /// `true` when the run had no abnormal effect (NO in Table 3).
    #[must_use]
    pub fn is_normal(self) -> bool {
        self.bits == 0
    }

    /// `true` when the run crashed the whole system.
    #[must_use]
    pub fn is_system_crash(self) -> bool {
        self.contains(Effect::Sc)
    }

    /// Iterates over the abnormal effects present, in Table 3 order.
    pub fn iter(self) -> impl Iterator<Item = Effect> {
        Effect::ALL
            .into_iter()
            .filter(move |e| e.is_abnormal() && self.contains(*e))
    }

    /// Number of abnormal effects present.
    #[must_use]
    pub fn len(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// `true` when no abnormal effects are present (alias of
    /// [`EffectSet::is_normal`], for collection-like reading).
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.is_normal()
    }

    /// Union of two effect sets.
    #[must_use]
    pub fn union(self, other: EffectSet) -> EffectSet {
        EffectSet {
            bits: self.bits | other.bits,
        }
    }
}

impl fmt::Display for EffectSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_normal() {
            return f.write_str("NO");
        }
        let mut first = true;
        for e in self.iter() {
            if !first {
                f.write_str("+")?;
            }
            f.write_str(e.abbreviation())?;
            first = false;
        }
        Ok(())
    }
}

/// Error parsing an [`EffectSet`] from its `Display` form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEffectError {
    /// The unrecognized token.
    pub token: String,
}

impl fmt::Display for ParseEffectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown effect abbreviation '{}'", self.token)
    }
}

impl std::error::Error for ParseEffectError {}

impl std::str::FromStr for EffectSet {
    type Err = ParseEffectError;

    /// Parses the `Display` form (`"NO"`, `"SDC+CE"`, …) back into a set,
    /// so persisted run records round-trip losslessly.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut set = EffectSet::new();
        for token in s.split('+') {
            let effect = Effect::ALL
                .into_iter()
                .find(|e| e.abbreviation() == token)
                .ok_or_else(|| ParseEffectError {
                    token: token.to_owned(),
                })?;
            set.insert(effect);
        }
        Ok(set)
    }
}

impl FromIterator<Effect> for EffectSet {
    fn from_iter<I: IntoIterator<Item = Effect>>(iter: I) -> Self {
        let mut s = EffectSet::new();
        for e in iter {
            s.insert(e);
        }
        s
    }
}

impl Extend<Effect> for EffectSet {
    fn extend<I: IntoIterator<Item = Effect>>(&mut self, iter: I) {
        for e in iter {
            self.insert(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_is_normal_operation() {
        let s = EffectSet::new();
        assert!(s.is_normal());
        assert!(s.contains(Effect::No));
        assert_eq!(s.to_string(), "NO");
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn multiple_effects_coexist() {
        // §3.4.1: a run can manifest both SDC and CE.
        let s: EffectSet = [Effect::Sdc, Effect::Ce].into_iter().collect();
        assert!(s.contains(Effect::Sdc));
        assert!(s.contains(Effect::Ce));
        assert!(!s.contains(Effect::Sc));
        assert!(!s.contains(Effect::No));
        assert_eq!(s.len(), 2);
        assert_eq!(s.to_string(), "SDC+CE");
    }

    #[test]
    fn inserting_no_is_identity() {
        let mut s = EffectSet::new();
        s.insert(Effect::No);
        assert!(s.is_normal());
    }

    #[test]
    fn union_combines() {
        let a = EffectSet::of(Effect::Sdc);
        let b = EffectSet::of(Effect::Sc);
        let u = a.union(b);
        assert!(u.contains(Effect::Sdc) && u.contains(Effect::Sc));
        assert!(u.is_system_crash());
    }

    #[test]
    fn iteration_order_is_stable() {
        let s: EffectSet = [Effect::Sc, Effect::Ce, Effect::Sdc].into_iter().collect();
        let order: Vec<Effect> = s.iter().collect();
        assert_eq!(order, vec![Effect::Sdc, Effect::Ce, Effect::Sc]);
    }

    #[test]
    fn display_round_trips_through_from_str() {
        let sets = [
            EffectSet::new(),
            EffectSet::of(Effect::Sc),
            [Effect::Sdc, Effect::Ce].into_iter().collect(),
            [Effect::Sdc, Effect::Ce, Effect::Ue, Effect::Ac, Effect::Sc]
                .into_iter()
                .collect(),
        ];
        for set in sets {
            let parsed: EffectSet = set.to_string().parse().expect("display form parses");
            assert_eq!(parsed, set, "{set}");
        }
        assert!("BOGUS".parse::<EffectSet>().is_err());
        assert!("SDC+".parse::<EffectSet>().is_err());
    }

    #[test]
    fn abbreviations_match_table3() {
        let abbrs: Vec<&str> = Effect::ALL.iter().map(|e| e.abbreviation()).collect();
        assert_eq!(abbrs, vec!["NO", "SDC", "CE", "UE", "AC", "SC"]);
        for e in Effect::ALL {
            assert!(!e.description().is_empty());
        }
    }
}
