//! CSV and text rendering — the "Final CSV Results" box of Figure 2.
//!
//! "At the end of the parsing step, all the collected results concerning
//! the characterization (according to Table 3) and the severity function of
//! each run are reported in CSV files."

use crate::effect::Effect;
use crate::regions::{CharacterizationResult, RegionKind};
use crate::runner::CampaignOutcome;
use std::fmt::Write as _;

/// Renders every classified run as CSV (one row per run).
#[must_use]
pub fn runs_csv(outcome: &CampaignOutcome) -> String {
    let mut out = String::new();
    out.push_str(
        "chip,program,dataset,core,pmd_mv,soc_mv,freq_mhz,iteration,effects,corrected,uncorrected,runtime_s,energy_j\n",
    );
    for r in &outcome.runs {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{:.6e},{:.6e}",
            outcome.spec,
            r.program,
            r.dataset,
            r.core.index(),
            r.pmd_mv.get(),
            r.soc_mv.get(),
            r.freq.get(),
            r.iteration,
            r.effects,
            r.corrected_errors,
            r.uncorrected_errors,
            r.runtime_s,
            r.energy_j,
        );
    }
    out
}

/// Renders the per-sweep region summary as CSV (Figure 4's data).
#[must_use]
pub fn regions_csv(result: &CharacterizationResult) -> String {
    let mut out = String::new();
    out.push_str(
        "chip,program,dataset,core,safe_vmin_mv,highest_crash_mv,average_vmin_mv,average_crash_mv,guardband_mv\n",
    );
    for s in &result.summaries {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{}",
            result.spec,
            s.program,
            s.dataset,
            s.core.index(),
            opt(s.safe_vmin.map(|v| v.get())),
            opt(s.highest_crash.map(|v| v.get())),
            optf(s.average_vmin),
            optf(s.average_crash),
            opt(s.guardband_mv().map(|g| g.get())),
        );
    }
    out
}

/// Renders the per-step severity table as CSV (Figure 5's data).
#[must_use]
pub fn severity_csv(result: &CharacterizationResult) -> String {
    let mut out = String::new();
    out.push_str("chip,program,dataset,core,mv,region,severity,no,sdc,ce,ue,ac,sc\n");
    for s in &result.summaries {
        for st in &s.steps {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{:.2},{},{},{},{},{},{}",
                result.spec,
                s.program,
                s.dataset,
                s.core.index(),
                st.mv,
                region_label(st.region),
                st.severity.value(),
                st.count(Effect::No),
                st.count(Effect::Sdc),
                st.count(Effect::Ce),
                st.count(Effect::Ue),
                st.count(Effect::Ac),
                st.count(Effect::Sc),
            );
        }
    }
    out
}

/// A Figure 4-style text panel for one benchmark: per core, the region band
/// as characters (`.` safe, `#` unsafe, `X` crash), highest voltage on the
/// left.
#[must_use]
pub fn region_band_text(result: &CharacterizationResult, program: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} — {program}", result.spec);
    for s in result.by_program(program) {
        let band: String = s
            .steps
            .iter()
            .map(|st| match st.region {
                RegionKind::Safe => '.',
                RegionKind::Unsafe => '#',
                RegionKind::Crash => 'X',
            })
            .collect();
        let top = s.steps.first().map_or(0, |st| st.mv);
        let bottom = s.steps.last().map_or(0, |st| st.mv);
        let _ = writeln!(
            out,
            "  core{} [{top}..{bottom}mV] {band}  vmin={} crash={}",
            s.core.index(),
            opt(s.safe_vmin.map(|v| v.get())),
            opt(s.highest_crash.map(|v| v.get())),
        );
    }
    out
}

fn region_label(r: RegionKind) -> &'static str {
    match r {
        RegionKind::Safe => "safe",
        RegionKind::Unsafe => "unsafe",
        RegionKind::Crash => "crash",
    }
}

fn opt<T: std::fmt::Display>(v: Option<T>) -> String {
    v.map_or_else(|| "-".to_owned(), |x| x.to_string())
}

fn optf(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_owned(), |x| format!("{x:.1}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CampaignConfig;
    use crate::runner::Campaign;
    use crate::severity::SeverityWeights;
    use margins_sim::{ChipSpec, CoreId, Corner, Millivolts};

    fn outcome() -> CampaignOutcome {
        let cfg = CampaignConfig::builder()
            .benchmarks(["bwaves"])
            .cores([CoreId::new(0)])
            .iterations(2)
            .start_voltage(Millivolts::new(915))
            .floor_voltage(Millivolts::new(885))
            .seed(4)
            .build()
            .unwrap();
        Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg).execute()
    }

    #[test]
    fn runs_csv_has_header_and_one_row_per_run() {
        let out = outcome();
        let csv = runs_csv(&out);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), out.runs.len() + 1);
        assert!(lines[0].starts_with("chip,program"));
        assert!(lines[1].contains("bwaves"));
        assert!(lines[1].contains("TTT#0"));
    }

    #[test]
    fn regions_and_severity_csvs_are_consistent() {
        let out = outcome();
        let result = crate::regions::analyze(&out, &SeverityWeights::paper());
        let regions = regions_csv(&result);
        assert_eq!(regions.lines().count(), result.summaries.len() + 1);
        let severity = severity_csv(&result);
        let step_rows: usize = result.summaries.iter().map(|s| s.steps.len()).sum();
        assert_eq!(severity.lines().count(), step_rows + 1);
        // Every severity row ends with per-effect counts that sum ≤ N * 6.
        for line in severity.lines().skip(1) {
            let cols: Vec<&str> = line.split(',').collect();
            assert_eq!(cols.len(), 13);
        }
    }

    #[test]
    fn region_band_text_renders_per_core_rows() {
        let out = outcome();
        let result = crate::regions::analyze(&out, &SeverityWeights::paper());
        let text = region_band_text(&result, "bwaves");
        assert!(text.contains("core0"));
        assert!(text.contains("915"));
    }
}
