//! Campaign configuration — the initialization phase of Figure 2.
//!
//! "During the initialization phase, a user can declare a benchmark list
//! with corresponding input datasets to run in any desirable
//! characterization setup. The characterization setup includes the voltage
//! and frequency (V/F) values on which the experiment will take place and
//! the cores where the benchmark will be run."

use crate::search::SearchStrategy;
use margins_sim::freq::MAX_FREQ;
use margins_sim::volt::{SOC_NOMINAL, VOLTAGE_STEP_MV};
use margins_sim::{CoreId, Enhancements, Megahertz, Millivolts};
use margins_workloads::Dataset;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which supply rail a campaign sweeps (§2.1: the PMD rail and the
/// PCP/SoC rail are independently regulated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SweptRail {
    /// The shared PMD (cores + L1 + L2) rail — the paper's experiments.
    #[default]
    Pmd,
    /// The PCP/SoC (L3, memory controllers, switch) rail — an extension
    /// experiment exposing the ECC-proxy behaviour of §4.4.
    PcpSoc,
}

/// A benchmark selection: name plus input dataset.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BenchmarkRef {
    /// Benchmark name (must exist in `margins_workloads::suite`).
    pub name: String,
    /// Input dataset.
    pub dataset: Dataset,
}

/// The full configuration of one characterization campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Benchmarks (with datasets) to characterize.
    pub benchmarks: Vec<BenchmarkRef>,
    /// Cores to characterize, one at a time.
    pub cores: Vec<CoreId>,
    /// Runs per (benchmark, core, voltage) configuration — the paper's ten
    /// campaign iterations.
    pub iterations: u32,
    /// First (highest) voltage of the downward sweep.
    pub start_voltage: Millivolts,
    /// Lowest voltage the sweep may reach.
    pub floor_voltage: Millivolts,
    /// Clock of the PMD hosting the core under characterization.
    pub target_frequency: Megahertz,
    /// Clock of every other PMD ("the framework sets the lowest frequency
    /// to all cores (300 MHz) but keeps the frequency high to the cores
    /// under characterization", §2.2.1).
    pub parked_frequency: Megahertz,
    /// Stop descending after this many consecutive all-SC voltage steps
    /// (0 = always sweep to the floor).
    pub crash_stop_steps: u32,
    /// Base seed individualizing the campaign's run randomness.
    pub seed: u64,
    /// Whether to retain each run's full PMU counter file (memory-heavy;
    /// profiling normally uses [`crate::runner::profile`] instead).
    pub collect_counters: bool,
    /// The rail the sweep scales (default: the PMD rail, as in the paper).
    pub rail: SweptRail,
    /// §6 hardware enhancements of the simulated chip revision under test.
    pub enhancements: Enhancements,
    /// How each item visits the voltage grid (default: the exhaustive
    /// top-down sweep of the paper's massive campaign).
    #[serde(default)]
    pub search: SearchStrategy,
    /// Whether traced executions also emit the deterministic work-accounting
    /// profile ([`margins_trace::TraceEvent::ProfileSample`] per sweep plus
    /// campaign-level [`margins_trace::TraceEvent::ProfilePhase`] rollups).
    #[serde(default)]
    pub profile: bool,
}

impl CampaignConfig {
    /// Starts building a configuration.
    #[must_use]
    pub fn builder() -> CampaignConfigBuilder {
        CampaignConfigBuilder::default()
    }

    /// Number of 5 mV steps in the sweep (inclusive of both ends).
    #[must_use]
    pub fn step_count(&self) -> u32 {
        (self.start_voltage.get() - self.floor_voltage.get()) / VOLTAGE_STEP_MV + 1
    }

    /// Iterator over the sweep voltages, descending.
    pub fn sweep_voltages(&self) -> impl Iterator<Item = Millivolts> + '_ {
        (0..self.step_count()).map(|k| self.start_voltage.down_steps(k))
    }

    /// Iterator over the campaign's work items in canonical order —
    /// benchmarks-major, exactly the order a serial execution visits them
    /// and the order the merged trace stream presents them. Yields
    /// `(benchmark index, core)` pairs; the enumeration position is the
    /// item's canonical index.
    pub fn work_items(&self) -> impl Iterator<Item = (usize, CoreId)> + '_ {
        self.benchmarks
            .iter()
            .enumerate()
            .flat_map(move |(bi, _)| self.cores.iter().map(move |c| (bi, *c)))
    }
}

/// Builder for [`CampaignConfig`].
#[derive(Debug, Clone)]
pub struct CampaignConfigBuilder {
    benchmarks: Vec<BenchmarkRef>,
    cores: Vec<CoreId>,
    iterations: u32,
    start_voltage: Millivolts,
    floor_voltage: Millivolts,
    target_frequency: Megahertz,
    parked_frequency: Megahertz,
    crash_stop_steps: u32,
    seed: u64,
    collect_counters: bool,
    rail: SweptRail,
    enhancements: Enhancements,
    search: SearchStrategy,
    profile: bool,
}

impl Default for CampaignConfigBuilder {
    fn default() -> Self {
        CampaignConfigBuilder {
            benchmarks: Vec::new(),
            cores: CoreId::all().collect(),
            iterations: 10,
            // The band [930, 820] covers every chip's safe/unsafe/crash
            // structure at 2.4 GHz with margin; the region above 930 mV is
            // verified safe by the nominal golden runs.
            start_voltage: Millivolts::new(930),
            floor_voltage: Millivolts::new(820),
            target_frequency: MAX_FREQ,
            parked_frequency: Megahertz::new(300),
            crash_stop_steps: 2,
            seed: 0xC0FF_EE00,
            collect_counters: false,
            rail: SweptRail::Pmd,
            enhancements: Enhancements::stock(),
            search: SearchStrategy::Exhaustive,
            profile: false,
        }
    }
}

impl CampaignConfigBuilder {
    /// Selects benchmarks by name, all with the `ref` dataset.
    #[must_use]
    pub fn benchmarks<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.benchmarks = names
            .into_iter()
            .map(|n| BenchmarkRef {
                name: n.into(),
                dataset: Dataset::Ref,
            })
            .collect();
        self
    }

    /// Selects explicit benchmark/dataset pairs.
    #[must_use]
    pub fn benchmark_refs<I>(mut self, refs: I) -> Self
    where
        I: IntoIterator<Item = BenchmarkRef>,
    {
        self.benchmarks = refs.into_iter().collect();
        self
    }

    /// Selects the cores to characterize (default: all eight).
    #[must_use]
    pub fn cores<I>(mut self, cores: I) -> Self
    where
        I: IntoIterator<Item = CoreId>,
    {
        self.cores = cores.into_iter().collect();
        self
    }

    /// Sets the per-configuration iteration count (default 10).
    #[must_use]
    pub fn iterations(mut self, n: u32) -> Self {
        self.iterations = n;
        self
    }

    /// Sets the sweep's starting (highest) voltage.
    #[must_use]
    pub fn start_voltage(mut self, v: Millivolts) -> Self {
        self.start_voltage = v;
        self
    }

    /// Sets the sweep's floor voltage.
    #[must_use]
    pub fn floor_voltage(mut self, v: Millivolts) -> Self {
        self.floor_voltage = v;
        self
    }

    /// Sets the clock of the PMD under characterization (default 2.4 GHz).
    #[must_use]
    pub fn target_frequency(mut self, f: Megahertz) -> Self {
        self.target_frequency = f;
        self
    }

    /// Sets the parked clock of the other PMDs (default 300 MHz).
    #[must_use]
    pub fn parked_frequency(mut self, f: Megahertz) -> Self {
        self.parked_frequency = f;
        self
    }

    /// Sets the all-SC early-stop threshold (0 disables).
    #[must_use]
    pub fn crash_stop_steps(mut self, n: u32) -> Self {
        self.crash_stop_steps = n;
        self
    }

    /// Sets the campaign seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Retains per-run counter files.
    #[must_use]
    pub fn collect_counters(mut self, yes: bool) -> Self {
        self.collect_counters = yes;
        self
    }

    /// Selects the rail to sweep (default: PMD).
    #[must_use]
    pub fn rail(mut self, rail: SweptRail) -> Self {
        self.rail = rail;
        self
    }

    /// Activates §6 hardware enhancements on the simulated chip revision.
    #[must_use]
    pub fn enhancements(mut self, enhancements: Enhancements) -> Self {
        self.enhancements = enhancements;
        self
    }

    /// Selects the Vmin search strategy (default: exhaustive sweep).
    #[must_use]
    pub fn search(mut self, strategy: SearchStrategy) -> Self {
        self.search = strategy;
        self
    }

    /// Enables the deterministic work-accounting profile on traced
    /// executions (default off: streams stay byte-identical to pre-profile
    /// campaigns).
    #[must_use]
    pub fn profile(mut self, yes: bool) -> Self {
        self.profile = yes;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the configuration is inconsistent
    /// (empty benchmark/core lists, inverted or off-step voltage range,
    /// invalid frequency, zero iterations).
    pub fn build(self) -> Result<CampaignConfig, ConfigError> {
        if self.benchmarks.is_empty() {
            return Err(ConfigError::NoBenchmarks);
        }
        if self.cores.is_empty() {
            return Err(ConfigError::NoCores);
        }
        if self.iterations == 0 {
            return Err(ConfigError::ZeroIterations);
        }
        if self.start_voltage < self.floor_voltage {
            return Err(ConfigError::InvertedRange {
                start: self.start_voltage,
                floor: self.floor_voltage,
            });
        }
        for v in [self.start_voltage, self.floor_voltage] {
            if v.get() % VOLTAGE_STEP_MV != 0 {
                return Err(ConfigError::OffStepVoltage(v));
            }
        }
        if self.rail == SweptRail::PcpSoc && self.start_voltage > SOC_NOMINAL {
            return Err(ConfigError::AboveRailNominal {
                requested: self.start_voltage,
                nominal: SOC_NOMINAL,
            });
        }
        for f in [self.target_frequency, self.parked_frequency] {
            if !f.is_valid_pmd_frequency() {
                return Err(ConfigError::InvalidFrequency(f));
            }
        }
        for b in &self.benchmarks {
            if margins_workloads::suite::by_name(&b.name, b.dataset).is_none() {
                return Err(ConfigError::UnknownBenchmark(b.name.clone()));
            }
        }
        Ok(CampaignConfig {
            benchmarks: self.benchmarks,
            cores: self.cores,
            iterations: self.iterations,
            start_voltage: self.start_voltage,
            floor_voltage: self.floor_voltage,
            target_frequency: self.target_frequency,
            parked_frequency: self.parked_frequency,
            crash_stop_steps: self.crash_stop_steps,
            seed: self.seed,
            collect_counters: self.collect_counters,
            rail: self.rail,
            enhancements: self.enhancements,
            search: self.search,
            profile: self.profile,
        })
    }
}

/// Validation error of a campaign configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The benchmark list is empty.
    NoBenchmarks,
    /// The core list is empty.
    NoCores,
    /// Zero iterations requested.
    ZeroIterations,
    /// The floor voltage exceeds the start voltage.
    InvertedRange {
        /// Configured start voltage.
        start: Millivolts,
        /// Configured floor voltage.
        floor: Millivolts,
    },
    /// A voltage is not a multiple of the 5 mV regulator step.
    OffStepVoltage(Millivolts),
    /// A frequency is not producible by the PMD clock generator.
    InvalidFrequency(Megahertz),
    /// A benchmark name/dataset pair does not exist in the suite.
    UnknownBenchmark(String),
    /// The sweep start exceeds the selected rail's nominal voltage.
    AboveRailNominal {
        /// Requested start voltage.
        requested: Millivolts,
        /// The rail's nominal voltage.
        nominal: Millivolts,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoBenchmarks => f.write_str("benchmark list is empty"),
            ConfigError::NoCores => f.write_str("core list is empty"),
            ConfigError::ZeroIterations => f.write_str("iterations must be at least 1"),
            ConfigError::InvertedRange { start, floor } => {
                write!(f, "floor voltage {floor} exceeds start voltage {start}")
            }
            ConfigError::OffStepVoltage(v) => {
                write!(f, "voltage {v} is not a multiple of the 5mV step")
            }
            ConfigError::InvalidFrequency(freq) => {
                write!(f, "frequency {freq} is not a valid PMD frequency")
            }
            ConfigError::UnknownBenchmark(n) => write!(f, "unknown benchmark '{n}'"),
            ConfigError::AboveRailNominal { requested, nominal } => write!(
                f,
                "sweep start {requested} exceeds the selected rail's nominal {nominal}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_a_full_figure4_style_config() {
        let c = CampaignConfig::builder()
            .benchmarks(["bwaves", "mcf"])
            .build()
            .unwrap();
        assert_eq!(c.iterations, 10);
        assert_eq!(c.cores.len(), 8);
        assert_eq!(c.target_frequency, MAX_FREQ);
        assert_eq!(c.parked_frequency.get(), 300);
        assert_eq!(c.step_count(), 23);
    }

    #[test]
    fn search_strategy_defaults_to_exhaustive_and_is_selectable() {
        let c = CampaignConfig::builder()
            .benchmarks(["namd"])
            .build()
            .unwrap();
        assert_eq!(c.search, SearchStrategy::Exhaustive);
        let c = CampaignConfig::builder()
            .benchmarks(["namd"])
            .search(SearchStrategy::Bisection)
            .build()
            .unwrap();
        assert_eq!(c.search, SearchStrategy::Bisection);
    }

    #[test]
    fn sweep_voltages_descend_in_5mv_steps() {
        let c = CampaignConfig::builder()
            .benchmarks(["namd"])
            .start_voltage(Millivolts::new(900))
            .floor_voltage(Millivolts::new(885))
            .build()
            .unwrap();
        let vs: Vec<u32> = c.sweep_voltages().map(Millivolts::get).collect();
        assert_eq!(vs, vec![900, 895, 890, 885]);
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let base = || CampaignConfig::builder().benchmarks(["namd"]);
        assert_eq!(
            CampaignConfig::builder().build().unwrap_err(),
            ConfigError::NoBenchmarks
        );
        assert_eq!(base().cores([]).build().unwrap_err(), ConfigError::NoCores);
        assert_eq!(
            base().iterations(0).build().unwrap_err(),
            ConfigError::ZeroIterations
        );
        assert!(matches!(
            base()
                .start_voltage(Millivolts::new(800))
                .floor_voltage(Millivolts::new(900))
                .build()
                .unwrap_err(),
            ConfigError::InvertedRange { .. }
        ));
        assert!(matches!(
            base()
                .start_voltage(Millivolts::new(902))
                .build()
                .unwrap_err(),
            ConfigError::OffStepVoltage(_)
        ));
        assert!(matches!(
            base()
                .target_frequency(Megahertz::new(1000))
                .build()
                .unwrap_err(),
            ConfigError::InvalidFrequency(_)
        ));
        assert!(matches!(
            CampaignConfig::builder()
                .benchmarks(["doom"])
                .build()
                .unwrap_err(),
            ConfigError::UnknownBenchmark(_)
        ));
    }

    #[test]
    fn train_dataset_validation_respects_suite() {
        let ok = CampaignConfig::builder()
            .benchmark_refs([BenchmarkRef {
                name: "bwaves".into(),
                dataset: Dataset::Train,
            }])
            .build();
        assert!(ok.is_ok());
        let bad = CampaignConfig::builder()
            .benchmark_refs([BenchmarkRef {
                name: "lbm".into(),
                dataset: Dataset::Train,
            }])
            .build();
        assert!(matches!(bad.unwrap_err(), ConfigError::UnknownBenchmark(_)));
    }
}
