//! The fleet scheduler: jobs, fair per-client queues, and the worker pool.
//!
//! A [`FleetService`] multiplexes characterization jobs from many clients
//! onto a bounded pool of worker threads. Scheduling is *fair FIFO per
//! client*: each client owns a FIFO queue of chip units, and workers deal
//! one unit per client in round-robin order, so a client submitting a
//! thousand-chip fleet cannot starve a client submitting three chips.
//!
//! Determinism is preserved by construction, not by scheduling luck:
//!
//! * every chip runs the stock [`Campaign::run`] pipeline, staging its
//!   sealed records in a private per-chip buffer;
//! * a job's merged stream is produced only after the whole job completes,
//!   by re-sealing the per-chip streams in canonical chip order
//!   ([`merge_streams`]) — which worker finished first never shows;
//! * the shared campaign cache keys entries by chip identity, so within a
//!   cold pass over distinct chips no lookup can observe a sibling's
//!   concurrent progress, and a warm pass replays every probe.
//!
//! Per-client isolation falls out of the job structure: results live in a
//! per-job vector indexed by canonical chip position, so one client's
//! records can never interleave into another client's stream.

use crate::proto::{FleetSpec, SpecError};
use margins_core::cache::SharedCampaignCache;
use margins_core::config::CampaignConfig;
use margins_core::exec::{CacheHandle, ExecContext, ExecError, ThreadPoolExecutor};
use margins_core::profile::PhaseTallies;
use margins_core::runner::Campaign;
use margins_sim::ChipSpec;
use margins_trace::{merge_streams, MemorySink, MetricsRegistry, Sink, TraceRecord};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard};

/// A job identifier, unique within one service instance.
pub type JobId = u64;

/// A job's progress, as reported to status requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// `"queued"`, `"running"`, `"done"` or `"cancelled"`.
    pub state: &'static str,
    /// Chips completed.
    pub done: u32,
    /// Chips total.
    pub total: u32,
}

/// A completed job's merged deterministic outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResults {
    /// Chips characterized.
    pub chips: u32,
    /// Classified runs over the whole fleet.
    pub runs: u64,
    /// Watchdog power cycles over the whole fleet.
    pub power_cycles: u64,
    /// Kernel ops executed on simulated boards over the whole fleet —
    /// 0 when every probe was answered from the shared cache.
    pub executed_ops: u64,
    /// The merged margins-trace JSONL stream, canonical chip order.
    pub trace: String,
    /// The OpenMetrics exposition of the merged stream.
    pub metrics: String,
}

/// How a waited-on job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// Every chip completed; the merged outputs.
    Done(FleetResults),
    /// The job was cancelled before completing.
    Cancelled,
    /// A campaign failed with a typed executor error.
    Failed(ExecError),
}

/// One chip's buffered campaign outputs, index-aligned with the job's
/// canonical chip list.
struct ChipOutcome {
    records: Vec<TraceRecord>,
    tallies: PhaseTallies,
    runs: u64,
    power_cycles: u32,
}

/// One schedulable unit: chip `chip` of job `job`.
#[derive(Debug, Clone, Copy)]
struct Unit {
    job: JobId,
    chip: usize,
}

struct Job {
    client: String,
    chips: Vec<ChipSpec>,
    config: CampaignConfig,
    results: Vec<Option<ChipOutcome>>,
    completed: u32,
    dispatched: u32,
    cancelled: bool,
    failed: Option<ExecError>,
    merged: Option<FleetResults>,
}

impl Job {
    fn total(&self) -> u32 {
        self.chips.len() as u32
    }

    fn finished(&self) -> bool {
        self.cancelled || self.failed.is_some() || self.completed == self.total()
    }
}

#[derive(Default)]
struct SchedState {
    next_job: JobId,
    jobs: BTreeMap<JobId, Job>,
    /// Per-client FIFO queues of pending units.
    queues: BTreeMap<String, VecDeque<Unit>>,
    /// Clients in admission order — the round-robin ring.
    ring: Vec<String>,
    /// Next ring position to serve.
    cursor: usize,
    stopping: bool,
}

impl SchedState {
    /// Pops the next unit fairly: one unit per client, round-robin over
    /// the admission ring, FIFO within each client.
    fn next_unit(&mut self) -> Option<Unit> {
        if self.ring.is_empty() {
            return None;
        }
        for probe in 0..self.ring.len() {
            let at = (self.cursor + probe) % self.ring.len();
            if let Some(queue) = self.queues.get_mut(&self.ring[at]) {
                if let Some(unit) = queue.pop_front() {
                    self.cursor = (at + 1) % self.ring.len();
                    return Some(unit);
                }
            }
        }
        None
    }
}

/// The fleet characterization service. See the module docs for the
/// scheduling and determinism contract.
pub struct FleetService {
    workers: usize,
    executor: ThreadPoolExecutor,
    cache: SharedCampaignCache,
    state: Mutex<SchedState>,
    /// Signalled when a unit is enqueued or the service stops.
    work: Condvar,
    /// Signalled when a job finishes, is cancelled, or fails.
    done: Condvar,
}

impl FleetService {
    /// A service with `workers` scheduler workers sharing `cache`.
    ///
    /// Worker validation reuses the executor contract: `0` is
    /// [`ExecError::ZeroThreads`], counts above
    /// [`ThreadPoolExecutor::MAX_THREADS`] are
    /// [`ExecError::TooManyThreads`].
    ///
    /// # Errors
    ///
    /// [`ExecError`] for an invalid worker count.
    pub fn new(workers: usize, cache: SharedCampaignCache) -> Result<FleetService, ExecError> {
        let executor = ThreadPoolExecutor::new(workers)?;
        Ok(FleetService {
            workers,
            executor,
            cache,
            state: Mutex::new(SchedState::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        })
    }

    /// The shared campaign cache all jobs read and feed.
    #[must_use]
    pub fn cache(&self) -> &SharedCampaignCache {
        &self.cache
    }

    /// The configured worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Locks the scheduler state, recovering from poisoning: state is
    /// only mutated in short sections that cannot unwind halfway, so a
    /// poisoned lock still holds a consistent value.
    fn lock_state(&self) -> MutexGuard<'_, SchedState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Runs `body` with the worker pool live, then stops the pool.
    ///
    /// Workers are scoped to this call: they start before `body` runs and
    /// are joined before it returns. When `body` returns, in-flight chips
    /// finish but queued units are abandoned — callers that need results
    /// must [`FleetService::wait`] for them inside `body`.
    pub fn run<R>(&self, body: impl FnOnce() -> R) -> R {
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| self.worker_loop());
            }
            let out = body();
            {
                let mut state = self.lock_state();
                state.stopping = true;
            }
            self.work.notify_all();
            out
        })
    }

    /// Submits a fleet for `client`; returns the job id and chip count.
    ///
    /// # Errors
    ///
    /// [`SpecError`] when the spec does not validate into a campaign.
    pub fn submit(&self, client: &str, spec: &FleetSpec) -> Result<(JobId, u32), SpecError> {
        let config = spec.campaign_config()?;
        let chips = spec.chip_specs();
        let total = chips.len() as u32;
        let job_id = {
            let mut state = self.lock_state();
            let job_id = state.next_job;
            state.next_job += 1;
            let results = chips.iter().map(|_| None).collect();
            state.jobs.insert(
                job_id,
                Job {
                    client: client.to_owned(),
                    chips,
                    config,
                    results,
                    completed: 0,
                    dispatched: 0,
                    cancelled: false,
                    failed: None,
                    merged: None,
                },
            );
            if !state.ring.iter().any(|c| c == client) {
                state.ring.push(client.to_owned());
            }
            let units = (0..total as usize).map(|chip| Unit { job: job_id, chip });
            state
                .queues
                .entry(client.to_owned())
                .or_default()
                .extend(units);
            job_id
        };
        self.work.notify_all();
        Ok((job_id, total))
    }

    /// A job's progress; `None` for an unknown (client, job) pair.
    #[must_use]
    pub fn status(&self, client: &str, job: JobId) -> Option<JobStatus> {
        let state = self.lock_state();
        let j = state.jobs.get(&job).filter(|j| j.client == client)?;
        let label = if j.cancelled {
            "cancelled"
        } else if j.completed == j.total() {
            "done"
        } else if j.dispatched > 0 {
            "running"
        } else {
            "queued"
        };
        Some(JobStatus {
            state: label,
            done: j.completed,
            total: j.total(),
        })
    }

    /// Cancels a job's queued chips; in-flight chips finish and are
    /// discarded with the job. Returns `false` for an unknown pair.
    pub fn cancel(&self, client: &str, job: JobId) -> bool {
        let mut state = self.lock_state();
        let Some(j) = state.jobs.get_mut(&job).filter(|j| j.client == client) else {
            return false;
        };
        if !j.finished() {
            j.cancelled = true;
        }
        let cancelled = j.cancelled;
        if let Some(queue) = state.queues.get_mut(client) {
            queue.retain(|u| u.job != job);
        }
        drop(state);
        self.done.notify_all();
        cancelled
    }

    /// Blocks until `job` finishes and returns how it ended; `None` for
    /// an unknown (client, job) pair.
    ///
    /// The merged outputs are computed once, on the first wait, and
    /// memoized for subsequent calls.
    #[must_use]
    pub fn wait(&self, client: &str, job: JobId) -> Option<JobOutcome> {
        let mut state = self.lock_state();
        loop {
            let j = state.jobs.get(&job).filter(|j| j.client == client)?;
            if j.cancelled {
                return Some(JobOutcome::Cancelled);
            }
            if let Some(e) = j.failed {
                return Some(JobOutcome::Failed(e));
            }
            if j.completed == j.total() {
                break;
            }
            state = self
                .done
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        // Merge outside the hot path but under the lock: results are
        // consumed exactly once and the merge is a pure function of them.
        let j = state.jobs.get_mut(&job)?;
        if j.merged.is_none() {
            let outcomes: Vec<ChipOutcome> = j
                .results
                .iter_mut()
                .map(|slot| slot.take().expect("completed job has every chip result"))
                .collect();
            j.merged = Some(merge_outcomes(j.total(), &outcomes));
        }
        j.merged.clone().map(JobOutcome::Done)
    }

    fn worker_loop(&self) {
        loop {
            let (unit, spec, config) = {
                let mut state = self.lock_state();
                loop {
                    if state.stopping {
                        return;
                    }
                    if let Some(unit) = state.next_unit() {
                        let Some(j) = state.jobs.get_mut(&unit.job) else {
                            continue;
                        };
                        j.dispatched += 1;
                        let spec = j.chips[unit.chip];
                        let config = j.config.clone();
                        break (unit, spec, config);
                    }
                    state = self
                        .work
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };

            let result = self.run_chip(spec, &config);

            let mut state = self.lock_state();
            if let Some(j) = state.jobs.get_mut(&unit.job) {
                match result {
                    Ok(outcome) => {
                        j.results[unit.chip] = Some(outcome);
                        j.completed += 1;
                    }
                    Err(e) => j.failed = Some(e),
                }
            }
            drop(state);
            self.done.notify_all();
        }
    }

    /// Characterizes one chip through the stock campaign pipeline,
    /// buffering its sealed records for the job-level canonical merge.
    fn run_chip(&self, spec: ChipSpec, config: &CampaignConfig) -> Result<ChipOutcome, ExecError> {
        let campaign = Campaign::new(spec, config.clone());
        let mut buffer = MemorySink::new();
        let mut tallies = PhaseTallies::new();
        let outcome = {
            let mut sinks: Vec<&mut dyn Sink> = vec![&mut buffer];
            campaign.run(
                &self.executor,
                ExecContext {
                    sinks: &mut sinks,
                    cache: Some(CacheHandle::Shared(&self.cache)),
                    priors: None,
                    metrics: None,
                    profile_out: Some(&mut tallies),
                },
            )?
        };
        Ok(ChipOutcome {
            records: buffer.records,
            tallies,
            runs: outcome.runs.len() as u64,
            power_cycles: outcome.watchdog_power_cycles,
        })
    }
}

/// Folds a job's per-chip outcomes (canonical chip order) into the merged
/// deliverables: one re-sealed JSONL stream, one metrics exposition, and
/// the fleet-level tallies.
fn merge_outcomes(chips: u32, outcomes: &[ChipOutcome]) -> FleetResults {
    let records = merge_streams(outcomes.iter().map(|o| o.records.as_slice()));
    let mut trace = String::new();
    for record in &records {
        match record.to_json_line() {
            Ok(line) => {
                trace.push_str(&line);
                trace.push('\n');
            }
            // Non-encodable records never leave `Campaign::run`; skipping
            // defensively keeps the merge total.
            Err(_) => continue,
        }
    }
    let mut registry = MetricsRegistry::new();
    for record in &records {
        registry.emit(record);
    }
    registry.finish();
    let mut tallies = PhaseTallies::new();
    for o in outcomes {
        tallies.merge(&o.tallies);
    }
    FleetResults {
        chips,
        runs: outcomes.iter().map(|o| o.runs).sum(),
        power_cycles: outcomes.iter().map(|o| u64::from(o.power_cycles)).sum(),
        executed_ops: tallies.executed_ops(),
        trace,
        metrics: registry.to_openmetrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::FleetSpec;
    use margins_core::search::SearchStrategy;
    use margins_sim::Corner;

    fn tiny_spec(chips: u32) -> FleetSpec {
        FleetSpec {
            corner: Corner::Ttt,
            first_serial: 10,
            chips,
            benchmarks: vec!["namd".into()],
            cores: vec![0],
            iterations: 1,
            start_mv: 890,
            floor_mv: 885,
            seed: 11,
            search: SearchStrategy::Exhaustive,
        }
    }

    #[test]
    fn worker_validation_reuses_executor_errors() {
        assert_eq!(
            FleetService::new(0, SharedCampaignCache::new()).err(),
            Some(ExecError::ZeroThreads)
        );
        assert!(matches!(
            FleetService::new(100_000, SharedCampaignCache::new()).err(),
            Some(ExecError::TooManyThreads { .. })
        ));
    }

    #[test]
    fn submit_status_wait_lifecycle() {
        let svc = FleetService::new(2, SharedCampaignCache::new()).expect("valid");
        let results = svc.run(|| {
            let (job, chips) = svc.submit("lab", &tiny_spec(2)).expect("valid spec");
            assert_eq!(chips, 2);
            let outcome = svc.wait("lab", job).expect("known job");
            let status = svc.status("lab", job).expect("known job");
            assert_eq!(status.state, "done");
            assert_eq!((status.done, status.total), (2, 2));
            // Unknown pairs are None, including a client/job mismatch.
            assert!(svc.status("intruder", job).is_none());
            assert!(svc.wait("lab", job + 1).is_none());
            match outcome {
                JobOutcome::Done(r) => r,
                other => panic!("expected Done, got {other:?}"),
            }
        });
        assert_eq!(results.chips, 2);
        assert!(results.runs > 0);
        assert!(results.executed_ops > 0, "cold pass must probe boards");
        assert!(results.trace.ends_with('\n'));
        assert!(results.metrics.ends_with("# EOF\n"));
    }

    #[test]
    fn cancel_drops_queued_chips_and_unblocks_waiters() {
        // Zero live workers inside `run` is impossible (validated), so
        // cancel a job before starting the pool: every unit is queued.
        let svc = FleetService::new(1, SharedCampaignCache::new()).expect("valid");
        let (job, _) = svc.submit("lab", &tiny_spec(4)).expect("valid spec");
        assert!(svc.cancel("lab", job));
        assert!(!svc.cancel("nobody", job));
        assert_eq!(svc.status("lab", job).map(|s| s.state), Some("cancelled"));
        let outcome = svc.run(|| svc.wait("lab", job));
        assert_eq!(outcome, Some(JobOutcome::Cancelled));
    }

    #[test]
    fn invalid_specs_are_rejected_before_scheduling() {
        let svc = FleetService::new(1, SharedCampaignCache::new()).expect("valid");
        let err = svc
            .submit("lab", &tiny_spec(0))
            .expect_err("zero chips must be rejected");
        assert_eq!(err, SpecError::NoChips);
    }
}
