//! The fleet scheduler: jobs, fair per-client queues, and the worker pool.
//!
//! A [`FleetService`] multiplexes characterization jobs from many clients
//! onto a bounded pool of worker threads. Scheduling is *fair FIFO per
//! client*: each client owns a FIFO queue of chip units, and workers deal
//! one unit per client in round-robin order, so a client submitting a
//! thousand-chip fleet cannot starve a client submitting three chips.
//!
//! Determinism is preserved by construction, not by scheduling luck:
//!
//! * every chip runs the stock [`Campaign::run`] pipeline, staging its
//!   sealed records in a private per-chip buffer;
//! * a job's merged stream is produced only after the whole job completes,
//!   by re-sealing the per-chip streams in canonical chip order
//!   ([`merge_streams`]) — which worker finished first never shows;
//! * the shared campaign cache keys entries by chip identity, so within a
//!   cold pass over distinct chips no lookup can observe a sibling's
//!   concurrent progress, and a warm pass replays every probe.
//!
//! Per-client isolation falls out of the job structure: results live in a
//! per-job vector indexed by canonical chip position, so one client's
//! records can never interleave into another client's stream.

use crate::proto::{FleetEvent, FleetSpec, HealthSnapshot, SpecError};
use margins_core::cache::SharedCampaignCache;
use margins_core::config::CampaignConfig;
use margins_core::exec::{CacheHandle, ExecContext, ExecError, ThreadPoolExecutor};
use margins_core::profile::PhaseTallies;
use margins_core::runner::Campaign;
use margins_sim::ChipSpec;
use margins_trace::{merge_streams, MemorySink, MetricsRegistry, Sink, TraceEvent, TraceRecord};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::{Condvar, Mutex, MutexGuard};

/// A job identifier, unique within one service instance.
pub type JobId = u64;

/// Default bound on a subscriber's event queue when the caller does not
/// pick one.
pub const DEFAULT_SUBSCRIBER_QUEUE: usize = 1024;

/// A job's progress, as reported to status requests.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// `"queued"`, `"running"`, `"done"`, `"failed"` or `"cancelled"`.
    pub state: &'static str,
    /// Chips completed.
    pub done: u32,
    /// Chips total.
    pub total: u32,
    /// Chip units ahead of this job's first pending unit in its client's
    /// FIFO queue (0 when nothing of the job is queued).
    pub queue_position: u32,
    /// Completion fraction, `done / total`.
    pub progress: f64,
}

/// A completed job's merged deterministic outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResults {
    /// Chips characterized.
    pub chips: u32,
    /// Classified runs over the whole fleet.
    pub runs: u64,
    /// Watchdog power cycles over the whole fleet.
    pub power_cycles: u64,
    /// Kernel ops executed on simulated boards over the whole fleet —
    /// 0 when every probe was answered from the shared cache.
    pub executed_ops: u64,
    /// The merged margins-trace JSONL stream, canonical chip order.
    pub trace: String,
    /// The OpenMetrics exposition of the merged stream.
    pub metrics: String,
}

/// How a waited-on job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// Every chip completed; the merged outputs.
    Done(FleetResults),
    /// The job was cancelled before completing.
    Cancelled,
    /// A campaign failed with a typed executor error.
    Failed(ExecError),
}

/// One chip's buffered campaign outputs, index-aligned with the job's
/// canonical chip list. Retained for the life of the job (not consumed by
/// the merge) so late subscribers can be caught up from it.
struct ChipOutcome {
    chip_id: String,
    records: Vec<TraceRecord>,
    /// The chip's own sealed JSONL stream (`records`, one line each).
    trace: String,
    tallies: PhaseTallies,
    runs: u64,
    power_cycles: u32,
    /// Binding Vmin over the chip's sweeps; `None` when even the highest
    /// probed step misbehaved (censored).
    vmin_mv: Option<u32>,
    severity_sum: f64,
    cache_hits: u64,
    cache_lookups: u64,
}

/// One schedulable unit: chip `chip` of job `job`.
#[derive(Debug, Clone, Copy)]
struct Unit {
    job: JobId,
    chip: usize,
}

struct Job {
    client: String,
    chips: Vec<ChipSpec>,
    config: CampaignConfig,
    results: Vec<Option<ChipOutcome>>,
    completed: u32,
    dispatched: u32,
    /// Whether the first chip was ever dispatched (drives the
    /// `job-started` event, including its catch-up replay).
    started: bool,
    cancelled: bool,
    failed: Option<ExecError>,
    merged: Option<FleetResults>,
}

impl Job {
    fn total(&self) -> u32 {
        self.chips.len() as u32
    }

    fn finished(&self) -> bool {
        self.cancelled || self.failed.is_some() || self.completed == self.total()
    }
}

/// One live event subscription: a bounded queue the scheduler pushes
/// into and the subscriber's pump drains. When the queue is full the
/// scheduler *counts* the drop and moves on — it never blocks — and the
/// next drain is prefixed with a `lagged` frame carrying the exact count.
struct SubState {
    job: JobId,
    capacity: usize,
    queue: VecDeque<FleetEvent>,
    dropped: u64,
}

/// Monotonic fleet-level counters. `deterministic` ones depend only on
/// the sequence of submitted specs (CI diffs them across same-seed
/// reruns); the subscriber-driven ones vary with observer behaviour and
/// are exposed as gauges.
#[derive(Default)]
struct FleetCounters {
    jobs_submitted: u64,
    jobs_completed: u64,
    jobs_cancelled: u64,
    jobs_failed: u64,
    chips_completed: u64,
    /// Counters replayed from every completed chip's record stream
    /// (runs, probes, cache hits/misses, …), keyed by registry name.
    stream: BTreeMap<String, u64>,
    /// Events enqueued to subscriber queues (observer-dependent).
    events_enqueued: u64,
    /// Events dropped on full subscriber queues (observer-dependent).
    lag_drops: u64,
}

#[derive(Default)]
struct SchedState {
    next_job: JobId,
    jobs: BTreeMap<JobId, Job>,
    /// Per-client FIFO queues of pending units.
    queues: BTreeMap<String, VecDeque<Unit>>,
    /// Clients in admission order — the round-robin ring.
    ring: Vec<String>,
    /// Next ring position to serve.
    cursor: usize,
    /// Workers currently characterizing a chip.
    busy: u32,
    /// Live subscriptions by id.
    subs: BTreeMap<u64, SubState>,
    next_sub: u64,
    counters: FleetCounters,
    stopping: bool,
}

impl SchedState {
    /// Pops the next unit fairly: one unit per client, round-robin over
    /// the admission ring, FIFO within each client.
    fn next_unit(&mut self) -> Option<Unit> {
        if self.ring.is_empty() {
            return None;
        }
        for probe in 0..self.ring.len() {
            let at = (self.cursor + probe) % self.ring.len();
            if let Some(queue) = self.queues.get_mut(&self.ring[at]) {
                if let Some(unit) = queue.pop_front() {
                    self.cursor = (at + 1) % self.ring.len();
                    return Some(unit);
                }
            }
        }
        None
    }

    /// Pushes `event` to every live subscription of its job, counting —
    /// never blocking on — full queues. Returns whether any queue grew
    /// (i.e. whether waiters need a wake-up).
    fn publish(&mut self, event: &FleetEvent) -> bool {
        let Some(job) = event.job() else {
            return false;
        };
        let SchedState { subs, counters, .. } = self;
        let mut delivered = false;
        for sub in subs.values_mut() {
            if sub.job != job {
                continue;
            }
            if sub.queue.len() >= sub.capacity {
                sub.dropped += 1;
                counters.lag_drops += 1;
            } else {
                sub.queue.push_back(event.clone());
                counters.events_enqueued += 1;
                delivered = true;
            }
        }
        delivered
    }
}

/// A handle to one live event subscription, returned by
/// [`FleetService::subscribe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subscription {
    id: u64,
}

/// The fleet characterization service. See the module docs for the
/// scheduling and determinism contract.
pub struct FleetService {
    workers: usize,
    executor: ThreadPoolExecutor,
    cache: SharedCampaignCache,
    state: Mutex<SchedState>,
    /// Signalled when a unit is enqueued or the service stops.
    work: Condvar,
    /// Signalled when a job finishes, is cancelled, or fails.
    done: Condvar,
    /// Signalled when a subscriber queue grows, a subscription closes,
    /// or the service stops.
    events: Condvar,
}

impl FleetService {
    /// A service with `workers` scheduler workers sharing `cache`.
    ///
    /// Worker validation reuses the executor contract: `0` is
    /// [`ExecError::ZeroThreads`], counts above
    /// [`ThreadPoolExecutor::MAX_THREADS`] are
    /// [`ExecError::TooManyThreads`].
    ///
    /// # Errors
    ///
    /// [`ExecError`] for an invalid worker count.
    pub fn new(workers: usize, cache: SharedCampaignCache) -> Result<FleetService, ExecError> {
        let executor = ThreadPoolExecutor::new(workers)?;
        Ok(FleetService {
            workers,
            executor,
            cache,
            state: Mutex::new(SchedState::default()),
            work: Condvar::new(),
            done: Condvar::new(),
            events: Condvar::new(),
        })
    }

    /// The shared campaign cache all jobs read and feed.
    #[must_use]
    pub fn cache(&self) -> &SharedCampaignCache {
        &self.cache
    }

    /// The configured worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Locks the scheduler state, recovering from poisoning: state is
    /// only mutated in short sections that cannot unwind halfway, so a
    /// poisoned lock still holds a consistent value.
    fn lock_state(&self) -> MutexGuard<'_, SchedState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Runs `body` with the worker pool live, then stops the pool.
    ///
    /// Workers are scoped to this call: they start before `body` runs and
    /// are joined before it returns. When `body` returns, in-flight chips
    /// finish but queued units are abandoned — callers that need results
    /// must [`FleetService::wait`] for them inside `body`.
    pub fn run<R>(&self, body: impl FnOnce() -> R) -> R {
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| self.worker_loop());
            }
            let out = body();
            {
                let mut state = self.lock_state();
                state.stopping = true;
            }
            self.work.notify_all();
            self.events.notify_all();
            out
        })
    }

    /// Submits a fleet for `client`; returns the job id and chip count.
    ///
    /// # Errors
    ///
    /// [`SpecError`] when the spec does not validate into a campaign.
    pub fn submit(&self, client: &str, spec: &FleetSpec) -> Result<(JobId, u32), SpecError> {
        let config = spec.campaign_config()?;
        let chips = spec.chip_specs();
        let total = chips.len() as u32;
        let job_id = {
            let mut state = self.lock_state();
            let job_id = state.next_job;
            state.next_job += 1;
            let results = chips.iter().map(|_| None).collect();
            state.jobs.insert(
                job_id,
                Job {
                    client: client.to_owned(),
                    chips,
                    config,
                    results,
                    completed: 0,
                    dispatched: 0,
                    started: false,
                    cancelled: false,
                    failed: None,
                    merged: None,
                },
            );
            state.counters.jobs_submitted += 1;
            if !state.ring.iter().any(|c| c == client) {
                state.ring.push(client.to_owned());
            }
            let units = (0..total as usize).map(|chip| Unit { job: job_id, chip });
            state
                .queues
                .entry(client.to_owned())
                .or_default()
                .extend(units);
            job_id
        };
        self.work.notify_all();
        Ok((job_id, total))
    }

    /// A job's progress; `None` for an unknown (client, job) pair.
    #[must_use]
    pub fn status(&self, client: &str, job: JobId) -> Option<JobStatus> {
        let state = self.lock_state();
        let j = state.jobs.get(&job).filter(|j| j.client == client)?;
        let label = if j.failed.is_some() {
            "failed"
        } else if j.cancelled {
            "cancelled"
        } else if j.completed == j.total() {
            "done"
        } else if j.dispatched > 0 {
            "running"
        } else {
            "queued"
        };
        let (done, total) = (j.completed, j.total());
        let queue_position = state
            .queues
            .get(client)
            .and_then(|q| q.iter().position(|u| u.job == job))
            .map_or(0, |p| p as u32);
        Some(JobStatus {
            state: label,
            done,
            total,
            queue_position,
            // total ≥ 1: zero-chip specs are rejected at submit.
            progress: f64::from(done) / f64::from(total),
        })
    }

    /// Cancels a job's queued chips; in-flight chips finish and are
    /// retained with the job as partial results. Returns `false` for an
    /// unknown pair. A *newly* cancelled job emits a terminal
    /// `job-cancelled` event with partial-results accounting.
    pub fn cancel(&self, client: &str, job: JobId) -> bool {
        let mut state = self.lock_state();
        let Some(j) = state.jobs.get_mut(&job).filter(|j| j.client == client) else {
            return false;
        };
        let newly = !j.finished();
        if newly {
            j.cancelled = true;
        }
        let cancelled = j.cancelled;
        let (done, total) = (j.completed, j.total());
        if let Some(queue) = state.queues.get_mut(client) {
            queue.retain(|u| u.job != job);
        }
        if newly {
            state.counters.jobs_cancelled += 1;
            if state.publish(&FleetEvent::JobCancelled { job, done, total }) {
                self.events.notify_all();
            }
        }
        drop(state);
        self.done.notify_all();
        cancelled
    }

    /// The chips completed / total accounting of a job, for cancel
    /// responses; `None` for an unknown (client, job) pair.
    #[must_use]
    pub fn accounting(&self, client: &str, job: JobId) -> Option<(u32, u32)> {
        let state = self.lock_state();
        let j = state.jobs.get(&job).filter(|j| j.client == client)?;
        Some((j.completed, j.total()))
    }

    /// Blocks until `job` finishes and returns how it ended; `None` for
    /// an unknown (client, job) pair.
    ///
    /// The merged outputs are computed once, on the first wait, and
    /// memoized for subsequent calls.
    #[must_use]
    pub fn wait(&self, client: &str, job: JobId) -> Option<JobOutcome> {
        let mut state = self.lock_state();
        loop {
            let j = state.jobs.get(&job).filter(|j| j.client == client)?;
            if j.cancelled {
                return Some(JobOutcome::Cancelled);
            }
            if let Some(e) = j.failed {
                return Some(JobOutcome::Failed(e));
            }
            if j.completed == j.total() {
                break;
            }
            state = self
                .done
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        // Merge outside the hot path but under the lock: the merge is a
        // pure function of the per-chip results, which stay retained with
        // the job so late subscribers can be caught up from them.
        let j = state.jobs.get_mut(&job)?;
        if j.merged.is_none() {
            let merged = {
                let outcomes: Vec<&ChipOutcome> = j
                    .results
                    .iter()
                    .map(|slot| slot.as_ref().expect("completed job has every chip result"))
                    .collect();
                merge_outcomes(j.total(), &outcomes)
            };
            j.merged = Some(merged);
        }
        j.merged.clone().map(JobOutcome::Done)
    }

    /// Opens a live event subscription on `(client, job)` with a bounded
    /// queue of `capacity` events; `None` for an unknown pair.
    ///
    /// The subscriber is first *caught up* from the job's retained state —
    /// `job-queued`, `job-started` if dispatched, one `chip-finished` per
    /// already-completed chip in ascending chip order, and the terminal
    /// event if the job already ended — so subscribing at any point yields
    /// a complete job history. Catch-up frames are enqueued in full; the
    /// capacity bounds *live* growth from then on.
    #[must_use]
    pub fn subscribe(&self, client: &str, job: JobId, capacity: usize) -> Option<Subscription> {
        let capacity = capacity.max(1);
        let mut state = self.lock_state();
        let j = state.jobs.get(&job).filter(|j| j.client == client)?;
        let mut backlog = VecDeque::new();
        backlog.push_back(FleetEvent::JobQueued {
            job,
            client: client.to_owned(),
            chips: j.total(),
        });
        if j.started {
            backlog.push_back(FleetEvent::JobStarted { job });
        }
        for (chip, slot) in j.results.iter().enumerate() {
            if let Some(outcome) = slot {
                backlog.push_back(chip_finished_event(job, chip as u32, outcome));
            }
        }
        if let Some(e) = &j.failed {
            backlog.push_back(FleetEvent::JobFailed {
                job,
                message: e.to_string(),
            });
        } else if j.cancelled {
            backlog.push_back(FleetEvent::JobCancelled {
                job,
                done: j.completed,
                total: j.total(),
            });
        } else if j.completed == j.total() {
            backlog.push_back(job_finished_event(job, j));
        }
        state.counters.events_enqueued += backlog.len() as u64;
        let id = state.next_sub;
        state.next_sub += 1;
        state.subs.insert(
            id,
            SubState {
                job,
                capacity,
                queue: backlog,
                dropped: 0,
            },
        );
        drop(state);
        self.events.notify_all();
        Some(Subscription { id })
    }

    /// Closes a subscription; pending undelivered events are discarded
    /// and any blocked [`FleetService::next_events`] call returns `None`.
    /// Returns `false` when the subscription was already closed.
    pub fn unsubscribe(&self, sub: &Subscription) -> bool {
        let removed = {
            let mut state = self.lock_state();
            state.subs.remove(&sub.id).is_some()
        };
        if removed {
            self.events.notify_all();
        }
        removed
    }

    /// Blocks until the subscription has events, then drains them all.
    /// Returns `None` once the subscription is closed (unsubscribed or
    /// service stopping) and drained.
    ///
    /// When events were dropped on the bounded queue since the last
    /// drain, the batch is prefixed with a [`FleetEvent::Lagged`] frame
    /// carrying the exact drop count.
    #[must_use]
    pub fn next_events(&self, sub: &Subscription) -> Option<Vec<FleetEvent>> {
        let mut state = self.lock_state();
        loop {
            let stopping = state.stopping;
            let s = state.subs.get_mut(&sub.id)?;
            if !s.queue.is_empty() || s.dropped > 0 {
                return Some(drain_sub(s));
            }
            if stopping {
                state.subs.remove(&sub.id);
                return None;
            }
            state = self
                .events
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Drains whatever the subscription holds right now, without
    /// blocking; empty when nothing is pending.
    #[must_use]
    pub fn try_events(&self, sub: &Subscription) -> Vec<FleetEvent> {
        let mut state = self.lock_state();
        match state.subs.get_mut(&sub.id) {
            Some(s) if !s.queue.is_empty() || s.dropped > 0 => drain_sub(s),
            _ => Vec::new(),
        }
    }

    /// A point-in-time snapshot of the daemon's runtime gauges.
    #[must_use]
    pub fn health(&self) -> HealthSnapshot {
        let state = self.lock_state();
        self.health_locked(&state)
    }

    fn health_locked(&self, state: &SchedState) -> HealthSnapshot {
        let mut h = HealthSnapshot {
            workers: self.workers as u32,
            busy: state.busy,
            queued_units: state.queues.values().map(|q| q.len() as u64).sum(),
            subscribers: state.subs.len() as u32,
            ..HealthSnapshot::default()
        };
        for j in state.jobs.values() {
            if j.failed.is_some() {
                h.jobs_failed += 1;
            } else if j.cancelled {
                h.jobs_cancelled += 1;
            } else if j.completed == j.total() {
                h.jobs_done += 1;
            } else if j.dispatched > 0 {
                h.jobs_running += 1;
            } else {
                h.jobs_queued += 1;
            }
        }
        h
    }

    /// The daemon's OpenMetrics text exposition.
    ///
    /// Two strictly separated sections, then `# EOF`:
    ///
    /// 1. **Deterministic counters** (`_total` samples) — fleet job/chip
    ///    counters plus every counter replayed from completed chips'
    ///    record streams. A pure function of the submitted specs: CI
    ///    diffs exactly the `_total` lines across same-seed reruns.
    /// 2. **Runtime gauges** — queue depth per client, workers
    ///    busy/idle, jobs in flight, subscribers, and the
    ///    observer-dependent event/lag tallies. These reflect wall-clock
    ///    scheduling luck and subscriber behaviour, never diffed.
    ///
    /// Histograms are deliberately excluded: their `_sum` samples add
    /// floats in completion order, which is not rerun-stable.
    #[must_use]
    pub fn openmetrics(&self) -> String {
        let state = self.lock_state();
        let health = self.health_locked(&state);
        let c = &state.counters;
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        for (name, value) in [
            ("fleet_jobs_submitted", c.jobs_submitted),
            ("fleet_jobs_completed", c.jobs_completed),
            ("fleet_jobs_cancelled", c.jobs_cancelled),
            ("fleet_jobs_failed", c.jobs_failed),
            ("fleet_chips_completed", c.chips_completed),
        ] {
            counters.insert(name.to_owned(), value);
        }
        for (name, value) in &c.stream {
            let name = name.strip_suffix("_total").unwrap_or(name);
            *counters.entry(name.to_owned()).or_insert(0) += value;
        }
        let mut out = String::new();
        for (name, value) in &counters {
            let _ = writeln!(out, "# TYPE voltmargin_{name} counter");
            let _ = writeln!(out, "voltmargin_{name}_total {value}");
        }
        let idle = u64::from(health.workers.saturating_sub(health.busy));
        let gauges: Vec<(&str, u64)> = vec![
            ("fleet_workers", u64::from(health.workers)),
            ("fleet_workers_busy", u64::from(health.busy)),
            ("fleet_workers_idle", idle),
            ("fleet_jobs_in_flight", u64::from(health.jobs_running)),
            ("fleet_queued_units", health.queued_units),
            ("fleet_subscribers", u64::from(health.subscribers)),
            ("fleet_events_enqueued", c.events_enqueued),
            ("fleet_subscriber_lag_drops", c.lag_drops),
        ];
        for (name, value) in gauges {
            let _ = writeln!(out, "# TYPE voltmargin_{name} gauge");
            let _ = writeln!(out, "voltmargin_{name} {value}");
        }
        let _ = writeln!(out, "# TYPE voltmargin_fleet_queue_depth gauge");
        for (client, queue) in &state.queues {
            let _ = writeln!(
                out,
                "voltmargin_fleet_queue_depth{{client=\"{}\"}} {}",
                escape_label(client),
                queue.len()
            );
        }
        out.push_str("# EOF\n");
        out
    }

    fn worker_loop(&self) {
        loop {
            let (unit, spec, config) = {
                let mut state = self.lock_state();
                loop {
                    if state.stopping {
                        return;
                    }
                    if let Some(unit) = state.next_unit() {
                        let Some(j) = state.jobs.get_mut(&unit.job) else {
                            continue;
                        };
                        j.dispatched += 1;
                        let newly_started = !j.started;
                        j.started = true;
                        let spec = j.chips[unit.chip];
                        let config = j.config.clone();
                        state.busy += 1;
                        let mut wake = false;
                        if newly_started {
                            wake |= state.publish(&FleetEvent::JobStarted { job: unit.job });
                        }
                        wake |= state.publish(&FleetEvent::ChipStarted {
                            job: unit.job,
                            chip: unit.chip as u32,
                            chip_id: spec.to_string(),
                        });
                        if wake {
                            self.events.notify_all();
                        }
                        break (unit, spec, config);
                    }
                    state = self
                        .work
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };

            let result = self.run_chip(unit, spec, &config);

            // Replay the chip's records through a throwaway registry
            // outside the lock; only the (order-independent) counter
            // folds touch shared state.
            let chip_counters = result.as_ref().ok().map(|outcome| {
                let mut registry = MetricsRegistry::new();
                for record in &outcome.records {
                    registry.emit(record);
                }
                registry.finish();
                registry.counters().clone()
            });

            let mut state = self.lock_state();
            state.busy = state.busy.saturating_sub(1);
            // Stage the bookkeeping while `j` is borrowed, then fold the
            // counters and publish once the borrow ends.
            let mut events: Vec<FleetEvent> = Vec::new();
            let mut chip_done = false;
            let mut job_done = false;
            let mut job_failed = false;
            if let Some(j) = state.jobs.get_mut(&unit.job) {
                match result {
                    Ok(outcome) => {
                        events.push(chip_finished_event(unit.job, unit.chip as u32, &outcome));
                        j.results[unit.chip] = Some(outcome);
                        j.completed += 1;
                        chip_done = true;
                        job_done = j.completed == j.total();
                        if job_done {
                            events.push(job_finished_event(unit.job, j));
                        }
                    }
                    Err(e) => {
                        job_failed = j.failed.is_none() && !j.finished();
                        j.failed = Some(e);
                        if job_failed {
                            events.push(FleetEvent::JobFailed {
                                job: unit.job,
                                message: e.to_string(),
                            });
                        }
                    }
                }
            }
            if chip_done {
                state.counters.chips_completed += 1;
                if let Some(counters) = chip_counters {
                    for (name, value) in counters {
                        *state.counters.stream.entry(name).or_insert(0) += value;
                    }
                }
            }
            if job_done {
                state.counters.jobs_completed += 1;
            }
            if job_failed {
                state.counters.jobs_failed += 1;
            }
            let mut wake = false;
            for event in &events {
                wake |= state.publish(event);
            }
            drop(state);
            if wake {
                self.events.notify_all();
            }
            self.done.notify_all();
        }
    }

    /// Characterizes one chip through the stock campaign pipeline,
    /// buffering its sealed records for the job-level canonical merge.
    ///
    /// A tap sink forwards `SweepFinished` records to subscribers as
    /// `sweep-progress` events; events flow *out of* the campaign only,
    /// so subscriber presence can never perturb the deterministic
    /// outcome.
    fn run_chip(
        &self,
        unit: Unit,
        spec: ChipSpec,
        config: &CampaignConfig,
    ) -> Result<ChipOutcome, ExecError> {
        let campaign = Campaign::new(spec, config.clone());
        let mut buffer = MemorySink::new();
        let mut tap = SweepProgressTap {
            service: self,
            job: unit.job,
            chip: unit.chip as u32,
        };
        let mut tallies = PhaseTallies::new();
        let outcome = {
            let mut sinks: Vec<&mut dyn Sink> = vec![&mut buffer, &mut tap];
            campaign.run(
                &self.executor,
                ExecContext {
                    sinks: &mut sinks,
                    cache: Some(CacheHandle::Shared(&self.cache)),
                    priors: None,
                    metrics: None,
                    profile_out: Some(&mut tallies),
                },
            )?
        };
        let stats = ChipStats::fold(&buffer.records);
        let mut trace = String::new();
        for record in &buffer.records {
            if let Ok(line) = record.to_json_line() {
                trace.push_str(&line);
                trace.push('\n');
            }
        }
        Ok(ChipOutcome {
            chip_id: spec.to_string(),
            records: buffer.records,
            trace,
            tallies,
            runs: outcome.runs.len() as u64,
            power_cycles: outcome.watchdog_power_cycles,
            vmin_mv: stats.vmin_mv,
            severity_sum: stats.severity_sum,
            cache_hits: stats.cache_hits,
            cache_lookups: stats.cache_lookups,
        })
    }
}

/// A [`Sink`] that forwards each `SweepFinished` record of an in-flight
/// chip to the job's subscribers as a `sweep-progress` event. Strictly
/// one-way: nothing a subscriber does feeds back into the campaign.
struct SweepProgressTap<'a> {
    service: &'a FleetService,
    job: JobId,
    chip: u32,
}

impl Sink for SweepProgressTap<'_> {
    fn emit(&mut self, record: &TraceRecord) {
        let TraceEvent::SweepFinished {
            program,
            dataset,
            core,
            runs,
        } = &record.event
        else {
            return;
        };
        let event = FleetEvent::SweepProgress {
            job: self.job,
            chip: self.chip,
            program: program.clone(),
            dataset: dataset.clone(),
            core: *core,
            runs: u64::from(*runs),
        };
        let wake = {
            let mut state = self.service.lock_state();
            state.publish(&event)
        };
        if wake {
            self.service.events.notify_all();
        }
    }
}

/// Per-chip observability stats derived from the chip's own sealed
/// record stream — the same bytes the artifacts are built from.
struct ChipStats {
    vmin_mv: Option<u32>,
    severity_sum: f64,
    cache_hits: u64,
    cache_lookups: u64,
}

impl ChipStats {
    fn fold(records: &[TraceRecord]) -> ChipStats {
        let mut severity_sum = 0.0;
        let mut cache_hits = 0u64;
        let mut cache_lookups = 0u64;
        // Per (program, dataset, core) sweep: was *every* run at each
        // probed step normal?
        let mut sweeps: BTreeMap<(String, String, u8), BTreeMap<u32, bool>> = BTreeMap::new();
        for record in records {
            match &record.event {
                TraceEvent::RunCompleted {
                    program,
                    dataset,
                    core,
                    mv,
                    effects,
                    severity,
                    ..
                } => {
                    severity_sum += severity;
                    let key = (program.clone(), dataset.clone(), *core);
                    let all_normal = sweeps.entry(key).or_default().entry(*mv).or_insert(true);
                    if effects != "NO" {
                        *all_normal = false;
                    }
                }
                TraceEvent::CacheLookup { hit, .. } => {
                    cache_lookups += 1;
                    if *hit {
                        cache_hits += 1;
                    }
                }
                _ => {}
            }
        }
        ChipStats {
            vmin_mv: binding_vmin(&sweeps),
            severity_sum,
            cache_hits,
            cache_lookups,
        }
    }
}

/// The chip's binding Vmin: per sweep, the lowest step of the unbroken
/// all-normal prefix walking down from the highest probed step; over the
/// chip, the *maximum* of the sweep Vmins (the sweep that gives up
/// first binds the chip). `None` when any sweep misbehaves at its
/// highest step (censored — no safe undervolt was observed).
fn binding_vmin(sweeps: &BTreeMap<(String, String, u8), BTreeMap<u32, bool>>) -> Option<u32> {
    let mut binding: Option<u32> = None;
    for steps in sweeps.values() {
        let mut sweep_vmin: Option<u32> = None;
        for (&mv, &all_normal) in steps.iter().rev() {
            if all_normal {
                sweep_vmin = Some(mv);
            } else {
                break;
            }
        }
        let mv = sweep_vmin?;
        binding = Some(binding.map_or(mv, |b| b.max(mv)));
    }
    binding
}

/// The `chip-finished` event for a completed chip, also used to catch up
/// late subscribers from retained results.
fn chip_finished_event(job: JobId, chip: u32, outcome: &ChipOutcome) -> FleetEvent {
    FleetEvent::ChipFinished {
        job,
        chip,
        chip_id: outcome.chip_id.clone(),
        runs: outcome.runs,
        power_cycles: u64::from(outcome.power_cycles),
        vmin_mv: outcome.vmin_mv,
        severity_sum: outcome.severity_sum,
        cache_hits: outcome.cache_hits,
        cache_lookups: outcome.cache_lookups,
        trace: outcome.trace.clone(),
    }
}

/// The terminal `job-finished` event, totalled over the job's retained
/// per-chip results in canonical chip order.
fn job_finished_event(job: JobId, j: &Job) -> FleetEvent {
    let mut runs = 0u64;
    let mut power_cycles = 0u64;
    for outcome in j.results.iter().flatten() {
        runs += outcome.runs;
        power_cycles += u64::from(outcome.power_cycles);
    }
    FleetEvent::JobFinished {
        job,
        chips: j.total(),
        runs,
        power_cycles,
    }
}

/// Drains a subscription's queue, prefixing a `lagged` frame carrying
/// the exact drop count when the bounded queue overflowed since the
/// last drain.
fn drain_sub(s: &mut SubState) -> Vec<FleetEvent> {
    let mut out = Vec::with_capacity(s.queue.len() + 1);
    if s.dropped > 0 {
        out.push(FleetEvent::Lagged {
            job: s.job,
            dropped: s.dropped,
        });
        s.dropped = 0;
    }
    out.extend(s.queue.drain(..));
    out
}

/// Escapes a string for use inside an OpenMetrics label value.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Folds a job's per-chip outcomes (canonical chip order) into the merged
/// deliverables: one re-sealed JSONL stream, one metrics exposition, and
/// the fleet-level tallies.
fn merge_outcomes(chips: u32, outcomes: &[&ChipOutcome]) -> FleetResults {
    let records = merge_streams(outcomes.iter().map(|o| o.records.as_slice()));
    let mut trace = String::new();
    for record in &records {
        match record.to_json_line() {
            Ok(line) => {
                trace.push_str(&line);
                trace.push('\n');
            }
            // Non-encodable records never leave `Campaign::run`; skipping
            // defensively keeps the merge total.
            Err(_) => continue,
        }
    }
    let mut registry = MetricsRegistry::new();
    for record in &records {
        registry.emit(record);
    }
    registry.finish();
    let mut tallies = PhaseTallies::new();
    for o in outcomes {
        tallies.merge(&o.tallies);
    }
    FleetResults {
        chips,
        runs: outcomes.iter().map(|o| o.runs).sum(),
        power_cycles: outcomes.iter().map(|o| u64::from(o.power_cycles)).sum(),
        executed_ops: tallies.executed_ops(),
        trace,
        metrics: registry.to_openmetrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::FleetSpec;
    use margins_core::search::SearchStrategy;
    use margins_sim::Corner;

    fn tiny_spec(chips: u32) -> FleetSpec {
        FleetSpec {
            corner: Corner::Ttt,
            first_serial: 10,
            chips,
            benchmarks: vec!["namd".into()],
            cores: vec![0],
            iterations: 1,
            start_mv: 890,
            floor_mv: 885,
            seed: 11,
            search: SearchStrategy::Exhaustive,
        }
    }

    #[test]
    fn worker_validation_reuses_executor_errors() {
        assert_eq!(
            FleetService::new(0, SharedCampaignCache::new()).err(),
            Some(ExecError::ZeroThreads)
        );
        assert!(matches!(
            FleetService::new(100_000, SharedCampaignCache::new()).err(),
            Some(ExecError::TooManyThreads { .. })
        ));
    }

    #[test]
    fn submit_status_wait_lifecycle() {
        let svc = FleetService::new(2, SharedCampaignCache::new()).expect("valid");
        let results = svc.run(|| {
            let (job, chips) = svc.submit("lab", &tiny_spec(2)).expect("valid spec");
            assert_eq!(chips, 2);
            let outcome = svc.wait("lab", job).expect("known job");
            let status = svc.status("lab", job).expect("known job");
            assert_eq!(status.state, "done");
            assert_eq!((status.done, status.total), (2, 2));
            // Unknown pairs are None, including a client/job mismatch.
            assert!(svc.status("intruder", job).is_none());
            assert!(svc.wait("lab", job + 1).is_none());
            match outcome {
                JobOutcome::Done(r) => r,
                other => panic!("expected Done, got {other:?}"),
            }
        });
        assert_eq!(results.chips, 2);
        assert!(results.runs > 0);
        assert!(results.executed_ops > 0, "cold pass must probe boards");
        assert!(results.trace.ends_with('\n'));
        assert!(results.metrics.ends_with("# EOF\n"));
    }

    #[test]
    fn cancel_drops_queued_chips_and_unblocks_waiters() {
        // Zero live workers inside `run` is impossible (validated), so
        // cancel a job before starting the pool: every unit is queued.
        let svc = FleetService::new(1, SharedCampaignCache::new()).expect("valid");
        let (job, _) = svc.submit("lab", &tiny_spec(4)).expect("valid spec");
        assert!(svc.cancel("lab", job));
        assert!(!svc.cancel("nobody", job));
        assert_eq!(svc.status("lab", job).map(|s| s.state), Some("cancelled"));
        let outcome = svc.run(|| svc.wait("lab", job));
        assert_eq!(outcome, Some(JobOutcome::Cancelled));
    }

    #[test]
    fn invalid_specs_are_rejected_before_scheduling() {
        let svc = FleetService::new(1, SharedCampaignCache::new()).expect("valid");
        let err = svc
            .submit("lab", &tiny_spec(0))
            .expect_err("zero chips must be rejected");
        assert_eq!(err, SpecError::NoChips);
    }
}
