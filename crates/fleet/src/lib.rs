//! `margins-fleet` — fleet-scale characterization as a service.
//!
//! The paper characterizes three physical chips by hand; a deployment
//! cares about *fleets*: thousands of chips whose guardbands vary part to
//! part, characterized continuously by a long-running service. This crate
//! is that service, built so the scale-out changes nothing about the
//! results:
//!
//! * [`proto`] — the line-delimited JSON wire protocol
//!   (submit / status / cancel / results / shutdown, plus the
//!   observability kinds: subscribe / unsubscribe / health / metrics and
//!   server-pushed [`FleetEvent`](proto::FleetEvent) frames), encoded on
//!   the deterministic `margins-trace` JSON layer and decoded totally:
//!   corrupt or truncated frames and unknown kinds become typed
//!   [`ProtoError`](proto::ProtoError)s, never panics.
//! * [`service`] — the scheduler: a bounded worker pool fed by fair
//!   FIFO-per-client queues, every chip running the stock
//!   `Campaign::run` pipeline against one shared campaign cache, and
//!   every job's stream merged in canonical chip order after the job
//!   completes. Subscribers observe jobs through bounded event queues
//!   with exact drop accounting; observation never perturbs outcomes.
//! * [`daemon`] — the TCP front-end behind `voltmargin serve`.
//!
//! The determinism contract — a fleet run of N chips is byte-identical to
//! N sequential `voltmargin characterize` runs merged in canonical chip
//! order, per-client streams never interleave, and a warm rerun executes
//! zero machine probes — is proven by `tests/fleet_conformance.rs` in the
//! workspace root rather than asserted here.

pub mod daemon;
pub mod proto;
pub mod service;

pub use daemon::{serve, ServeConfig, ServeError};
pub use proto::{
    FleetEvent, FleetSpec, HealthSnapshot, ProtoError, Request, Response, SpecError, PROTO_VERSION,
};
pub use service::{
    FleetResults, FleetService, JobOutcome, JobStatus, Subscription, DEFAULT_SUBSCRIBER_QUEUE,
};
