//! The fleet wire protocol: line-delimited JSON over any byte stream.
//!
//! Every frame is exactly one line holding one JSON object with a `"kind"`
//! discriminator. Encoding rides the deterministic
//! [`margins_trace::json`] layer — sorted object keys, raw number tokens,
//! no whitespace — so a [`Request`]/[`Response`] value has exactly one
//! wire representation and round-trips losslessly.
//!
//! Decoding is total: malformed JSON, wrong shapes, missing or mistyped
//! fields, and unknown `kind`s all map to a typed [`ProtoError`] — the
//! daemon never panics on untrusted bytes, and unknown kinds are rejected
//! with the protocol version attached so old clients can diagnose a skew.

use margins_core::config::{CampaignConfig, ConfigError};
use margins_core::search::SearchStrategy;
use margins_sim::topology::NUM_CORES;
use margins_sim::{ChipSpec, CoreId, Corner, Millivolts};
use margins_trace::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt;

/// The wire protocol version spoken by this build. Carried on every
/// [`Response::Error`] frame so version-skewed peers can tell a typo from
/// a protocol gap.
///
/// Version 2 added the observability plane: `subscribe`/`unsubscribe`/
/// `health`/`metrics` requests, server-pushed `event` frames
/// ([`FleetEvent`]), queue position and progress on `status`, and
/// partial-results accounting on `cancelled`.
pub const PROTO_VERSION: u32 = 2;

/// Largest chip count a single submit may request. Far above "thousands
/// of simulated chips"; the bound turns an absurd request into a typed
/// rejection instead of an allocation storm.
pub const MAX_CHIPS: u32 = 65_536;

/// What one fleet characterization request sweeps: a contiguous serial
/// range of chips at one process corner, all running the same campaign
/// grid on the PMD rail.
///
/// Canonical chip order is ascending serial — the order results are
/// merged in, independent of any scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSpec {
    /// Process corner every chip in the fleet was fabbed at.
    pub corner: Corner,
    /// Serial number of the first chip.
    pub first_serial: u64,
    /// Number of chips (serials `first_serial..first_serial + chips`).
    pub chips: u32,
    /// Benchmark names of the campaign grid.
    pub benchmarks: Vec<String>,
    /// Target core indices.
    pub cores: Vec<u8>,
    /// Iterations per voltage step.
    pub iterations: u32,
    /// Sweep start voltage, millivolts.
    pub start_mv: u32,
    /// Sweep floor voltage, millivolts.
    pub floor_mv: u32,
    /// Campaign seed.
    pub seed: u64,
    /// Vmin search strategy.
    pub search: SearchStrategy,
}

impl FleetSpec {
    /// The fleet's chips in canonical order (ascending serial).
    #[must_use]
    pub fn chip_specs(&self) -> Vec<ChipSpec> {
        (0..u64::from(self.chips))
            .map(|i| ChipSpec::new(self.corner, self.first_serial + i))
            .collect()
    }

    /// Validates the spec into the campaign configuration every chip runs.
    ///
    /// # Errors
    ///
    /// [`SpecError::NoChips`]/[`SpecError::TooManyChips`] for a bad fleet
    /// shape, [`SpecError::BadCore`] for an out-of-range core, and
    /// [`SpecError::Config`] when the campaign grid itself is invalid.
    pub fn campaign_config(&self) -> Result<CampaignConfig, SpecError> {
        if self.chips == 0 {
            return Err(SpecError::NoChips);
        }
        if self.chips > MAX_CHIPS {
            return Err(SpecError::TooManyChips {
                requested: self.chips,
                max: MAX_CHIPS,
            });
        }
        let cores = self
            .cores
            .iter()
            .map(|&i| {
                if usize::from(i) < NUM_CORES {
                    Ok(CoreId::new(i))
                } else {
                    Err(SpecError::BadCore { core: i })
                }
            })
            .collect::<Result<Vec<CoreId>, SpecError>>()?;
        CampaignConfig::builder()
            .benchmarks(self.benchmarks.clone())
            .cores(cores)
            .iterations(self.iterations)
            .start_voltage(Millivolts::new(self.start_mv))
            .floor_voltage(Millivolts::new(self.floor_mv))
            .seed(self.seed)
            .search(self.search)
            .build()
            .map_err(SpecError::Config)
    }
}

/// A fleet spec that cannot be turned into campaigns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The fleet has zero chips.
    NoChips,
    /// The fleet exceeds [`MAX_CHIPS`].
    TooManyChips {
        /// Chips requested.
        requested: u32,
        /// The supported maximum.
        max: u32,
    },
    /// A core index beyond the simulated topology.
    BadCore {
        /// The offending index.
        core: u8,
    },
    /// The campaign grid is invalid.
    Config(ConfigError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NoChips => f.write_str("fleet needs at least one chip"),
            SpecError::TooManyChips { requested, max } => {
                write!(f, "fleet of {requested} chips exceeds the maximum of {max}")
            }
            SpecError::BadCore { core } => {
                write!(f, "core {core} is outside the simulated topology")
            }
            SpecError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// One client→daemon frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a fleet for characterization.
    Submit {
        /// Client name owning the resulting job and its streams.
        client: String,
        /// What to characterize.
        spec: FleetSpec,
    },
    /// Ask for a job's progress.
    Status {
        /// Owning client.
        client: String,
        /// Job id from [`Response::Submitted`].
        job: u64,
    },
    /// Cancel a job's queued chips.
    Cancel {
        /// Owning client.
        client: String,
        /// Job id.
        job: u64,
    },
    /// Block until a job completes and fetch its merged streams.
    Results {
        /// Owning client.
        client: String,
        /// Job id.
        job: u64,
    },
    /// Start streaming a job's live event frames over this connection.
    Subscribe {
        /// Owning client.
        client: String,
        /// Job id.
        job: u64,
    },
    /// Stop streaming a job's event frames over this connection.
    Unsubscribe {
        /// Owning client.
        client: String,
        /// Job id.
        job: u64,
    },
    /// Ask for a daemon liveness snapshot (runtime gauges).
    Health,
    /// Ask for the daemon's OpenMetrics text exposition.
    Metrics,
    /// Stop the daemon after in-flight chips finish.
    Shutdown,
}

/// A point-in-time snapshot of the daemon's runtime gauges, answered to
/// [`Request::Health`]. Every field is a *gauge* — it reflects scheduling
/// luck at the instant of the request and is deliberately kept out of the
/// deterministic counter section of the metrics exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthSnapshot {
    /// Configured scheduler worker threads.
    pub workers: u32,
    /// Workers currently characterizing a chip.
    pub busy: u32,
    /// Chip units waiting in per-client queues.
    pub queued_units: u64,
    /// Jobs admitted but not yet dispatched.
    pub jobs_queued: u32,
    /// Jobs with at least one dispatched chip and work remaining.
    pub jobs_running: u32,
    /// Jobs whose every chip completed.
    pub jobs_done: u32,
    /// Jobs cancelled before completing.
    pub jobs_cancelled: u32,
    /// Jobs that failed with an executor error.
    pub jobs_failed: u32,
    /// Live event subscriptions.
    pub subscribers: u32,
}

/// One server-pushed telemetry frame (`"kind":"event"` on the wire, with
/// a `"what"` sub-discriminator).
///
/// Event payloads are derived from the same deterministic `TraceEvent`
/// stream the job's artifacts are built from: every
/// [`FleetEvent::ChipFinished`] carries that chip's complete sealed JSONL
/// stream, so a fully received subscription re-sealed through
/// `merge_streams` in ascending chip order is byte-identical to the job's
/// merged trace artifact.
///
/// Unknown `what` tokens decode to [`FleetEvent::Unknown`] rather than a
/// [`ProtoError`]: a version-aware client skips event kinds it does not
/// speak while still hard-rejecting unknown top-level frame kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetEvent {
    /// A job was admitted to the scheduler.
    JobQueued {
        /// Job id.
        job: u64,
        /// Owning client.
        client: String,
        /// Chips the job will characterize.
        chips: u32,
    },
    /// The first chip of a job was dispatched to a worker.
    JobStarted {
        /// Job id.
        job: u64,
    },
    /// A chip was dispatched to a worker.
    ChipStarted {
        /// Job id.
        job: u64,
        /// Canonical chip index within the job.
        chip: u32,
        /// Chip identity, e.g. `TTT#40`.
        chip_id: String,
    },
    /// A (benchmark, core) sweep of a chip finished.
    SweepProgress {
        /// Job id.
        job: u64,
        /// Canonical chip index within the job.
        chip: u32,
        /// Benchmark name.
        program: String,
        /// Input dataset label.
        dataset: String,
        /// Target core index.
        core: u8,
        /// Classified runs the sweep produced.
        runs: u64,
    },
    /// A chip completed; carries the chip's sealed per-chip trace.
    ChipFinished {
        /// Job id.
        job: u64,
        /// Canonical chip index within the job.
        chip: u32,
        /// Chip identity, e.g. `TTT#40`.
        chip_id: String,
        /// Classified runs on this chip.
        runs: u64,
        /// Watchdog power cycles on this chip.
        power_cycles: u64,
        /// The chip's binding Vmin (max over its sweeps), absent when
        /// even the highest probed step misbehaved (censored).
        vmin_mv: Option<u32>,
        /// Sum of per-run severity contributions on this chip.
        severity_sum: f64,
        /// Campaign-cache lookups that hit.
        cache_hits: u64,
        /// Campaign-cache lookups issued.
        cache_lookups: u64,
        /// The chip's own sealed margins-trace JSONL stream.
        trace: String,
    },
    /// Every chip of a job completed.
    JobFinished {
        /// Job id.
        job: u64,
        /// Chips characterized.
        chips: u32,
        /// Classified runs over the whole job.
        runs: u64,
        /// Watchdog power cycles over the whole job.
        power_cycles: u64,
    },
    /// A job was cancelled; `done` of `total` chips had completed.
    JobCancelled {
        /// Job id.
        job: u64,
        /// Chips that completed before the cancel.
        done: u32,
        /// Chips total.
        total: u32,
    },
    /// A job failed with an executor error.
    JobFailed {
        /// Job id.
        job: u64,
        /// The error rendered for operators.
        message: String,
    },
    /// The subscriber's bounded queue overflowed; `dropped` events were
    /// discarded since the last delivered frame.
    Lagged {
        /// Job id.
        job: u64,
        /// Exact count of dropped events.
        dropped: u64,
    },
    /// An event kind this protocol version does not speak; skipped by
    /// version-aware clients.
    Unknown {
        /// The unrecognized `what` token.
        what: String,
    },
}

impl FleetEvent {
    /// The `what` sub-discriminator token on the wire.
    #[must_use]
    pub fn what(&self) -> &str {
        match self {
            FleetEvent::JobQueued { .. } => "job-queued",
            FleetEvent::JobStarted { .. } => "job-started",
            FleetEvent::ChipStarted { .. } => "chip-started",
            FleetEvent::SweepProgress { .. } => "sweep-progress",
            FleetEvent::ChipFinished { .. } => "chip-finished",
            FleetEvent::JobFinished { .. } => "job-finished",
            FleetEvent::JobCancelled { .. } => "job-cancelled",
            FleetEvent::JobFailed { .. } => "job-failed",
            FleetEvent::Lagged { .. } => "lagged",
            FleetEvent::Unknown { what } => what,
        }
    }

    /// The job the event belongs to; `None` for [`FleetEvent::Unknown`].
    #[must_use]
    pub fn job(&self) -> Option<u64> {
        match self {
            FleetEvent::JobQueued { job, .. }
            | FleetEvent::JobStarted { job }
            | FleetEvent::ChipStarted { job, .. }
            | FleetEvent::SweepProgress { job, .. }
            | FleetEvent::ChipFinished { job, .. }
            | FleetEvent::JobFinished { job, .. }
            | FleetEvent::JobCancelled { job, .. }
            | FleetEvent::JobFailed { job, .. }
            | FleetEvent::Lagged { job, .. } => Some(*job),
            FleetEvent::Unknown { .. } => None,
        }
    }
}

/// One daemon→client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A submit was accepted.
    Submitted {
        /// The job id for follow-up requests.
        job: u64,
        /// Chips the job will characterize.
        chips: u32,
    },
    /// A job's progress.
    Status {
        /// Job id.
        job: u64,
        /// `"queued"`, `"running"`, `"done"`, `"failed"` or
        /// `"cancelled"`.
        state: String,
        /// Chips completed.
        done: u32,
        /// Chips total.
        total: u32,
        /// Chip units ahead of this job's first pending unit in its
        /// client's FIFO queue (0 when nothing of the job is queued).
        queue_position: u32,
        /// Completion fraction, `done / total`.
        progress: f64,
    },
    /// A cancel took effect; `done` of `total` chips had completed and
    /// their partial results are retained with the job.
    Cancelled {
        /// Job id.
        job: u64,
        /// Chips that completed before the cancel.
        done: u32,
        /// Chips total.
        total: u32,
    },
    /// A subscription started; `event` frames for the job follow on this
    /// connection.
    Subscribed {
        /// Job id.
        job: u64,
    },
    /// A subscription ended; no further `event` frames for the job will
    /// be pushed on this connection.
    Unsubscribed {
        /// Job id.
        job: u64,
    },
    /// The daemon's runtime gauges.
    Health(HealthSnapshot),
    /// The daemon's OpenMetrics text exposition.
    Metrics {
        /// The exposition body (ends with `# EOF`).
        body: String,
    },
    /// A server-pushed telemetry frame for a subscribed job.
    Event(FleetEvent),
    /// A completed job's merged deterministic outputs.
    Results {
        /// Job id.
        job: u64,
        /// Chips characterized.
        chips: u32,
        /// Classified runs over the whole fleet.
        runs: u64,
        /// Watchdog power cycles over the whole fleet.
        power_cycles: u64,
        /// Kernel ops executed on simulated boards — 0 for a fully warm
        /// cache replay.
        executed_ops: u64,
        /// The merged margins-trace JSONL stream (canonical chip order).
        trace: String,
        /// The OpenMetrics exposition of the merged stream.
        metrics: String,
    },
    /// The daemon acknowledged a shutdown.
    Bye,
    /// A request was rejected.
    Error {
        /// Protocol version of the daemon ([`PROTO_VERSION`]).
        proto: u32,
        /// Stable machine-readable code (see [`ProtoError::code`] and the
        /// daemon's own codes).
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

/// A frame that failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The line is not valid JSON (truncated frames land here).
    Malformed {
        /// The JSON reader's message.
        message: String,
    },
    /// The line parsed but is not a JSON object.
    NotAnObject,
    /// A required field is absent.
    MissingField {
        /// The field name.
        field: String,
    },
    /// A field holds the wrong type or an invalid value.
    BadField {
        /// The field name.
        field: String,
        /// What was wrong.
        message: String,
    },
    /// The `kind` discriminator names no request/response this protocol
    /// version knows.
    UnknownKind {
        /// The offending discriminator.
        kind: String,
        /// The speaker's protocol version.
        proto: u32,
    },
}

impl ProtoError {
    /// The stable machine-readable code for [`Response::Error`] frames.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            ProtoError::Malformed { .. } => "malformed",
            ProtoError::NotAnObject => "not-an-object",
            ProtoError::MissingField { .. } => "missing-field",
            ProtoError::BadField { .. } => "bad-field",
            ProtoError::UnknownKind { .. } => "unknown-kind",
        }
    }

    /// The [`Response::Error`] frame rejecting this decode failure.
    #[must_use]
    pub fn to_response(&self) -> Response {
        Response::Error {
            proto: PROTO_VERSION,
            code: self.code().to_owned(),
            message: self.to_string(),
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Malformed { message } => write!(f, "malformed frame: {message}"),
            ProtoError::NotAnObject => f.write_str("frame is not a JSON object"),
            ProtoError::MissingField { field } => write!(f, "missing field '{field}'"),
            ProtoError::BadField { field, message } => {
                write!(f, "bad field '{field}': {message}")
            }
            ProtoError::UnknownKind { kind, proto } => {
                write!(f, "unknown kind '{kind}' (protocol version {proto})")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// The lowercase wire token of a corner.
#[must_use]
pub fn corner_token(corner: Corner) -> &'static str {
    match corner {
        Corner::Ttt => "ttt",
        Corner::Tff => "tff",
        Corner::Tss => "tss",
    }
}

/// Parses a corner wire token.
#[must_use]
pub fn parse_corner(token: &str) -> Option<Corner> {
    match token {
        "ttt" => Some(Corner::Ttt),
        "tff" => Some(Corner::Tff),
        "tss" => Some(Corner::Tss),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect::<BTreeMap<String, Value>>(),
    )
}

fn spec_value(spec: &FleetSpec) -> Value {
    obj(vec![
        ("corner", Value::from_str_val(corner_token(spec.corner))),
        ("first_serial", Value::from_u64(spec.first_serial)),
        ("chips", Value::from_u64(u64::from(spec.chips))),
        (
            "benchmarks",
            Value::Array(
                spec.benchmarks
                    .iter()
                    .map(|b| Value::from_str_val(b))
                    .collect(),
            ),
        ),
        (
            "cores",
            Value::Array(
                spec.cores
                    .iter()
                    .map(|&c| Value::from_u64(u64::from(c)))
                    .collect(),
            ),
        ),
        ("iterations", Value::from_u64(u64::from(spec.iterations))),
        ("start_mv", Value::from_u64(u64::from(spec.start_mv))),
        ("floor_mv", Value::from_u64(u64::from(spec.floor_mv))),
        ("seed", Value::from_u64(spec.seed)),
        ("search", Value::from_str_val(spec.search.name())),
    ])
}

impl Request {
    /// Encodes the request as its single wire line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        let value = match self {
            Request::Submit { client, spec } => obj(vec![
                ("kind", Value::from_str_val("submit")),
                ("client", Value::from_str_val(client)),
                ("spec", spec_value(spec)),
            ]),
            Request::Status { client, job } => obj(vec![
                ("kind", Value::from_str_val("status")),
                ("client", Value::from_str_val(client)),
                ("job", Value::from_u64(*job)),
            ]),
            Request::Cancel { client, job } => obj(vec![
                ("kind", Value::from_str_val("cancel")),
                ("client", Value::from_str_val(client)),
                ("job", Value::from_u64(*job)),
            ]),
            Request::Results { client, job } => obj(vec![
                ("kind", Value::from_str_val("results")),
                ("client", Value::from_str_val(client)),
                ("job", Value::from_u64(*job)),
            ]),
            Request::Subscribe { client, job } => obj(vec![
                ("kind", Value::from_str_val("subscribe")),
                ("client", Value::from_str_val(client)),
                ("job", Value::from_u64(*job)),
            ]),
            Request::Unsubscribe { client, job } => obj(vec![
                ("kind", Value::from_str_val("unsubscribe")),
                ("client", Value::from_str_val(client)),
                ("job", Value::from_u64(*job)),
            ]),
            Request::Health => obj(vec![("kind", Value::from_str_val("health"))]),
            Request::Metrics => obj(vec![("kind", Value::from_str_val("metrics"))]),
            Request::Shutdown => obj(vec![("kind", Value::from_str_val("shutdown"))]),
        };
        json::render(&value)
    }

    /// Decodes one wire line.
    ///
    /// # Errors
    ///
    /// A typed [`ProtoError`] for anything other than a well-formed frame
    /// of a known kind; never panics on untrusted bytes.
    pub fn parse_line(line: &str) -> Result<Request, ProtoError> {
        let fields = parse_frame(line)?;
        match str_field(&fields, "kind")? {
            "submit" => Ok(Request::Submit {
                client: str_field(&fields, "client")?.to_owned(),
                spec: spec_of(object_field(&fields, "spec")?)?,
            }),
            "status" => Ok(Request::Status {
                client: str_field(&fields, "client")?.to_owned(),
                job: u64_field(&fields, "job")?,
            }),
            "cancel" => Ok(Request::Cancel {
                client: str_field(&fields, "client")?.to_owned(),
                job: u64_field(&fields, "job")?,
            }),
            "results" => Ok(Request::Results {
                client: str_field(&fields, "client")?.to_owned(),
                job: u64_field(&fields, "job")?,
            }),
            "subscribe" => Ok(Request::Subscribe {
                client: str_field(&fields, "client")?.to_owned(),
                job: u64_field(&fields, "job")?,
            }),
            "unsubscribe" => Ok(Request::Unsubscribe {
                client: str_field(&fields, "client")?.to_owned(),
                job: u64_field(&fields, "job")?,
            }),
            "health" => Ok(Request::Health),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtoError::UnknownKind {
                kind: other.to_owned(),
                proto: PROTO_VERSION,
            }),
        }
    }
}

impl Response {
    /// Encodes the response as its single wire line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        let value = match self {
            Response::Submitted { job, chips } => obj(vec![
                ("kind", Value::from_str_val("submitted")),
                ("job", Value::from_u64(*job)),
                ("chips", Value::from_u64(u64::from(*chips))),
            ]),
            Response::Status {
                job,
                state,
                done,
                total,
                queue_position,
                progress,
            } => obj(vec![
                ("kind", Value::from_str_val("status")),
                ("job", Value::from_u64(*job)),
                ("state", Value::from_str_val(state)),
                ("done", Value::from_u64(u64::from(*done))),
                ("total", Value::from_u64(u64::from(*total))),
                (
                    "queue_position",
                    Value::from_u64(u64::from(*queue_position)),
                ),
                ("progress", Value::from_f64(*progress)),
            ]),
            Response::Cancelled { job, done, total } => obj(vec![
                ("kind", Value::from_str_val("cancelled")),
                ("job", Value::from_u64(*job)),
                ("done", Value::from_u64(u64::from(*done))),
                ("total", Value::from_u64(u64::from(*total))),
            ]),
            Response::Subscribed { job } => obj(vec![
                ("kind", Value::from_str_val("subscribed")),
                ("job", Value::from_u64(*job)),
            ]),
            Response::Unsubscribed { job } => obj(vec![
                ("kind", Value::from_str_val("unsubscribed")),
                ("job", Value::from_u64(*job)),
            ]),
            Response::Health(h) => obj(vec![
                ("kind", Value::from_str_val("health")),
                ("workers", Value::from_u64(u64::from(h.workers))),
                ("busy", Value::from_u64(u64::from(h.busy))),
                ("queued_units", Value::from_u64(h.queued_units)),
                ("jobs_queued", Value::from_u64(u64::from(h.jobs_queued))),
                ("jobs_running", Value::from_u64(u64::from(h.jobs_running))),
                ("jobs_done", Value::from_u64(u64::from(h.jobs_done))),
                (
                    "jobs_cancelled",
                    Value::from_u64(u64::from(h.jobs_cancelled)),
                ),
                ("jobs_failed", Value::from_u64(u64::from(h.jobs_failed))),
                ("subscribers", Value::from_u64(u64::from(h.subscribers))),
            ]),
            Response::Metrics { body } => obj(vec![
                ("kind", Value::from_str_val("metrics")),
                ("body", Value::from_str_val(body)),
            ]),
            Response::Event(event) => event_value(event),
            Response::Results {
                job,
                chips,
                runs,
                power_cycles,
                executed_ops,
                trace,
                metrics,
            } => obj(vec![
                ("kind", Value::from_str_val("results")),
                ("job", Value::from_u64(*job)),
                ("chips", Value::from_u64(u64::from(*chips))),
                ("runs", Value::from_u64(*runs)),
                ("power_cycles", Value::from_u64(*power_cycles)),
                ("executed_ops", Value::from_u64(*executed_ops)),
                ("trace", Value::from_str_val(trace)),
                ("metrics", Value::from_str_val(metrics)),
            ]),
            Response::Bye => obj(vec![("kind", Value::from_str_val("bye"))]),
            Response::Error {
                proto,
                code,
                message,
            } => obj(vec![
                ("kind", Value::from_str_val("error")),
                ("proto", Value::from_u64(u64::from(*proto))),
                ("code", Value::from_str_val(code)),
                ("message", Value::from_str_val(message)),
            ]),
        };
        json::render(&value)
    }

    /// Decodes one wire line.
    ///
    /// # Errors
    ///
    /// A typed [`ProtoError`]; never panics on untrusted bytes.
    pub fn parse_line(line: &str) -> Result<Response, ProtoError> {
        let fields = parse_frame(line)?;
        match str_field(&fields, "kind")? {
            "submitted" => Ok(Response::Submitted {
                job: u64_field(&fields, "job")?,
                chips: u32_field(&fields, "chips")?,
            }),
            "status" => Ok(Response::Status {
                job: u64_field(&fields, "job")?,
                state: str_field(&fields, "state")?.to_owned(),
                done: u32_field(&fields, "done")?,
                total: u32_field(&fields, "total")?,
                queue_position: u32_field(&fields, "queue_position")?,
                progress: f64_field(&fields, "progress")?,
            }),
            "cancelled" => Ok(Response::Cancelled {
                job: u64_field(&fields, "job")?,
                done: u32_field(&fields, "done")?,
                total: u32_field(&fields, "total")?,
            }),
            "subscribed" => Ok(Response::Subscribed {
                job: u64_field(&fields, "job")?,
            }),
            "unsubscribed" => Ok(Response::Unsubscribed {
                job: u64_field(&fields, "job")?,
            }),
            "health" => Ok(Response::Health(HealthSnapshot {
                workers: u32_field(&fields, "workers")?,
                busy: u32_field(&fields, "busy")?,
                queued_units: u64_field(&fields, "queued_units")?,
                jobs_queued: u32_field(&fields, "jobs_queued")?,
                jobs_running: u32_field(&fields, "jobs_running")?,
                jobs_done: u32_field(&fields, "jobs_done")?,
                jobs_cancelled: u32_field(&fields, "jobs_cancelled")?,
                jobs_failed: u32_field(&fields, "jobs_failed")?,
                subscribers: u32_field(&fields, "subscribers")?,
            })),
            "metrics" => Ok(Response::Metrics {
                body: str_field(&fields, "body")?.to_owned(),
            }),
            "event" => Ok(Response::Event(event_of(&fields)?)),
            "results" => Ok(Response::Results {
                job: u64_field(&fields, "job")?,
                chips: u32_field(&fields, "chips")?,
                runs: u64_field(&fields, "runs")?,
                power_cycles: u64_field(&fields, "power_cycles")?,
                executed_ops: u64_field(&fields, "executed_ops")?,
                trace: str_field(&fields, "trace")?.to_owned(),
                metrics: str_field(&fields, "metrics")?.to_owned(),
            }),
            "bye" => Ok(Response::Bye),
            "error" => Ok(Response::Error {
                proto: u32_field(&fields, "proto")?,
                code: str_field(&fields, "code")?.to_owned(),
                message: str_field(&fields, "message")?.to_owned(),
            }),
            other => Err(ProtoError::UnknownKind {
                kind: other.to_owned(),
                proto: PROTO_VERSION,
            }),
        }
    }
}

/// Encodes a [`FleetEvent`] as its `"kind":"event"` wire object.
fn event_value(event: &FleetEvent) -> Value {
    let mut fields = vec![
        ("kind", Value::from_str_val("event")),
        ("what", Value::from_str_val(event.what())),
    ];
    match event {
        FleetEvent::JobQueued { job, client, chips } => {
            fields.push(("job", Value::from_u64(*job)));
            fields.push(("client", Value::from_str_val(client)));
            fields.push(("chips", Value::from_u64(u64::from(*chips))));
        }
        FleetEvent::JobStarted { job } => {
            fields.push(("job", Value::from_u64(*job)));
        }
        FleetEvent::ChipStarted { job, chip, chip_id } => {
            fields.push(("job", Value::from_u64(*job)));
            fields.push(("chip", Value::from_u64(u64::from(*chip))));
            fields.push(("chip_id", Value::from_str_val(chip_id)));
        }
        FleetEvent::SweepProgress {
            job,
            chip,
            program,
            dataset,
            core,
            runs,
        } => {
            fields.push(("job", Value::from_u64(*job)));
            fields.push(("chip", Value::from_u64(u64::from(*chip))));
            fields.push(("program", Value::from_str_val(program)));
            fields.push(("dataset", Value::from_str_val(dataset)));
            fields.push(("core", Value::from_u64(u64::from(*core))));
            fields.push(("runs", Value::from_u64(*runs)));
        }
        FleetEvent::ChipFinished {
            job,
            chip,
            chip_id,
            runs,
            power_cycles,
            vmin_mv,
            severity_sum,
            cache_hits,
            cache_lookups,
            trace,
        } => {
            fields.push(("job", Value::from_u64(*job)));
            fields.push(("chip", Value::from_u64(u64::from(*chip))));
            fields.push(("chip_id", Value::from_str_val(chip_id)));
            fields.push(("runs", Value::from_u64(*runs)));
            fields.push(("power_cycles", Value::from_u64(*power_cycles)));
            if let Some(mv) = vmin_mv {
                fields.push(("vmin_mv", Value::from_u64(u64::from(*mv))));
            }
            fields.push(("severity_sum", Value::from_f64(*severity_sum)));
            fields.push(("cache_hits", Value::from_u64(*cache_hits)));
            fields.push(("cache_lookups", Value::from_u64(*cache_lookups)));
            fields.push(("trace", Value::from_str_val(trace)));
        }
        FleetEvent::JobFinished {
            job,
            chips,
            runs,
            power_cycles,
        } => {
            fields.push(("job", Value::from_u64(*job)));
            fields.push(("chips", Value::from_u64(u64::from(*chips))));
            fields.push(("runs", Value::from_u64(*runs)));
            fields.push(("power_cycles", Value::from_u64(*power_cycles)));
        }
        FleetEvent::JobCancelled { job, done, total } => {
            fields.push(("job", Value::from_u64(*job)));
            fields.push(("done", Value::from_u64(u64::from(*done))));
            fields.push(("total", Value::from_u64(u64::from(*total))));
        }
        FleetEvent::JobFailed { job, message } => {
            fields.push(("job", Value::from_u64(*job)));
            fields.push(("message", Value::from_str_val(message)));
        }
        FleetEvent::Lagged { job, dropped } => {
            fields.push(("job", Value::from_u64(*job)));
            fields.push(("dropped", Value::from_u64(*dropped)));
        }
        FleetEvent::Unknown { .. } => {}
    }
    obj(fields)
}

/// Decodes the payload of a `"kind":"event"` frame. Unknown `what` tokens
/// decode to [`FleetEvent::Unknown`] so version-aware clients can skip
/// event kinds newer than their protocol.
fn event_of(fields: &BTreeMap<String, Value>) -> Result<FleetEvent, ProtoError> {
    match str_field(fields, "what")? {
        "job-queued" => Ok(FleetEvent::JobQueued {
            job: u64_field(fields, "job")?,
            client: str_field(fields, "client")?.to_owned(),
            chips: u32_field(fields, "chips")?,
        }),
        "job-started" => Ok(FleetEvent::JobStarted {
            job: u64_field(fields, "job")?,
        }),
        "chip-started" => Ok(FleetEvent::ChipStarted {
            job: u64_field(fields, "job")?,
            chip: u32_field(fields, "chip")?,
            chip_id: str_field(fields, "chip_id")?.to_owned(),
        }),
        "sweep-progress" => Ok(FleetEvent::SweepProgress {
            job: u64_field(fields, "job")?,
            chip: u32_field(fields, "chip")?,
            program: str_field(fields, "program")?.to_owned(),
            dataset: str_field(fields, "dataset")?.to_owned(),
            core: u8_field(fields, "core")?,
            runs: u64_field(fields, "runs")?,
        }),
        "chip-finished" => Ok(FleetEvent::ChipFinished {
            job: u64_field(fields, "job")?,
            chip: u32_field(fields, "chip")?,
            chip_id: str_field(fields, "chip_id")?.to_owned(),
            runs: u64_field(fields, "runs")?,
            power_cycles: u64_field(fields, "power_cycles")?,
            vmin_mv: opt_u32_field(fields, "vmin_mv")?,
            severity_sum: f64_field(fields, "severity_sum")?,
            cache_hits: u64_field(fields, "cache_hits")?,
            cache_lookups: u64_field(fields, "cache_lookups")?,
            trace: str_field(fields, "trace")?.to_owned(),
        }),
        "job-finished" => Ok(FleetEvent::JobFinished {
            job: u64_field(fields, "job")?,
            chips: u32_field(fields, "chips")?,
            runs: u64_field(fields, "runs")?,
            power_cycles: u64_field(fields, "power_cycles")?,
        }),
        "job-cancelled" => Ok(FleetEvent::JobCancelled {
            job: u64_field(fields, "job")?,
            done: u32_field(fields, "done")?,
            total: u32_field(fields, "total")?,
        }),
        "job-failed" => Ok(FleetEvent::JobFailed {
            job: u64_field(fields, "job")?,
            message: str_field(fields, "message")?.to_owned(),
        }),
        "lagged" => Ok(FleetEvent::Lagged {
            job: u64_field(fields, "job")?,
            dropped: u64_field(fields, "dropped")?,
        }),
        other => Ok(FleetEvent::Unknown {
            what: other.to_owned(),
        }),
    }
}

// ---------------------------------------------------------------------
// Decoding helpers
// ---------------------------------------------------------------------

fn parse_frame(line: &str) -> Result<BTreeMap<String, Value>, ProtoError> {
    let value = json::parse(line.trim_end_matches(['\r', '\n']))
        .map_err(|message| ProtoError::Malformed { message })?;
    match value {
        Value::Object(map) => Ok(map),
        _ => Err(ProtoError::NotAnObject),
    }
}

fn field<'a>(fields: &'a BTreeMap<String, Value>, name: &str) -> Result<&'a Value, ProtoError> {
    fields.get(name).ok_or_else(|| ProtoError::MissingField {
        field: name.to_owned(),
    })
}

fn str_field<'a>(fields: &'a BTreeMap<String, Value>, name: &str) -> Result<&'a str, ProtoError> {
    field(fields, name)?
        .as_str()
        .ok_or_else(|| ProtoError::BadField {
            field: name.to_owned(),
            message: "expected a string".to_owned(),
        })
}

fn object_field<'a>(
    fields: &'a BTreeMap<String, Value>,
    name: &str,
) -> Result<&'a BTreeMap<String, Value>, ProtoError> {
    field(fields, name)?
        .as_object()
        .ok_or_else(|| ProtoError::BadField {
            field: name.to_owned(),
            message: "expected an object".to_owned(),
        })
}

fn u64_field(fields: &BTreeMap<String, Value>, name: &str) -> Result<u64, ProtoError> {
    let raw = field(fields, name)?
        .as_number()
        .ok_or_else(|| ProtoError::BadField {
            field: name.to_owned(),
            message: "expected an unsigned integer".to_owned(),
        })?;
    raw.parse::<u64>().map_err(|_| ProtoError::BadField {
        field: name.to_owned(),
        message: format!("'{raw}' is not an unsigned 64-bit integer"),
    })
}

fn u32_field(fields: &BTreeMap<String, Value>, name: &str) -> Result<u32, ProtoError> {
    let wide = u64_field(fields, name)?;
    u32::try_from(wide).map_err(|_| ProtoError::BadField {
        field: name.to_owned(),
        message: format!("{wide} exceeds the unsigned 32-bit range"),
    })
}

fn u8_field(fields: &BTreeMap<String, Value>, name: &str) -> Result<u8, ProtoError> {
    let wide = u64_field(fields, name)?;
    u8::try_from(wide).map_err(|_| ProtoError::BadField {
        field: name.to_owned(),
        message: format!("{wide} exceeds the unsigned 8-bit range"),
    })
}

/// A `u32` field that may be legitimately absent (e.g. a censored Vmin).
fn opt_u32_field(fields: &BTreeMap<String, Value>, name: &str) -> Result<Option<u32>, ProtoError> {
    if fields.contains_key(name) {
        u32_field(fields, name).map(Some)
    } else {
        Ok(None)
    }
}

fn f64_field(fields: &BTreeMap<String, Value>, name: &str) -> Result<f64, ProtoError> {
    let raw = field(fields, name)?
        .as_number()
        .ok_or_else(|| ProtoError::BadField {
            field: name.to_owned(),
            message: "expected a number".to_owned(),
        })?;
    let value = raw.parse::<f64>().map_err(|_| ProtoError::BadField {
        field: name.to_owned(),
        message: format!("'{raw}' is not a number"),
    })?;
    if value.is_finite() {
        Ok(value)
    } else {
        Err(ProtoError::BadField {
            field: name.to_owned(),
            message: format!("'{raw}' is not finite"),
        })
    }
}

fn spec_of(fields: &BTreeMap<String, Value>) -> Result<FleetSpec, ProtoError> {
    let corner_token = str_field(fields, "corner")?;
    let corner = parse_corner(corner_token).ok_or_else(|| ProtoError::BadField {
        field: "corner".to_owned(),
        message: format!("unknown corner '{corner_token}' (ttt|tff|tss)"),
    })?;
    let search_token = str_field(fields, "search")?;
    let search = SearchStrategy::parse(search_token).ok_or_else(|| ProtoError::BadField {
        field: "search".to_owned(),
        message: format!("unknown strategy '{search_token}'"),
    })?;
    let benchmarks = match field(fields, "benchmarks")? {
        Value::Array(items) => items
            .iter()
            .map(|v| {
                v.as_str().map(str::to_owned).ok_or(ProtoError::BadField {
                    field: "benchmarks".to_owned(),
                    message: "expected an array of strings".to_owned(),
                })
            })
            .collect::<Result<Vec<String>, ProtoError>>()?,
        _ => {
            return Err(ProtoError::BadField {
                field: "benchmarks".to_owned(),
                message: "expected an array of strings".to_owned(),
            })
        }
    };
    let cores = match field(fields, "cores")? {
        Value::Array(items) => items
            .iter()
            .map(|v| {
                v.as_number()
                    .and_then(|raw| raw.parse::<u8>().ok())
                    .ok_or(ProtoError::BadField {
                        field: "cores".to_owned(),
                        message: "expected an array of core indices".to_owned(),
                    })
            })
            .collect::<Result<Vec<u8>, ProtoError>>()?,
        _ => {
            return Err(ProtoError::BadField {
                field: "cores".to_owned(),
                message: "expected an array of core indices".to_owned(),
            })
        }
    };
    Ok(FleetSpec {
        corner,
        first_serial: u64_field(fields, "first_serial")?,
        chips: u32_field(fields, "chips")?,
        benchmarks,
        cores,
        iterations: u32_field(fields, "iterations")?,
        start_mv: u32_field(fields, "start_mv")?,
        floor_mv: u32_field(fields, "floor_mv")?,
        seed: u64_field(fields, "seed")?,
        search,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FleetSpec {
        FleetSpec {
            corner: Corner::Tss,
            first_serial: 40,
            chips: 3,
            benchmarks: vec!["namd".into(), "mcf".into()],
            cores: vec![0, 4],
            iterations: 2,
            start_mv: 890,
            floor_mv: 880,
            seed: 7,
            search: SearchStrategy::Bisection,
        }
    }

    #[test]
    fn requests_round_trip_through_the_wire() {
        let frames = [
            Request::Submit {
                client: "rack-a".into(),
                spec: spec(),
            },
            Request::Status {
                client: "rack-a".into(),
                job: 3,
            },
            Request::Cancel {
                client: "rack \"b\"\n".into(),
                job: u64::MAX,
            },
            Request::Results {
                client: String::new(),
                job: 0,
            },
            Request::Subscribe {
                client: "rack-a".into(),
                job: 12,
            },
            Request::Unsubscribe {
                client: "rack-a".into(),
                job: 12,
            },
            Request::Health,
            Request::Metrics,
            Request::Shutdown,
        ];
        for frame in frames {
            let line = frame.to_line();
            assert!(!line.contains('\n'), "frames are single lines: {line}");
            assert_eq!(Request::parse_line(&line).expect("round trip"), frame);
        }
    }

    #[test]
    fn responses_round_trip_through_the_wire() {
        let frames = [
            Response::Submitted { job: 1, chips: 64 },
            Response::Status {
                job: 1,
                state: "running".into(),
                done: 3,
                total: 64,
                queue_position: 7,
                progress: 3.0 / 64.0,
            },
            Response::Cancelled {
                job: 9,
                done: 2,
                total: 5,
            },
            Response::Subscribed { job: 4 },
            Response::Unsubscribed { job: 4 },
            Response::Health(HealthSnapshot {
                workers: 4,
                busy: 2,
                queued_units: 61,
                jobs_queued: 1,
                jobs_running: 1,
                jobs_done: 3,
                jobs_cancelled: 1,
                jobs_failed: 0,
                subscribers: 2,
            }),
            Response::Metrics {
                body: "# TYPE voltmargin_runs counter\nvoltmargin_runs_total 3\n# EOF\n".into(),
            },
            Response::Event(FleetEvent::ChipFinished {
                job: 1,
                chip: 3,
                chip_id: "TTT#103".into(),
                runs: 3,
                power_cycles: 1,
                vmin_mv: Some(885),
                severity_sum: 2.5,
                cache_hits: 0,
                cache_lookups: 4,
                trace: "{\"seq\":0}\n".into(),
            }),
            Response::Event(FleetEvent::ChipFinished {
                job: 1,
                chip: 4,
                chip_id: "TTT#104".into(),
                runs: 3,
                power_cycles: 0,
                vmin_mv: None,
                severity_sum: 0.0,
                cache_hits: 4,
                cache_lookups: 4,
                trace: String::new(),
            }),
            Response::Event(FleetEvent::Lagged { job: 1, dropped: 9 }),
            Response::Results {
                job: 1,
                chips: 2,
                runs: 120,
                power_cycles: 4,
                executed_ops: 0,
                trace: "{\"seq\":0}\n{\"seq\":1}\n".into(),
                metrics: "# EOF\n".into(),
            },
            Response::Bye,
            Response::Error {
                proto: PROTO_VERSION,
                code: "malformed".into(),
                message: "truncated".into(),
            },
        ];
        for frame in frames {
            let line = frame.to_line();
            assert!(!line.contains('\n'), "frames are single lines: {line}");
            assert_eq!(Response::parse_line(&line).expect("round trip"), frame);
        }
    }

    #[test]
    fn truncated_and_corrupt_frames_are_typed_errors() {
        let whole = Request::Submit {
            client: "c".into(),
            spec: spec(),
        }
        .to_line();
        for cut in 1..whole.len() {
            let err = Request::parse_line(&whole[..cut]).expect_err("truncated frame");
            assert!(
                matches!(
                    err,
                    ProtoError::Malformed { .. }
                        | ProtoError::MissingField { .. }
                        | ProtoError::BadField { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
        assert_eq!(
            Request::parse_line("[1,2]").expect_err("array frame"),
            ProtoError::NotAnObject
        );
        let err = Request::parse_line("{\"kind\":7}").expect_err("numeric kind");
        assert_eq!(err.code(), "bad-field");
    }

    #[test]
    fn unknown_kinds_are_rejected_with_the_protocol_version() {
        let err = Request::parse_line("{\"kind\":\"reboot\"}").expect_err("unknown kind");
        assert_eq!(
            err,
            ProtoError::UnknownKind {
                kind: "reboot".into(),
                proto: PROTO_VERSION,
            }
        );
        let Response::Error {
            proto,
            code,
            message,
        } = err.to_response()
        else {
            panic!("to_response must build an error frame");
        };
        assert_eq!((proto, code.as_str()), (PROTO_VERSION, "unknown-kind"));
        assert!(message.contains("reboot"), "{message}");
    }

    #[test]
    fn every_event_kind_round_trips() {
        let events = [
            FleetEvent::JobQueued {
                job: 0,
                client: "rack \"a\"".into(),
                chips: 64,
            },
            FleetEvent::JobStarted { job: 0 },
            FleetEvent::ChipStarted {
                job: 0,
                chip: 1,
                chip_id: "TSS#501".into(),
            },
            FleetEvent::SweepProgress {
                job: 0,
                chip: 1,
                program: "namd".into(),
                dataset: "ref".into(),
                core: 4,
                runs: 3,
            },
            FleetEvent::JobFinished {
                job: 0,
                chips: 64,
                runs: 192,
                power_cycles: 4,
            },
            FleetEvent::JobCancelled {
                job: 0,
                done: 12,
                total: 64,
            },
            FleetEvent::JobFailed {
                job: 0,
                message: "executor: too many threads".into(),
            },
            FleetEvent::Lagged { job: 0, dropped: 1 },
        ];
        for event in events {
            let line = Response::Event(event.clone()).to_line();
            assert!(!line.contains('\n'), "events are single lines: {line}");
            assert_eq!(
                Response::parse_line(&line).expect("round trip"),
                Response::Event(event)
            );
        }
    }

    #[test]
    fn unknown_event_kinds_decode_skippable_not_fatal() {
        // An unknown *event* kind is a soft skip for version-aware
        // clients…
        let decoded = Response::parse_line("{\"kind\":\"event\",\"what\":\"chip-teleported\"}")
            .expect("unknown events decode");
        let Response::Event(event) = decoded else {
            panic!("expected an event frame");
        };
        assert_eq!(
            event,
            FleetEvent::Unknown {
                what: "chip-teleported".into()
            }
        );
        assert_eq!(event.job(), None);
        assert_eq!(event.what(), "chip-teleported");
        // …while an unknown *frame* kind stays a hard typed rejection.
        assert!(matches!(
            Response::parse_line("{\"kind\":\"telemetry\"}"),
            Err(ProtoError::UnknownKind { .. })
        ));
        // A known event kind with a broken payload is still a typed error.
        assert!(matches!(
            Response::parse_line("{\"kind\":\"event\",\"what\":\"lagged\"}"),
            Err(ProtoError::MissingField { .. })
        ));
    }

    #[test]
    fn censored_vmin_is_encoded_by_omission() {
        let censored = Response::Event(FleetEvent::ChipFinished {
            job: 2,
            chip: 0,
            chip_id: "TFF#9".into(),
            runs: 3,
            power_cycles: 2,
            vmin_mv: None,
            severity_sum: 7.5,
            cache_hits: 0,
            cache_lookups: 4,
            trace: String::new(),
        });
        let line = censored.to_line();
        assert!(!line.contains("vmin_mv"), "{line}");
        assert_eq!(Response::parse_line(&line).expect("round trip"), censored);
    }

    #[test]
    fn spec_validation_produces_typed_errors() {
        assert_eq!(
            FleetSpec { chips: 0, ..spec() }.campaign_config(),
            Err(SpecError::NoChips)
        );
        assert!(matches!(
            FleetSpec {
                chips: MAX_CHIPS + 1,
                ..spec()
            }
            .campaign_config(),
            Err(SpecError::TooManyChips { .. })
        ));
        assert_eq!(
            FleetSpec {
                cores: vec![200],
                ..spec()
            }
            .campaign_config(),
            Err(SpecError::BadCore { core: 200 })
        );
        assert!(matches!(
            FleetSpec {
                iterations: 0,
                ..spec()
            }
            .campaign_config(),
            Err(SpecError::Config(_))
        ));
        let config = spec().campaign_config().expect("valid spec");
        assert_eq!(config.iterations, 2);
        assert_eq!(config.search, SearchStrategy::Bisection);
    }

    #[test]
    fn chip_specs_ascend_serials_from_the_first() {
        let chips = spec().chip_specs();
        assert_eq!(chips.len(), 3);
        assert_eq!(chips[0].to_string(), "TSS#40");
        assert_eq!(chips[2].to_string(), "TSS#42");
    }
}
