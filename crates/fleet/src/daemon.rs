//! The TCP front-end: line-delimited JSON frames over plain sockets.
//!
//! `voltmargin serve` binds a listener, prints `listening on ADDR` (so
//! callers binding port 0 can discover the port), and handles each
//! connection on its own thread against one shared [`FleetService`].
//! Every inbound line is decoded with the total [`Request`] parser;
//! undecodable frames are answered with a typed [`Response::Error`] and
//! the connection stays up — a hostile peer can never panic the daemon.
//!
//! A `shutdown` frame stops the accept loop; in-flight chips finish, the
//! shared campaign cache is published and saved (when a cache path was
//! given), and the process exits cleanly.
//!
//! **Streaming.** A `subscribe` frame turns the connection into a duplex
//! channel: a pump thread per subscription drains the service's bounded
//! event queue and pushes `event` frames, interleaved frame-atomically
//! with request responses (every socket write holds the connection's
//! write lock for exactly one line). The reader loop uses a short read
//! timeout so a silent watcher can neither stall its own cleanup nor
//! hold the daemon open across a shutdown; a subscriber disconnecting
//! mid-job just tears down its own pumps.

use crate::proto::{Request, Response, PROTO_VERSION};
use crate::service::{FleetService, JobOutcome, Subscription, DEFAULT_SUBSCRIBER_QUEUE};
use margins_core::cache::{CacheError, SharedCampaignCache};
use margins_core::exec::ExecError;
use std::fmt;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Everything `voltmargin serve` needs to run a daemon.
#[derive(Debug, Clone, Default)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:4750` (`:0` picks a free port).
    pub addr: String,
    /// Scheduler worker threads.
    pub workers: usize,
    /// Persistent campaign cache JSONL, loaded at start and saved at
    /// shutdown.
    pub cache_path: Option<String>,
    /// When set, each completed job's merged streams are also written
    /// under `<out_dir>/<client>/job<id>/`.
    pub out_dir: Option<String>,
    /// Bound on each subscriber's event queue; `0` means
    /// [`DEFAULT_SUBSCRIBER_QUEUE`]. Slow consumers overflowing the
    /// bound lose events (counted exactly, reported via a `lagged`
    /// frame) instead of blocking the scheduler.
    pub subscriber_queue: usize,
}

/// A daemon that could not start or persist its state.
#[derive(Debug)]
pub enum ServeError {
    /// The listen address could not be bound (in use, unresolvable, …).
    Bind {
        /// The requested address.
        addr: String,
        /// The OS error.
        message: String,
    },
    /// The worker count is invalid.
    Exec(ExecError),
    /// The campaign cache could not be loaded or saved.
    Cache(CacheError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind { addr, message } => {
                write!(f, "serve: cannot bind {addr}: {message}")
            }
            ServeError::Exec(e) => write!(f, "serve: {e}"),
            ServeError::Cache(e) => write!(f, "serve: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Runs the daemon until a client sends `shutdown`.
///
/// # Errors
///
/// [`ServeError::Exec`] for an invalid worker count, [`ServeError::Bind`]
/// when the address cannot be bound, [`ServeError::Cache`] when the cache
/// fails to load or save.
pub fn serve(config: &ServeConfig) -> Result<(), ServeError> {
    let cache = match &config.cache_path {
        Some(path) => SharedCampaignCache::load(path).map_err(ServeError::Cache)?,
        None => SharedCampaignCache::new(),
    };
    let service = FleetService::new(config.workers, cache).map_err(ServeError::Exec)?;
    let listener = TcpListener::bind(&config.addr).map_err(|e| ServeError::Bind {
        addr: config.addr.clone(),
        message: e.to_string(),
    })?;
    let local = listener.local_addr().map_err(|e| ServeError::Bind {
        addr: config.addr.clone(),
        message: e.to_string(),
    })?;
    println!("listening on {local}");
    // The port-discovery line must be visible before the first client
    // connects, even through a pipe; a broken stdout must not kill the
    // daemon.
    let _ = std::io::stdout().flush();

    let stop = AtomicBool::new(false);
    let subscriber_queue = if config.subscriber_queue == 0 {
        DEFAULT_SUBSCRIBER_QUEUE
    } else {
        config.subscriber_queue
    };
    service.run(|| {
        std::thread::scope(|scope| {
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let service = &service;
                let stop = &stop;
                let out_dir = config.out_dir.as_deref();
                scope.spawn(move || {
                    handle_connection(stream, service, stop, local, out_dir, subscriber_queue);
                });
            }
        });
    });

    if let Some(path) = &config.cache_path {
        service.cache().save(path).map_err(ServeError::Cache)?;
    }
    Ok(())
}

/// How often the reader loop wakes to check the stop flag while a
/// connection is idle. Bounds how long a silent subscriber can delay a
/// daemon shutdown.
const READ_POLL: Duration = Duration::from_millis(200);

/// Writes one frame line atomically through the connection's write lock;
/// `false` when the peer is gone.
fn send_line(writer: &Mutex<TcpStream>, line: &str) -> bool {
    let mut w = writer
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    writeln!(w, "{line}").is_ok() && w.flush().is_ok()
}

/// Drains a subscription into `event` frames until it closes; a dead
/// peer closes the subscription so the scheduler stops queueing for it.
fn pump_events(service: &FleetService, sub: Subscription, writer: &Mutex<TcpStream>) {
    while let Some(events) = service.next_events(&sub) {
        for event in events {
            if !send_line(writer, &Response::Event(event).to_line()) {
                service.unsubscribe(&sub);
                return;
            }
        }
    }
}

/// Serves one client connection until EOF or shutdown.
fn handle_connection(
    stream: TcpStream,
    service: &FleetService,
    stop: &AtomicBool,
    local: SocketAddr,
    out_dir: Option<&str>,
    subscriber_queue: usize,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // The timeout keeps the reader responsive to the stop flag; partial
    // frame bytes survive across timeouts in `buf` below.
    let _ = read_half.set_read_timeout(Some(READ_POLL));
    let writer = Mutex::new(stream);
    // Subscriptions owned by this connection, torn down on EOF so a
    // vanished watcher never leaves a queue growing in the scheduler.
    let subs: Mutex<Vec<(u64, Subscription)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        let mut reader = BufReader::new(read_half);
        let mut buf: Vec<u8> = Vec::new();
        loop {
            match reader.read_until(b'\n', &mut buf) {
                Ok(0) => {
                    // EOF; a final unterminated line is still a frame.
                    if !buf.is_empty() {
                        let line = String::from_utf8_lossy(&buf).into_owned();
                        handle_line(
                            &line,
                            service,
                            stop,
                            local,
                            out_dir,
                            subscriber_queue,
                            &writer,
                            &subs,
                            scope,
                        );
                    }
                    break;
                }
                Ok(_) => {
                    if buf.last() != Some(&b'\n') {
                        continue;
                    }
                    let line = String::from_utf8_lossy(&buf).into_owned();
                    buf.clear();
                    if line.trim().is_empty() {
                        continue;
                    }
                    let keep = handle_line(
                        &line,
                        service,
                        stop,
                        local,
                        out_dir,
                        subscriber_queue,
                        &writer,
                        &subs,
                        scope,
                    );
                    if !keep {
                        break;
                    }
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        // Close this connection's subscriptions: blocked pumps wake,
        // return, and the scope joins them.
        let closing = {
            let mut subs = subs
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            std::mem::take(&mut *subs)
        };
        for (_, sub) in closing {
            service.unsubscribe(&sub);
        }
    });
}

/// Handles one inbound frame line; returns whether to keep the
/// connection open.
#[allow(clippy::too_many_arguments)]
fn handle_line<'scope, 'env>(
    line: &str,
    service: &'scope FleetService,
    stop: &AtomicBool,
    local: SocketAddr,
    out_dir: Option<&str>,
    subscriber_queue: usize,
    writer: &'scope Mutex<TcpStream>,
    subs: &Mutex<Vec<(u64, Subscription)>>,
    scope: &'scope std::thread::Scope<'scope, 'env>,
) -> bool {
    match Request::parse_line(line) {
        Ok(Request::Subscribe { client, job }) => {
            match service.subscribe(&client, job, subscriber_queue) {
                Some(sub) => {
                    {
                        let mut subs = subs
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        subs.push((job, sub));
                    }
                    // Acknowledge before the pump starts so the client
                    // always sees `subscribed` ahead of any event frame.
                    let alive = send_line(writer, &Response::Subscribed { job }.to_line());
                    scope.spawn(move || pump_events(service, sub, writer));
                    alive
                }
                None => send_line(writer, &unknown_job(job).to_line()),
            }
        }
        Ok(Request::Unsubscribe { client: _, job }) => {
            let found = {
                let mut subs = subs
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                subs.iter()
                    .position(|(j, _)| *j == job)
                    .map(|at| subs.remove(at).1)
            };
            match found {
                Some(sub) => {
                    service.unsubscribe(&sub);
                    send_line(writer, &Response::Unsubscribed { job }.to_line())
                }
                None => send_line(writer, &unknown_job(job).to_line()),
            }
        }
        _ => {
            let (response, shutdown) = respond(line, service, out_dir);
            if !send_line(writer, &response.to_line()) {
                return false;
            }
            if shutdown {
                stop.store(true, Ordering::SeqCst);
                // Unblock the accept loop with a throwaway connection;
                // best effort, since the accept loop also checks the
                // flag.
                let _ = TcpStream::connect(local);
                return false;
            }
            true
        }
    }
}

/// A daemon-side error frame (decode errors use
/// [`ProtoError::to_response`](crate::proto::ProtoError::to_response)).
fn error_frame(code: &str, message: String) -> Response {
    Response::Error {
        proto: PROTO_VERSION,
        code: code.to_owned(),
        message,
    }
}

/// Dispatches one decoded line; returns the response and whether the
/// daemon should shut down.
fn respond(line: &str, service: &FleetService, out_dir: Option<&str>) -> (Response, bool) {
    let request = match Request::parse_line(line) {
        Ok(request) => request,
        Err(e) => return (e.to_response(), false),
    };
    match request {
        Request::Submit { client, spec } => match service.submit(&client, &spec) {
            Ok((job, chips)) => (Response::Submitted { job, chips }, false),
            Err(e) => (error_frame("bad-spec", e.to_string()), false),
        },
        Request::Status { client, job } => match service.status(&client, job) {
            Some(s) => (
                Response::Status {
                    job,
                    state: s.state.to_owned(),
                    done: s.done,
                    total: s.total,
                    queue_position: s.queue_position,
                    progress: s.progress,
                },
                false,
            ),
            None => (unknown_job(job), false),
        },
        Request::Cancel { client, job } => {
            if service.cancel(&client, job) {
                let (done, total) = service.accounting(&client, job).unwrap_or((0, 0));
                (Response::Cancelled { job, done, total }, false)
            } else {
                (unknown_job(job), false)
            }
        }
        Request::Results { client, job } => match service.wait(&client, job) {
            Some(JobOutcome::Done(r)) => {
                if let Some(dir) = out_dir {
                    if let Err(e) = write_artifacts(dir, &client, job, &r.trace, &r.metrics) {
                        return (error_frame("io", e), false);
                    }
                }
                (
                    Response::Results {
                        job,
                        chips: r.chips,
                        runs: r.runs,
                        power_cycles: r.power_cycles,
                        executed_ops: r.executed_ops,
                        trace: r.trace,
                        metrics: r.metrics,
                    },
                    false,
                )
            }
            Some(JobOutcome::Cancelled) => (
                error_frame("cancelled", format!("job {job} was cancelled")),
                false,
            ),
            Some(JobOutcome::Failed(e)) => (error_frame("exec", e.to_string()), false),
            None => (unknown_job(job), false),
        },
        Request::Health => (Response::Health(service.health()), false),
        Request::Metrics => (
            Response::Metrics {
                body: service.openmetrics(),
            },
            false,
        ),
        // The connection layer intercepts these before `respond` because
        // they bind state (pump threads) to the connection itself; hitting
        // this arm means a non-streaming caller routed them here.
        Request::Subscribe { .. } | Request::Unsubscribe { .. } => (
            error_frame(
                "not-streaming",
                "subscribe/unsubscribe require a streaming connection".to_owned(),
            ),
            false,
        ),
        Request::Shutdown => (Response::Bye, true),
    }
}

fn unknown_job(job: u64) -> Response {
    error_frame("unknown-job", format!("no job {job} for this client"))
}

/// Writes a job's merged streams under `<dir>/<client>/job<id>/`,
/// sanitizing the client name so it can never escape the artifact root.
fn write_artifacts(
    dir: &str,
    client: &str,
    job: u64,
    trace: &str,
    metrics: &str,
) -> Result<(), String> {
    let safe: String = client
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let safe = if safe.is_empty() {
        "anonymous".to_owned()
    } else {
        safe
    };
    let job_dir = format!("{dir}/{safe}/job{job}");
    std::fs::create_dir_all(&job_dir).map_err(|e| format!("{job_dir}: {e}"))?;
    std::fs::write(format!("{job_dir}/trace.jsonl"), trace)
        .map_err(|e| format!("{job_dir}/trace.jsonl: {e}"))?;
    std::fs::write(format!("{job_dir}/metrics.om"), metrics)
        .map_err(|e| format!("{job_dir}/metrics.om: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_errors_render_operator_messages() {
        let msg = ServeError::Bind {
            addr: "127.0.0.1:1".into(),
            message: "permission denied".into(),
        }
        .to_string();
        assert!(msg.contains("cannot bind 127.0.0.1:1"), "{msg}");
        let msg = ServeError::Exec(ExecError::ZeroThreads).to_string();
        assert!(msg.contains("at least one worker"), "{msg}");
    }

    #[test]
    fn bad_frames_answer_typed_errors_without_shutdown() {
        let svc = FleetService::new(1, SharedCampaignCache::new()).expect("valid");
        let (resp, shutdown) = respond("nonsense", &svc, None);
        assert!(!shutdown);
        let Response::Error { proto, code, .. } = resp else {
            panic!("expected an error frame");
        };
        assert_eq!((proto, code.as_str()), (PROTO_VERSION, "malformed"));

        let (resp, _) = respond("{\"kind\":\"reboot\"}", &svc, None);
        let Response::Error { code, .. } = resp else {
            panic!("expected an error frame");
        };
        assert_eq!(code, "unknown-kind");

        let (resp, _) = respond(
            "{\"client\":\"c\",\"job\":0,\"kind\":\"status\"}",
            &svc,
            None,
        );
        let Response::Error { code, .. } = resp else {
            panic!("expected an error frame");
        };
        assert_eq!(code, "unknown-job");

        let (resp, shutdown) = respond("{\"kind\":\"shutdown\"}", &svc, None);
        assert_eq!(resp, Response::Bye);
        assert!(shutdown);
    }

    #[test]
    fn health_and_metrics_answer_snapshot_frames() {
        let svc = FleetService::new(2, SharedCampaignCache::new()).expect("valid");
        let (resp, shutdown) = respond("{\"kind\":\"health\"}", &svc, None);
        assert!(!shutdown);
        let Response::Health(h) = resp else {
            panic!("expected a health frame, got {resp:?}");
        };
        assert_eq!(h.workers, 2);
        assert_eq!(h.busy, 0);

        let (resp, shutdown) = respond("{\"kind\":\"metrics\"}", &svc, None);
        assert!(!shutdown);
        let Response::Metrics { body } = resp else {
            panic!("expected a metrics frame, got {resp:?}");
        };
        assert!(body.contains("voltmargin_fleet_workers 2"), "{body}");
        assert!(body.ends_with("# EOF\n"), "{body}");
    }

    #[test]
    fn subscribe_outside_a_streaming_connection_is_a_typed_error() {
        let svc = FleetService::new(1, SharedCampaignCache::new()).expect("valid");
        let (resp, shutdown) = respond(
            "{\"client\":\"c\",\"job\":0,\"kind\":\"subscribe\"}",
            &svc,
            None,
        );
        assert!(!shutdown);
        let Response::Error { code, .. } = resp else {
            panic!("expected an error frame, got {resp:?}");
        };
        assert_eq!(code, "not-streaming");
    }

    #[test]
    fn artifact_paths_sanitize_hostile_client_names() {
        let dir = std::env::temp_dir().join(format!("fleet-daemon-test-{}", std::process::id()));
        let dir = dir.to_string_lossy().into_owned();
        write_artifacts(&dir, "../../etc", 0, "t\n", "# EOF\n").expect("writes");
        let written = format!("{dir}/______etc/job0/trace.jsonl");
        assert_eq!(std::fs::read_to_string(written).expect("exists"), "t\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
