//! Fixture: one positive case per semantic rule L7–L10. `core` depends on
//! both `sim` (newtypes) and `trace` (schema), and sits on the
//! deterministic path, so every semantic rule binds here.

use margins_sim::{CoreId, Millivolts};
use margins_trace::TraceEvent;
use std::sync::mpsc::Sender;

pub fn probe(mv: u32) -> bool {
    mv > 0
}

pub fn vmin_mv(program: &str) -> u32 {
    program.len() as u32
}

pub fn pin(core: u8) {
    let _ = core;
}

pub fn emit_unknown_variant(out: &mut Vec<TraceEvent>) {
    out.push(TraceEvent::Typo);
}

pub fn emit_unknown_field(out: &mut Vec<TraceEvent>) {
    out.push(TraceEvent::SweepStarted { program: String::new(), speed: 9 });
    out.push(TraceEvent::SweepFinished { program: String::new(), runs: 1 });
}

pub fn open_without_close(out: &mut Vec<TraceEvent>) {
    out.push(TraceEvent::CampaignStarted { chip: String::new(), runs: 0 });
}

pub fn scatter(items: Vec<u32>) {
    for item in items {
        std::thread::spawn(move || item + 1);
    }
}

pub fn swallow(out: &mut impl std::io::Write, tx: &Sender<u32>) {
    let _ = out.flush();
    drop(tx.send(1));
    let _ = persist_priors();
    let _ = writeln!(std::io::stderr(), "progress");
}

fn persist_priors() -> Result<(), String> {
    Ok(())
}
