//! Fixture: idiomatic counterparts of every `bad.rs` case — the semantic
//! rules must stay silent on all of them.

use margins_sim::{CoreId, Millivolts};
use margins_trace::TraceEvent;
use std::collections::BTreeMap;

pub fn probe(mv: Millivolts) -> bool {
    mv.mv() > 0
}

pub fn vmin_mv(program: &str) -> Millivolts {
    Millivolts::new(program.len() as u32)
}

pub fn pin(core: CoreId) -> CoreId {
    core
}

fn internal_mv(mv: u32) -> u32 {
    mv
}

pub fn count(widgets: u32) -> u32 {
    widgets + internal_mv(0)
}

pub fn balanced(out: &mut Vec<TraceEvent>) {
    out.push(TraceEvent::SweepStarted { program: String::new(), core: 0 });
    out.push(TraceEvent::SweepFinished { program: String::new(), runs: 1 });
}

pub fn patterns(e: &TraceEvent) -> bool {
    matches!(e, TraceEvent::SweepStarted { .. })
}

pub fn shorthand(e: &TraceEvent) -> u32 {
    match e {
        TraceEvent::CampaignFinished { runs } => *runs,
        _ => 0,
    }
}

pub fn scatter_reordered(items: Vec<u32>) {
    let mut done: BTreeMap<u32, u32> = BTreeMap::new();
    for item in items {
        std::thread::spawn(move || item);
    }
    done.insert(0, 0);
}

pub fn handled(out: &mut impl std::io::Write) -> Result<(), std::io::Error> {
    out.flush()?;
    let mut buf = String::new();
    let _ = writeln!(buf, "per-sweep summary");
    let _ = infallible_len("x");
    Ok(())
}

fn infallible_len(s: &str) -> usize {
    s.len()
}
