//! Fixture: one violation per semantic rule, each carrying an explicit
//! accounted waiver — plus one deliberately unused waiver that must be
//! reported as such rather than dropped.

use margins_trace::TraceEvent;

// lint: allow(unit-escape) — FFI shim mirrors the MSR register layout
pub fn poke(mv: u32) -> u32 {
    mv
}

pub fn fire_and_forget(out: &mut Vec<TraceEvent>) {
    // lint: allow(span-balance) — the close event is emitted by the stream finalizer
    out.push(TraceEvent::CampaignStarted { chip: String::new(), runs: 0 });
}

pub fn detached(items: Vec<u32>) {
    // lint: allow(order-sensitivity) — workers are side-effect free probes
    std::thread::spawn(move || items.len());
}

pub fn best_effort(out: &mut impl std::io::Write) {
    // lint: allow(swallowed-fallibility) — progress output is best-effort
    let _ = out.flush();
}

pub fn one_unused_waiver() -> u32 {
    // lint: allow(unit-escape) — nothing on this line needs it
    7
}
