//! Fixture: integration-test files are exempt from every code rule,
//! including the semantic ones — the same sins as `bad.rs` produce nothing.

use margins_trace::TraceEvent;
use std::io::Write;

pub fn probe(mv: u32) -> u32 {
    mv
}

#[test]
fn test_helpers_may_sin() {
    let mut out: Vec<TraceEvent> = Vec::new();
    out.push(TraceEvent::Typo);
    out.push(TraceEvent::CampaignStarted { chip: String::new(), runs: 0 });
    std::thread::spawn(|| 1);
    let _ = std::io::stdout().flush();
}
