//! Fixture: the quantity newtypes the unit-escape rule resolves against.
//! The newtype's own impl is allowed to speak raw units — constructors and
//! accessors are exactly where the primitive must appear.

pub struct Millivolts(u32);
pub struct CoreId(u8);

impl Millivolts {
    pub fn new(mv: u32) -> Millivolts {
        Millivolts(mv)
    }

    pub fn mv(&self) -> u32 {
        self.0
    }
}

impl CoreId {
    pub fn new(core: u8) -> CoreId {
        CoreId(core)
    }
}
