//! Fixture: `bench` is off the deterministic path, so order-sensitivity
//! and swallowed-fallibility do not bind — but unit-escape binds every
//! non-test crate that can see the newtype, including this one.

use std::io::Write;

pub fn plot(mv: u32) -> String {
    std::thread::spawn(move || mv);
    let _ = std::io::stdout().flush();
    format!("{mv}")
}
