//! Fixture: the trace schema the span-balance rule resolves against.

pub enum TraceEvent {
    CampaignStarted { chip: String, runs: u32 },
    CampaignFinished { runs: u32 },
    SweepStarted { program: String, core: u8 },
    SweepFinished { program: String, runs: u32 },
    RunCompleted { program: String, mv: u32 },
    ProfileSample { program: String, phase: String, ops: u64 },
    ProfilePhase { phase: String, sweeps: u64, ops: u64 },
}
