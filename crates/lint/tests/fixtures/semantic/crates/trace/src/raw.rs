//! Fixture: `trace` does not depend on `sim`, so unit-escape must not
//! demand a newtype this crate cannot even name. Raw primitives on these
//! boundaries are deliberate (the serialized stream carries primitives).

pub fn record(mv: u32, core: u8) -> u32 {
    u32::from(core) + mv
}

pub fn vmin_mv(program: &str) -> u32 {
    program.len() as u32
}
