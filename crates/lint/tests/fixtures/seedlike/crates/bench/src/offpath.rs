//! Fixture: a non-deterministic-path crate. Determinism rules L2–L5 do
//! not bind here; the unseeded-randomness rule L1 still does.

use std::collections::HashMap;

pub fn allowed_here(v: f64) -> bool {
    let m: HashMap<u32, u32> = HashMap::new();
    let _ = m.get(&1).unwrap();
    v == 1.5
}

pub fn but_entropy_is_not() -> u8 {
    rand::random()
}
