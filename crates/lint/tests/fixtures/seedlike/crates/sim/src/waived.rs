//! Fixture: the same violations as `bad.rs`, each carrying an explicit
//! waiver — the linter must suppress all of them and report the waivers.

use std::collections::HashMap; // lint: allow(hash-iter) — keyed by opaque id, never iterated

pub fn waived_unwrap(digest: Option<u64>) -> u64 {
    // lint: allow(no-panic) — digest presence validated by the caller
    digest.unwrap()
}

pub fn waived_expect(digest: Option<u64>) -> u64 {
    digest.expect("validated") // lint: allow(no-panic) — invariant
}

pub fn waived_float_eq(v: f64) -> bool {
    // lint: allow(float-eq) — exact sentinel propagated unmodified
    v == 0.0
}

pub fn waived_map(m: &mut HashMap<u32, u32>) { // lint: allow(hash-iter) — insertion only
    m.insert(1, 2);
}

pub fn one_unused_waiver() -> u32 {
    // lint: allow(wall-clock) — nothing on this line needs it
    41 + 1
}
