//! Fixture: fully compliant deterministic-path code — ordered containers,
//! seeded randomness, integer millivolts, typed errors. Zero findings.

use std::collections::BTreeMap;

pub fn seeded(seed: u64) -> u64 {
    // Deterministic splitmix-style step; mentions of unwrap or HashMap in
    // strings and comments must not fire: "x.unwrap()", "HashMap::new()".
    let z = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z ^ (z >> 31)
}

pub fn ordered(cells: &[(u32, u32)]) -> BTreeMap<u32, u32> {
    cells.iter().copied().collect()
}

pub fn integer_millivolts(vmin_mv: u32) -> bool {
    vmin_mv == 905
}

pub fn float_compare_with_epsilon(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

#[cfg(test)]
mod tests {
    // Test modules may do all of this freely.
    #[test]
    fn exempt() {
        let m = std::collections::HashMap::<u32, u32>::new();
        assert!(m.is_empty());
        assert!(Some(1u32).unwrap() == 1);
    }
}
