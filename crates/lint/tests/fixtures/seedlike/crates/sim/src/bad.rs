//! Fixture: one violation of every code rule (L1–L5) on the deterministic
//! path, no waivers. Mirrors the pre-fix seed tree's failure modes.

use std::collections::HashMap;
use std::time::Instant;

pub fn l1_unseeded() -> u64 {
    let mut r = rand::thread_rng();
    let x: u64 = rand::random();
    let s = StdRng::from_entropy();
    let _ = (&mut r, s);
    x
}

pub fn l2_hash_iteration(cells: &[(u32, f64)]) -> HashMap<u32, f64> {
    let mut by_set: HashMap<u32, f64> = HashMap::new();
    for (set, vfail) in cells {
        by_set.insert(*set, *vfail);
    }
    by_set
}

pub fn l3_float_equality(vmin_mv: f64) -> bool {
    vmin_mv == 905.0
}

pub fn l4_panics(digest: Option<u64>) -> u64 {
    let d = digest.unwrap();
    let e = digest.expect("golden digest present");
    d + e
}

pub fn l5_wall_clock() -> Instant {
    Instant::now()
}
