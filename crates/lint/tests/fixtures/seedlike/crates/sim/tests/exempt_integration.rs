//! Fixture: integration-test files are exempt from every code rule.

fn main() {
    let mut r = rand::thread_rng();
    let m = std::collections::HashMap::<u32, u32>::new();
    let _ = (&mut r, m);
    Some(1u32).unwrap();
}
