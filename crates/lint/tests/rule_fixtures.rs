//! Exercises every rule against the fixture trees — positive hits, waived
//! hits and clean files — asserting on both the structured report and its
//! JSON form. The `seedlike` tree covers the token rules L1–L6; the
//! `semantic` tree carries manifests, newtypes and a trace schema so the
//! cross-file rules L7–L10 resolve against a real symbol table.

use margins_lint::rules::Rule;
use std::path::PathBuf;

fn fixture_root() -> PathBuf {
    let manifest = option_env!("CARGO_MANIFEST_DIR")
        .map_or_else(|| std::env::current_dir().expect("cwd"), PathBuf::from);
    manifest.join("tests/fixtures/seedlike")
}

fn semantic_root() -> PathBuf {
    let manifest = option_env!("CARGO_MANIFEST_DIR")
        .map_or_else(|| std::env::current_dir().expect("cwd"), PathBuf::from);
    manifest.join("tests/fixtures/semantic")
}

fn lint_fixture() -> margins_lint::report::Report {
    margins_lint::lint_workspace(&fixture_root()).expect("fixture tree lints")
}

fn lint_semantic() -> margins_lint::report::Report {
    margins_lint::lint_workspace(&semantic_root()).expect("semantic tree lints")
}

fn count(report: &margins_lint::report::Report, rule: Rule, file: &str) -> usize {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.file == file)
        .count()
}

const BAD: &str = "crates/sim/src/bad.rs";
const WAIVED: &str = "crates/sim/src/waived.rs";
const CLEAN: &str = "crates/sim/src/clean.rs";
const OFFPATH: &str = "crates/bench/src/offpath.rs";
const EXEMPT: &str = "crates/sim/tests/exempt_integration.rs";

#[test]
fn every_rule_fires_on_the_seedlike_tree() {
    let report = lint_fixture();
    // L1: thread_rng + rand::random + from_entropy.
    assert_eq!(count(&report, Rule::UnseededRng, BAD), 3);
    // L2: every HashMap mention in bad.rs (use + signature + binding + ctor).
    assert!(count(&report, Rule::HashIter, BAD) >= 3);
    assert_eq!(count(&report, Rule::FloatEq, BAD), 1);
    // L4: one unwrap + one expect.
    assert_eq!(count(&report, Rule::NoPanic, BAD), 2);
    assert_eq!(count(&report, Rule::WallClock, BAD), 1);
    // L6: the stale backup file.
    assert_eq!(
        count(&report, Rule::StaleFile, "crates/sim/src/stale.rs.bak"),
        1
    );
}

#[test]
fn seedlike_tree_violates_at_least_five_distinct_rules() {
    // The acceptance bar for the pre-fix seed: >= 5 distinct rules firing.
    let distinct = lint_fixture().distinct_violated_rules();
    assert!(
        distinct.len() >= 5,
        "expected >=5 distinct violated rules, got {distinct:?}"
    );
}

#[test]
fn waivers_suppress_and_are_reported() {
    let report = lint_fixture();
    assert_eq!(
        report.findings.iter().filter(|f| f.file == WAIVED).count(),
        0,
        "all violations in waived.rs carry waivers"
    );
    let waivers: Vec<_> = report.waivers.iter().filter(|w| w.file == WAIVED).collect();
    assert_eq!(waivers.len(), 6, "{waivers:?}");
    assert_eq!(waivers.iter().filter(|w| w.used).count(), 5);
    // The deliberately unused waiver is flagged unused, not dropped.
    let unused: Vec<_> = waivers.iter().filter(|w| !w.used).collect();
    assert_eq!(unused.len(), 1);
    assert_eq!(unused[0].rule, Rule::WallClock);
}

#[test]
fn clean_and_exempt_files_produce_nothing() {
    let report = lint_fixture();
    assert_eq!(
        report.findings.iter().filter(|f| f.file == CLEAN).count(),
        0
    );
    assert_eq!(
        report.findings.iter().filter(|f| f.file == EXEMPT).count(),
        0,
        "integration-test files are exempt from code rules"
    );
}

#[test]
fn determinism_rules_do_not_bind_off_path_crates() {
    let report = lint_fixture();
    assert_eq!(count(&report, Rule::HashIter, OFFPATH), 0);
    assert_eq!(count(&report, Rule::NoPanic, OFFPATH), 0);
    assert_eq!(count(&report, Rule::FloatEq, OFFPATH), 0);
    // But unseeded entropy is forbidden everywhere outside tests.
    assert_eq!(count(&report, Rule::UnseededRng, OFFPATH), 1);
}

#[test]
fn json_report_carries_findings_waivers_and_counts() {
    let report = lint_fixture();
    let json = report.to_json();
    assert!(json.contains("\"tool\": \"margins-lint\""));
    assert!(json.contains("\"rule\": \"unseeded-rng\""));
    assert!(json.contains("\"label\": \"L1\""));
    assert!(json.contains("\"file\": \"crates/sim/src/bad.rs\""));
    assert!(json.contains("\"rule\": \"stale-file\""));
    assert!(json.contains("\"used\": false"));
    // Counts block names every rule, including clean ones, with totals.
    for rule in margins_lint::rules::RULE_NAMES {
        assert!(
            json.contains(&format!("\"{rule}\"")),
            "counts must mention {rule}"
        );
    }
}

#[test]
fn json_report_is_byte_deterministic() {
    let a = lint_fixture().to_json();
    let b = lint_fixture().to_json();
    assert_eq!(
        a, b,
        "two runs over the same tree must emit identical bytes"
    );
}

#[test]
fn human_diagnostics_use_file_line_col() {
    let human = lint_fixture().render_human();
    assert!(
        human.contains("crates/sim/src/bad.rs:"),
        "diagnostics carry file:line"
    );
    assert!(human.contains("[L4/no-panic]"));
    assert!(human.contains("unused waivers"));
}

// ---- the `semantic` tree: L7–L10 against a real symbol table ----

const SEM_BAD: &str = "crates/core/src/bad.rs";
const SEM_CLEAN: &str = "crates/core/src/clean.rs";
const SEM_WAIVED: &str = "crates/core/src/waived.rs";
const SEM_OFFPATH: &str = "crates/bench/src/offpath.rs";
const SEM_TRACE_RAW: &str = "crates/trace/src/raw.rs";
const SEM_EXEMPT: &str = "crates/core/tests/exempt_semantic.rs";

#[test]
fn semantic_rules_fire_on_the_bad_file() {
    let report = lint_semantic();
    // L7: raw `mv: u32` param, raw `-> u32` on `vmin_mv`, raw `core: u8`.
    assert_eq!(count(&report, Rule::UnitEscape, SEM_BAD), 3);
    // L8: unknown variant + unknown field + unclosed span open.
    assert_eq!(count(&report, Rule::SpanBalance, SEM_BAD), 3);
    // L9: spawn with no reorder/finalizer path.
    assert_eq!(count(&report, Rule::OrderSensitivity, SEM_BAD), 1);
    // L10: .flush(), drop(.send()), always-Result workspace fn, writeln!
    // to a path target.
    assert_eq!(count(&report, Rule::SwallowedFallibility, SEM_BAD), 4);
}

#[test]
fn unit_escape_messages_name_the_newtype_and_its_crate() {
    let report = lint_semantic();
    let msg = report
        .findings
        .iter()
        .find(|f| f.rule == Rule::UnitEscape && f.file == SEM_BAD)
        .map(|f| f.message.clone())
        .expect("at least one L7 finding");
    assert!(msg.contains("Millivolts"), "{msg}");
    assert!(msg.contains("`sim`"), "{msg}");
}

#[test]
fn span_balance_distinguishes_its_three_failure_modes() {
    let report = lint_semantic();
    let messages: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::SpanBalance && f.file == SEM_BAD)
        .map(|f| f.message.as_str())
        .collect();
    assert!(messages.iter().any(|m| m.contains("`TraceEvent::Typo`")));
    assert!(messages.iter().any(|m| m.contains("field `speed`")));
    assert!(messages
        .iter()
        .any(|m| m.contains("no matching `CampaignFinished`")));
}

#[test]
fn semantic_clean_file_produces_nothing() {
    let report = lint_semantic();
    assert_eq!(
        report
            .findings
            .iter()
            .filter(|f| f.file == SEM_CLEAN)
            .count(),
        0,
        "{:?}",
        report
            .findings
            .iter()
            .filter(|f| f.file == SEM_CLEAN)
            .collect::<Vec<_>>()
    );
}

#[test]
fn semantic_waivers_suppress_and_are_reported() {
    let report = lint_semantic();
    assert_eq!(
        report
            .findings
            .iter()
            .filter(|f| f.file == SEM_WAIVED)
            .count(),
        0,
        "all violations in waived.rs carry waivers"
    );
    let waivers: Vec<_> = report
        .waivers
        .iter()
        .filter(|w| w.file == SEM_WAIVED)
        .collect();
    assert_eq!(waivers.len(), 5, "{waivers:?}");
    assert_eq!(waivers.iter().filter(|w| w.used).count(), 4);
    let unused: Vec<_> = waivers.iter().filter(|w| !w.used).collect();
    assert_eq!(unused.len(), 1);
    assert_eq!(unused[0].rule, Rule::UnitEscape);
}

#[test]
fn unit_escape_respects_the_dependency_graph() {
    let report = lint_semantic();
    // `trace` cannot name `sim`'s newtypes: raw primitives are fine there.
    assert_eq!(count(&report, Rule::UnitEscape, SEM_TRACE_RAW), 0);
    // `bench` can: the rule binds it even off the deterministic path.
    assert_eq!(count(&report, Rule::UnitEscape, SEM_OFFPATH), 1);
}

#[test]
fn concurrency_rules_do_not_bind_off_path_crates() {
    let report = lint_semantic();
    assert_eq!(count(&report, Rule::OrderSensitivity, SEM_OFFPATH), 0);
    assert_eq!(count(&report, Rule::SwallowedFallibility, SEM_OFFPATH), 0);
}

#[test]
fn semantic_rules_skip_test_context_files() {
    let report = lint_semantic();
    assert_eq!(
        report
            .findings
            .iter()
            .filter(|f| f.file == SEM_EXEMPT)
            .count(),
        0,
        "integration-test files are exempt from semantic rules"
    );
}

#[test]
fn newtype_and_schema_declarations_do_not_self_flag() {
    let report = lint_semantic();
    for file in ["crates/sim/src/units.rs", "crates/trace/src/event.rs"] {
        assert_eq!(
            report.findings.iter().filter(|f| f.file == file).count(),
            0,
            "declaration files must lint clean"
        );
    }
}
