//! The incremental-cache contract: the cache changes how much work a run
//! does, never what it reports. Cold, warm and corrupt-cache runs must all
//! produce byte-identical reports, and corruption must degrade to a full
//! re-scan with a typed state — never a panic.

use margins_lint::{lint_workspace, lint_workspace_incremental, sarif, CacheState};
use std::fs;
use std::path::{Path, PathBuf};

fn semantic_root() -> PathBuf {
    let manifest = option_env!("CARGO_MANIFEST_DIR")
        .map_or_else(|| std::env::current_dir().expect("cwd"), PathBuf::from);
    manifest.join("tests/fixtures/semantic")
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("margins-lint-{tag}-{}", std::process::id()))
}

fn copy_tree(from: &Path, to: &Path) {
    fs::create_dir_all(to).expect("mkdir");
    for entry in fs::read_dir(from).expect("read_dir") {
        let entry = entry.expect("entry");
        let src = entry.path();
        let dst = to.join(entry.file_name());
        if src.is_dir() {
            copy_tree(&src, &dst);
        } else {
            fs::copy(&src, &dst).expect("copy");
        }
    }
}

#[test]
fn cold_then_warm_runs_are_byte_identical_and_fully_cached() {
    let cache = temp_path("cache-warm");
    let _ = fs::remove_file(&cache);

    let (cold, cold_stats) =
        lint_workspace_incremental(&semantic_root(), Some(&cache)).expect("cold run");
    assert_eq!(cold_stats.cache_state, CacheState::Cold);
    assert_eq!(cold_stats.cache_hits, 0);
    assert_eq!(cold_stats.cache_misses, cold_stats.rust_files);

    let (warm, warm_stats) =
        lint_workspace_incremental(&semantic_root(), Some(&cache)).expect("warm run");
    assert_eq!(warm_stats.cache_state, CacheState::Warm);
    assert_eq!(
        warm_stats.cache_hits, warm_stats.rust_files,
        "an unchanged tree must hit the cache for every file"
    );
    assert_eq!(warm_stats.cache_misses, 0);

    assert_eq!(
        cold.to_json(),
        warm.to_json(),
        "JSON must not depend on the cache"
    );
    assert_eq!(
        sarif::to_sarif(&cold),
        sarif::to_sarif(&warm),
        "SARIF must be byte-identical cold vs incremental-cached"
    );

    // A plain full scan agrees too.
    let full = lint_workspace(&semantic_root()).expect("full scan");
    assert_eq!(full.to_json(), cold.to_json());

    let _ = fs::remove_file(&cache);
}

#[test]
fn corrupt_cache_degrades_to_full_scan_with_typed_state() {
    let cache = temp_path("cache-corrupt");
    fs::write(
        &cache,
        b"margins-lint-cache v2 ctx=zz\x00not hex\nF garbage\n",
    )
    .expect("plant corrupt cache");

    let (report, stats) =
        lint_workspace_incremental(&semantic_root(), Some(&cache)).expect("corrupt run");
    match &stats.cache_state {
        CacheState::Corrupt(msg) => {
            assert!(!msg.is_empty(), "corruption message says where and why")
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    assert_eq!(stats.cache_hits, 0, "nothing reusable from a corrupt cache");

    let baseline = lint_workspace(&semantic_root()).expect("full scan");
    assert_eq!(
        report.to_json(),
        baseline.to_json(),
        "corrupt cache must fall back to the full-scan report"
    );

    // The corrupt file was replaced by a valid cache: next run is warm.
    let (_, stats2) =
        lint_workspace_incremental(&semantic_root(), Some(&cache)).expect("recovered run");
    assert_eq!(stats2.cache_state, CacheState::Warm);
    assert_eq!(stats2.cache_misses, 0);

    let _ = fs::remove_file(&cache);
}

#[test]
fn edits_invalidate_precisely() {
    let tree = temp_path("tree-edit");
    let cache = temp_path("cache-edit");
    let _ = fs::remove_dir_all(&tree);
    let _ = fs::remove_file(&cache);
    copy_tree(&semantic_root(), &tree);

    let (cold, cold_stats) = lint_workspace_incremental(&tree, Some(&cache)).expect("cold run");

    // A comment-only edit re-lints just that file: its symbol summary is
    // unchanged, so the workspace context holds and everyone else hits.
    let clean = tree.join("crates/core/src/clean.rs");
    let mut src = fs::read_to_string(&clean).expect("read clean.rs");
    src.push_str("\n// trailing comment, no symbol change\n");
    fs::write(&clean, &src).expect("touch clean.rs");

    let (after_comment, stats) =
        lint_workspace_incremental(&tree, Some(&cache)).expect("comment run");
    assert_eq!(stats.cache_misses, 1, "only the edited file re-lints");
    assert_eq!(stats.cache_hits, cold_stats.rust_files - 1);
    assert_eq!(
        cold.to_json(),
        after_comment.to_json(),
        "a comment-only edit changes no findings"
    );

    // Declaring a new newtype changes the workspace context hash: every
    // file's cached findings are invalidated, not just the edited one.
    let units = tree.join("crates/sim/src/units.rs");
    let mut src = fs::read_to_string(&units).expect("read units.rs");
    src.push_str("\npub struct Megahertz(u32);\n");
    fs::write(&units, &src).expect("extend units.rs");

    let (_, stats) = lint_workspace_incremental(&tree, Some(&cache)).expect("context run");
    assert_eq!(
        stats.cache_hits, 0,
        "a symbol-table change must invalidate every cached finding"
    );
    assert_eq!(stats.cache_misses, stats.rust_files);

    let _ = fs::remove_dir_all(&tree);
    let _ = fs::remove_file(&cache);
}
