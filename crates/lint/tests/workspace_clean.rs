//! Tier-1 gate: the real workspace must lint clean.
//!
//! This is the `#[test]` form of `cargo run -p margins-lint -- --workspace
//! --deny`: zero unwaived findings, and no dead waivers rotting in the
//! tree either — with the full rule set L1–L10 active.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // MARGINS_WORKSPACE_ROOT lets hermetic sandboxes point this gate at a
    // checkout that lives elsewhere than the test binary's manifest.
    if let Ok(root) = std::env::var("MARGINS_WORKSPACE_ROOT") {
        return PathBuf::from(root);
    }
    let manifest = option_env!("CARGO_MANIFEST_DIR")
        .map_or_else(|| std::env::current_dir().expect("cwd"), PathBuf::from);
    // crates/lint -> workspace root.
    manifest
        .ancestors()
        .find(|a| a.join("Cargo.toml").is_file() && a.join("crates").is_dir())
        .expect("workspace root above crates/lint")
        .to_path_buf()
}

#[test]
fn workspace_has_no_unwaived_findings() {
    let report = margins_lint::lint_workspace(&workspace_root()).expect("workspace lints");
    assert!(
        report.files_scanned > 50,
        "sanity: expected to scan the whole workspace, saw {} files",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "workspace must lint clean:\n{}",
        report.render_human()
    );
}

#[test]
fn workspace_has_no_unused_waivers() {
    let report = margins_lint::lint_workspace(&workspace_root()).expect("workspace lints");
    let unused: Vec<_> = report.waivers.iter().filter(|w| !w.used).collect();
    assert!(
        unused.is_empty(),
        "every waiver must still suppress something: {unused:?}"
    );
}

#[test]
fn workspace_semantic_rules_see_the_symbol_table() {
    // The semantic pass must actually resolve workspace symbols: the sim
    // crate declares Millivolts, so the quantity registry must activate.
    // (An empty table would silently disable L7/L8 everywhere.)
    let root = workspace_root();
    let files = margins_lint::walk::walk(&root).expect("walk");
    let mut per_file = std::collections::BTreeMap::new();
    let mut manifests = std::collections::BTreeMap::new();
    for rel in &files {
        if rel == "Cargo.toml" || rel.ends_with("/Cargo.toml") {
            manifests.insert(
                rel.clone(),
                std::fs::read_to_string(root.join(rel)).unwrap(),
            );
        }
        if rel.ends_with(".rs") && margins_lint::rules::classify_path(rel).is_some() {
            let src = std::fs::read_to_string(root.join(rel)).unwrap();
            let parsed = margins_lint::parse::parse(&margins_lint::lexer::lex(&src).tokens);
            per_file.insert(rel.clone(), margins_lint::symbols::file_symbols(&parsed));
        }
    }
    let symbols = margins_lint::symbols::Symbols::build(&per_file, &manifests);
    assert!(
        symbols.newtypes.contains_key("Millivolts"),
        "sim's Millivolts newtype must be in the workspace symbol table"
    );
    assert!(
        !symbols.trace_schema.is_empty(),
        "the TraceEvent schema must be in the workspace symbol table"
    );
    assert!(
        symbols
            .active_quantities
            .iter()
            .any(|q| q.quantity.newtype == "Millivolts"),
        "the Millivolts quantity must be active"
    );
    assert!(
        symbols.crate_sees("core", "sim"),
        "core depends on sim, so L7 must bind core"
    );
    assert!(
        !symbols.crate_sees("trace", "sim"),
        "trace does not depend on sim, so L7 must not bind trace"
    );
}
