//! Tier-1 gate: the real workspace must lint clean.
//!
//! This is the `#[test]` form of `cargo run -p margins-lint -- --workspace
//! --deny`: zero unwaived findings, and no dead waivers rotting in the
//! tree either.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    let manifest = option_env!("CARGO_MANIFEST_DIR")
        .map_or_else(|| std::env::current_dir().expect("cwd"), PathBuf::from);
    // crates/lint -> workspace root.
    manifest
        .ancestors()
        .find(|a| a.join("Cargo.toml").is_file() && a.join("crates").is_dir())
        .expect("workspace root above crates/lint")
        .to_path_buf()
}

#[test]
fn workspace_has_no_unwaived_findings() {
    let report = margins_lint::lint_workspace(&workspace_root()).expect("workspace lints");
    assert!(
        report.files_scanned > 50,
        "sanity: expected to scan the whole workspace, saw {} files",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "workspace must lint clean:\n{}",
        report.render_human()
    );
}

#[test]
fn workspace_has_no_unused_waivers() {
    let report = margins_lint::lint_workspace(&workspace_root()).expect("workspace lints");
    let unused: Vec<_> = report.waivers.iter().filter(|w| !w.used).collect();
    assert!(
        unused.is_empty(),
        "every waiver must still suppress something: {unused:?}"
    );
}
