//! SARIF 2.1.0 exposition of a lint run.
//!
//! Emits the subset of SARIF that code-scanning consumers need: tool
//! driver metadata with the full rule table, and one `result` per finding
//! carrying a `physicalLocation` with `artifactLocation` + `region`.
//!
//! Like every serialized surface in this repo the output is
//! byte-deterministic: findings are emitted in the report's sorted order,
//! URIs are workspace-relative (never absolute, so two machines produce
//! identical bytes), and the writer is hand-rolled (no serde).

use crate::report::{json_str, Report};
use crate::rules::Rule;
use std::fmt::Write as _;

/// The schema the output declares conformance to.
pub const SARIF_SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// SARIF clamps positions to 1-based; stale-file findings carry line 0.
fn clamp(n: u32) -> u32 {
    n.max(1)
}

/// Renders the report as a SARIF 2.1.0 document.
#[must_use]
pub fn to_sarif(report: &Report) -> String {
    let rules = Rule::all();
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"$schema\": {},", json_str(SARIF_SCHEMA));
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"margins-lint\",\n");
    s.push_str("          \"informationUri\": \"https://example.invalid/voltmargin\",\n");
    s.push_str("          \"rules\": [\n");
    for (i, rule) in rules.iter().enumerate() {
        let _ = write!(
            s,
            "            {{\"id\": {}, \"name\": {}, \"shortDescription\": {{\"text\": {}}}}}",
            json_str(rule.label()),
            json_str(rule.name()),
            json_str(rule.summary())
        );
        s.push_str(if i + 1 == rules.len() { "\n" } else { ",\n" });
    }
    s.push_str("          ]\n        }\n      },\n");
    s.push_str("      \"results\": [");
    for (i, f) in report.findings.iter().enumerate() {
        let rule_index = rules.iter().position(|r| *r == f.rule).unwrap_or_default();
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            s,
            "        {{\"ruleId\": {}, \"ruleIndex\": {}, \"level\": \"error\", \"message\": {{\"text\": {}}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}",
            json_str(f.rule.label()),
            rule_index,
            json_str(&f.message),
            json_str(&f.file),
            clamp(f.line),
            clamp(f.col)
        );
    }
    s.push_str(if report.findings.is_empty() {
        "]\n"
    } else {
        "\n      ]\n"
    });
    s.push_str("    }\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, Rule};

    fn sample() -> Report {
        let mut r = Report {
            files_scanned: 1,
            findings: vec![
                Finding {
                    file: "crates/sim/src/a.rs".into(),
                    line: 3,
                    col: 7,
                    rule: Rule::UnitEscape,
                    message: "raw \"mv\" crossing".into(),
                },
                Finding {
                    file: "a.bak".into(),
                    line: 0,
                    col: 0,
                    rule: Rule::StaleFile,
                    message: "stale".into(),
                },
            ],
            waivers: Vec::new(),
        };
        r.sort();
        r
    }

    #[test]
    fn sarif_has_schema_rules_and_results() {
        let doc = to_sarif(&sample());
        assert!(doc.contains("\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""));
        assert!(doc.contains("\"version\": \"2.1.0\""));
        // All ten rules appear in the driver metadata.
        for rule in Rule::all() {
            assert!(doc.contains(&format!("\"id\": \"{}\"", rule.label())));
        }
        assert!(doc.contains("\"ruleId\": \"L7\""));
        assert!(doc.contains("\"uri\": \"crates/sim/src/a.rs\""));
        assert!(doc.contains("\"startLine\": 3"));
        assert!(doc.contains("raw \\\"mv\\\" crossing"));
    }

    #[test]
    fn sarif_clamps_zero_positions() {
        let doc = to_sarif(&sample());
        // The stale-file finding at line 0 must surface as line 1.
        assert!(doc.contains("\"startLine\": 1, \"startColumn\": 1"));
        assert!(!doc.contains("\"startLine\": 0"));
    }

    #[test]
    fn sarif_is_deterministic() {
        assert_eq!(to_sarif(&sample()), to_sarif(&sample()));
    }

    #[test]
    fn empty_report_renders_empty_results() {
        let mut r = Report::default();
        r.sort();
        let doc = to_sarif(&r);
        assert!(doc.contains("\"results\": []"));
    }
}
