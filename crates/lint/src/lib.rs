//! `margins-lint` — the workspace static-analysis pass enforcing the
//! determinism, unit-safety and no-panic invariants the reproduction's
//! distributional claims rest on.
//!
//! The paper's figures (safe `Vmin` per benchmark/core, severity, predictor
//! accuracy) are statements about *distributions* of system-level effects;
//! they only replicate if a fixed seed yields bit-identical campaigns. Six
//! rules guard that property:
//!
//! | rule | name | scope | invariant |
//! |------|------|-------|-----------|
//! | L1 | `unseeded-rng` | all non-test code | no `thread_rng`/`rand::random`/`from_entropy` |
//! | L2 | `hash-iter` | deterministic crates | no `HashMap`/`HashSet` (ordered containers only) |
//! | L3 | `float-eq` | deterministic crates | no `==`/`!=` on float voltage/model math |
//! | L4 | `no-panic` | deterministic crates | no `unwrap()`/`expect()` in library code |
//! | L5 | `wall-clock` | deterministic crates | no `Instant::now`/`SystemTime::now` |
//! | L6 | `stale-file` | whole tree | no `*.bak`/`*.orig`/`*.rej` files |
//!
//! The *deterministic crates* are `sim`, `core`, `energy`, `predict` and
//! `trace` —
//! everything between a campaign seed and a figure. Test code (`tests/`,
//! `benches/`, `examples/`, `#[cfg(test)]` modules) is exempt from L1–L5.
//!
//! Any rule can be waived per line with an explicit, reported comment:
//!
//! ```text
//! // lint: allow(no-panic) — validated at config build time
//! ```
//!
//! The linter is dependency-free by design: it lexes Rust itself (see
//! [`lexer`]) instead of using `syn`, so it builds in hermetic CI
//! sandboxes with no registry access, and its JSON report (see [`report`])
//! is byte-deterministic.
//!
//! Run it with `cargo run -p margins-lint -- --workspace [--deny]`, or in
//! tier-1 via the `workspace_clean` integration test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use report::Report;
use rules::FileOutcome;
use std::fs;
use std::io;
use std::path::Path;

pub use rules::{Finding, Rule, Waiver, DETERMINISTIC_CRATES};

/// Lints the workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml`).
///
/// # Errors
///
/// Returns any I/O error raised while walking or reading the tree.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let files = walk::walk(root)?;
    let mut report = Report::default();
    for rel in &files {
        let Some(scope) = rules::classify_path(rel) else {
            continue;
        };
        report.files_scanned += 1;
        if let Some(stale) = rules::check_stale_file(rel) {
            report.findings.push(stale);
        }
        if rel.ends_with(".rs") {
            let src = fs::read_to_string(root.join(rel))?;
            let FileOutcome { findings, waivers } = rules::lint_rust_file(rel, &src, scope);
            report.findings.extend(findings);
            report.waivers.extend(waivers);
        }
    }
    report.sort();
    Ok(report)
}
