//! `margins-lint` — the workspace static-analysis pass enforcing the
//! determinism, unit-safety and no-panic invariants the reproduction's
//! distributional claims rest on.
//!
//! The paper's figures (safe `Vmin` per benchmark/core, severity, predictor
//! accuracy) are statements about *distributions* of system-level effects;
//! they only replicate if a fixed seed yields bit-identical campaigns. Ten
//! rules guard that property:
//!
//! | rule | name | scope | invariant |
//! |------|------|-------|-----------|
//! | L1 | `unseeded-rng` | all non-test code | no `thread_rng`/`rand::random`/`from_entropy` |
//! | L2 | `hash-iter` | deterministic crates | no `HashMap`/`HashSet` (ordered containers only) |
//! | L3 | `float-eq` | deterministic crates | no `==`/`!=` on float voltage/model math |
//! | L4 | `no-panic` | deterministic crates | no `unwrap()`/`expect()` in library code |
//! | L5 | `wall-clock` | deterministic crates | no `Instant::now`/`SystemTime::now` |
//! | L6 | `stale-file` | whole tree | no `*.bak`/`*.orig`/`*.rej` files |
//! | L7 | `unit-escape` | all non-test code | no raw `u32`/`u8` quantities on `pub fn` boundaries where a workspace newtype exists |
//! | L8 | `span-balance` | all non-test code | `TraceEvent` uses match the schema; span opens are closed in the same fn |
//! | L9 | `order-sensitivity` | deterministic crates | thread-spawn sites route results through a reorder/finalizer path |
//! | L10 | `swallowed-fallibility` | deterministic crates | no `let _ =`/`drop()` of fallible I/O, cache and sink `Result`s |
//!
//! L1–L6 are token rules: each file is judged alone. L7–L10 are *semantic*
//! rules: a first pass parses every workspace file into items (see
//! [`parse`]) and merges their declarations into a cross-file symbol table
//! (see [`symbols`]); a second pass judges each file against that table.
//!
//! The *deterministic crates* are `sim`, `core`, `energy`, `predict`,
//! `trace` and `scope` —
//! everything between a campaign seed and a figure. Test code (`tests/`,
//! `benches/`, `examples/`, `#[cfg(test)]` modules) is exempt from code
//! rules.
//!
//! Any rule can be waived per line with an explicit, reported comment:
//!
//! ```text
//! // lint: allow(no-panic) — validated at config build time
//! ```
//!
//! The linter is dependency-free by design: it lexes Rust itself (see
//! [`lexer`]) instead of using `syn`, so it builds in hermetic CI
//! sandboxes with no registry access, and its JSON, SARIF (see [`sarif`])
//! and cache (see [`cache`]) surfaces are byte-deterministic — cold and
//! incremental-cached runs produce identical reports.
//!
//! Run it with `cargo run -p margins-lint -- --workspace [--deny]`, or in
//! tier-1 via the `workspace_clean` integration test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod symbols;
pub mod walk;

use report::Report;
use rules::FileOutcome;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;
use symbols::{fnv1a, FileSymbols, Symbols};

pub use rules::{Finding, Rule, Waiver, DETERMINISTIC_CRATES};

/// How the incremental cache participated in a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheState {
    /// No cache path was given; plain full scan.
    Disabled,
    /// No cache file existed yet; full scan, cache written.
    Cold,
    /// A cache was loaded and consulted.
    Warm,
    /// A cache existed but was malformed; full re-scan. The message says
    /// where and why — this is the typed degradation path, never a panic.
    Corrupt(String),
}

/// Run statistics, reported out-of-band (stderr) so the report bytes stay
/// identical between cold and cached runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintStats {
    /// Rust files considered by the lint pass.
    pub rust_files: usize,
    /// Files whose findings were reused from the cache.
    pub cache_hits: usize,
    /// Files lexed/parsed/linted fresh this run.
    pub cache_misses: usize,
    /// How the cache participated.
    pub cache_state: CacheState,
}

/// Lints the workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml`) with a full scan.
///
/// # Errors
///
/// Returns any I/O error raised while walking or reading the tree.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    Ok(lint_workspace_incremental(root, None)?.0)
}

/// Lints the workspace, consulting and refreshing the cache at
/// `cache_path` when given.
///
/// The produced [`Report`] is byte-identical to a full scan's: the cache
/// changes *how much work* a run does, never *what it reports*. A file's
/// cached outcome is reused only when its content hash **and** the
/// workspace context hash both match (semantic findings depend on other
/// files' declarations).
///
/// # Errors
///
/// Returns any I/O error raised while walking or reading the tree, or
/// writing the refreshed cache. A corrupt cache is *not* an error: it
/// degrades to a full re-scan recorded in [`LintStats::cache_state`].
pub fn lint_workspace_incremental(
    root: &Path,
    cache_path: Option<&Path>,
) -> io::Result<(Report, LintStats)> {
    let files = walk::walk(root)?;

    let (cache_state, old_cache) = match cache_path {
        None => (CacheState::Disabled, None),
        Some(p) => match cache::load(p) {
            cache::LoadOutcome::Missing => (CacheState::Cold, None),
            cache::LoadOutcome::Loaded(c) => (CacheState::Warm, Some(c)),
            cache::LoadOutcome::Corrupt(msg) => (CacheState::Corrupt(msg), None),
        },
    };

    // Pass 1: collect manifests, read every lintable Rust file, and build
    // its symbol summary — reusing cached summaries for unchanged files.
    struct Entry {
        rel: String,
        scope: rules::FileScope,
        src: String,
        hash: u64,
        cached: Option<cache::CachedFile>,
    }
    let mut manifests: BTreeMap<String, String> = BTreeMap::new();
    let mut entries: Vec<Entry> = Vec::new();
    let mut per_file_syms: BTreeMap<String, FileSymbols> = BTreeMap::new();
    let mut report = Report::default();

    for rel in &files {
        if rel == "Cargo.toml" || rel.ends_with("/Cargo.toml") {
            manifests.insert(rel.clone(), fs::read_to_string(root.join(rel))?);
        }
        let Some(scope) = rules::classify_path(rel) else {
            continue;
        };
        report.files_scanned += 1;
        if let Some(stale) = rules::check_stale_file(rel) {
            report.findings.push(stale);
        }
        if !rel.ends_with(".rs") {
            continue;
        }
        let src = fs::read_to_string(root.join(rel))?;
        let hash = fnv1a(src.as_bytes());
        let cached = old_cache
            .as_ref()
            .and_then(|c| c.files.get(rel))
            .filter(|f| f.hash == hash)
            .cloned();
        let syms = cached.as_ref().map_or_else(
            || symbols::file_symbols(&parse::parse(&lexer::lex(&src).tokens)),
            |f| f.symbols.clone(),
        );
        per_file_syms.insert(rel.clone(), syms);
        entries.push(Entry {
            rel: rel.clone(),
            scope,
            src,
            hash,
            cached,
        });
    }

    // Pass 2: merge the table, then judge each file against it. Cached
    // findings are valid only under the same workspace context.
    let symbols = Symbols::build(&per_file_syms, &manifests);
    let context = symbols.context_hash();
    let context_matches = old_cache.as_ref().is_some_and(|c| c.context == context);

    let mut stats = LintStats {
        rust_files: entries.len(),
        cache_hits: 0,
        cache_misses: 0,
        cache_state: CacheState::Disabled,
    };
    let mut new_cache = cache::Cache {
        context,
        files: BTreeMap::new(),
    };

    for e in entries {
        let (findings, waivers) = match e.cached {
            Some(c) if context_matches => {
                stats.cache_hits += 1;
                let findings = c
                    .findings
                    .iter()
                    .map(|f| Finding {
                        file: e.rel.clone(),
                        ..f.clone()
                    })
                    .collect::<Vec<_>>();
                let waivers = c
                    .waivers
                    .iter()
                    .map(|w| Waiver {
                        file: e.rel.clone(),
                        ..w.clone()
                    })
                    .collect::<Vec<_>>();
                new_cache.files.insert(e.rel.clone(), c);
                (findings, waivers)
            }
            _ => {
                stats.cache_misses += 1;
                let FileOutcome { findings, waivers } =
                    rules::lint_rust_file_semantic(&e.rel, &e.src, e.scope, &symbols);
                new_cache.files.insert(
                    e.rel.clone(),
                    cache::CachedFile {
                        hash: e.hash,
                        symbols: per_file_syms.get(&e.rel).cloned().unwrap_or_default(),
                        findings: findings.clone(),
                        waivers: waivers.clone(),
                    },
                );
                (findings, waivers)
            }
        };
        report.findings.extend(findings);
        report.waivers.extend(waivers);
    }

    if let Some(p) = cache_path {
        cache::store(p, &new_cache)?;
    }
    stats.cache_state = cache_state;

    report.sort();
    Ok((report, stats))
}
