//! Machine-readable (JSON) and human diagnostics for a lint run.
//!
//! The JSON writer is hand-rolled (no serde — the linter is hermetic) and
//! byte-deterministic: findings and waivers are emitted in sorted order
//! with sorted count maps, so two runs over the same tree produce
//! byte-identical reports — the linter holds itself to the invariant it
//! enforces.

use crate::rules::{Finding, Rule, Waiver, RULE_NAMES};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Everything a lint run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Workspace-relative files scanned (Rust files lexed + all files
    /// checked for staleness).
    pub files_scanned: usize,
    /// Unwaived findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Every waiver encountered, sorted, each flagged used/unused.
    pub waivers: Vec<Waiver>,
}

impl Report {
    /// Finalizes ordering so rendering is deterministic.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
        });
        self.waivers
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Count of findings per rule name, every rule present (0 when clean).
    #[must_use]
    pub fn findings_by_rule(&self) -> BTreeMap<&'static str, usize> {
        let mut map: BTreeMap<&'static str, usize> = RULE_NAMES.iter().map(|n| (*n, 0)).collect();
        for f in &self.findings {
            *map.entry(f.rule.name()).or_insert(0) += 1;
        }
        map
    }

    /// Count of waivers per rule name (only rules with waivers appear).
    #[must_use]
    pub fn waivers_by_rule(&self) -> BTreeMap<&'static str, usize> {
        let mut map = BTreeMap::new();
        for w in &self.waivers {
            *map.entry(w.rule.name()).or_insert(0) += 1;
        }
        map
    }

    /// Distinct rules with at least one finding.
    #[must_use]
    pub fn distinct_violated_rules(&self) -> Vec<Rule> {
        let mut rules: Vec<Rule> = self.findings.iter().map(|f| f.rule).collect();
        rules.sort();
        rules.dedup();
        rules
    }

    /// The byte-deterministic JSON form.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"tool\": \"margins-lint\",\n  \"schema_version\": 1,\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);

        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                s,
                "    {{\"rule\": {}, \"label\": {}, \"file\": {}, \"line\": {}, \"column\": {}, \"message\": {}}}",
                json_str(f.rule.name()),
                json_str(f.rule.label()),
                json_str(&f.file),
                f.line,
                f.col,
                json_str(&f.message)
            );
        }
        s.push_str(if self.findings.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });

        s.push_str("  \"waivers\": [");
        for (i, w) in self.waivers.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                s,
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"used\": {}}}",
                json_str(w.rule.name()),
                json_str(&w.file),
                w.line,
                w.used
            );
        }
        s.push_str(if self.waivers.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });

        s.push_str("  \"counts\": {\n    \"findings_by_rule\": {");
        let by_rule = self.findings_by_rule();
        for (i, (rule, n)) in by_rule.iter().enumerate() {
            let _ = write!(
                s,
                "{}{}: {}",
                if i == 0 { "" } else { ", " },
                json_str(rule),
                n
            );
        }
        s.push_str("},\n    \"waivers_by_rule\": {");
        for (i, (rule, n)) in self.waivers_by_rule().iter().enumerate() {
            let _ = write!(
                s,
                "{}{}: {}",
                if i == 0 { "" } else { ", " },
                json_str(rule),
                n
            );
        }
        let _ = write!(
            s,
            "}},\n    \"findings\": {},\n    \"waivers\": {}\n  }}\n}}\n",
            self.findings.len(),
            self.waivers.len()
        );
        s
    }

    /// `file:line:col: [rule] message` diagnostics plus a summary block.
    #[must_use]
    pub fn render_human(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            let _ = writeln!(
                s,
                "{}:{}:{}: [{}/{}] {}",
                f.file,
                f.line,
                f.col,
                f.rule.label(),
                f.rule.name(),
                f.message
            );
        }
        let _ = writeln!(
            s,
            "margins-lint: {} file(s) scanned, {} finding(s), {} waiver(s)",
            self.files_scanned,
            self.findings.len(),
            self.waivers.len()
        );
        for (rule, n) in self.findings_by_rule() {
            if n > 0 {
                let _ = writeln!(s, "  {n:>4}  {rule}");
            }
        }
        let unused: Vec<&Waiver> = self.waivers.iter().filter(|w| !w.used).collect();
        if !unused.is_empty() {
            let _ = writeln!(s, "unused waivers ({}):", unused.len());
            for w in unused {
                let _ = writeln!(s, "  {}:{}: allow({})", w.file, w.line, w.rule.name());
            }
        }
        s
    }
}

/// Escapes a string for JSON output.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn sample() -> Report {
        let mut r = Report {
            files_scanned: 2,
            findings: vec![
                Finding {
                    file: "crates/sim/src/b.rs".into(),
                    line: 9,
                    col: 4,
                    rule: Rule::NoPanic,
                    message: "unwrap() \"quoted\"".into(),
                },
                Finding {
                    file: "crates/sim/src/a.rs".into(),
                    line: 2,
                    col: 1,
                    rule: Rule::HashIter,
                    message: "m".into(),
                },
            ],
            waivers: vec![Waiver {
                file: "crates/sim/src/a.rs".into(),
                line: 5,
                rule: Rule::FloatEq,
                used: false,
            }],
        };
        r.sort();
        r
    }

    #[test]
    fn json_is_sorted_and_escaped() {
        let json = sample().to_json();
        let a = json.find("a.rs").unwrap();
        let b = json.find("b.rs").unwrap();
        assert!(a < b, "findings must be sorted by file");
        assert!(json.contains("unwrap() \\\"quoted\\\""));
        assert!(json.contains("\"findings\": 2"));
        assert!(json.contains("\"no-panic\": 1"));
        assert!(json.contains("\"unseeded-rng\": 0"));
    }

    #[test]
    fn json_is_deterministic() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn human_render_mentions_rule_labels() {
        let text = sample().render_human();
        assert!(text.contains("crates/sim/src/b.rs:9:4: [L4/no-panic]"));
        assert!(text.contains("unused waivers (1):"));
    }

    #[test]
    fn empty_report_is_valid() {
        let mut r = Report::default();
        r.sort();
        let json = r.to_json();
        assert!(json.contains("\"findings\": []"));
        assert!(json.contains("\"findings\": 0"));
    }
}
