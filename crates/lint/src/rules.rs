//! Rules L1–L6 and the waiver machinery.
//!
//! Every rule is a token-pattern check over [`crate::lexer::Lexed`] output,
//! scoped by file role (test code is exempt from code rules) and by crate
//! (determinism rules only bind the deterministic-path crates). Findings
//! can be waived with an explicit comment:
//!
//! ```text
//! // lint: allow(<rule>[, <rule>...]) — optional justification
//! ```
//!
//! placed either on the offending line or on its own line directly above.
//! Waivers are never silent: each one is recorded in the report with a
//! `used` flag so reviewers can see (and CI can count) every escape hatch.

use crate::lexer::{lex, Comment, Lexed, TokKind, Token};
use std::collections::BTreeSet;

/// Machine name of every rule, in L-number order.
pub const RULE_NAMES: [&str; 6] = [
    Rule::UnseededRng.name(),
    Rule::HashIter.name(),
    Rule::FloatEq.name(),
    Rule::NoPanic.name(),
    Rule::WallClock.name(),
    Rule::StaleFile.name(),
];

/// The lint rules, L1–L6 of the determinism/unit-safety invariant set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// L1: unseeded randomness (`thread_rng`, `rand::random`,
    /// `from_entropy`) outside test/bench code.
    UnseededRng,
    /// L2: `HashMap`/`HashSet` in deterministic-path crates — iteration
    /// order would leak scheduling/hashing noise into reproducible results.
    HashIter,
    /// L3: `==`/`!=` on floating-point voltage/frequency math.
    FloatEq,
    /// L4: `unwrap()`/`expect()` in non-test library code of
    /// deterministic-path crates.
    NoPanic,
    /// L5: wall-clock reads (`Instant::now`, `SystemTime::now`) inside
    /// fault/severity computation crates.
    WallClock,
    /// L6: stale editor/VCS droppings (`*.bak`, `*.orig`, `*.rej`) in tree.
    StaleFile,
}

impl Rule {
    /// The rule's machine name, used in reports and waiver comments.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Rule::UnseededRng => "unseeded-rng",
            Rule::HashIter => "hash-iter",
            Rule::FloatEq => "float-eq",
            Rule::NoPanic => "no-panic",
            Rule::WallClock => "wall-clock",
            Rule::StaleFile => "stale-file",
        }
    }

    /// The L-number label (`L1`…`L6`).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Rule::UnseededRng => "L1",
            Rule::HashIter => "L2",
            Rule::FloatEq => "L3",
            Rule::NoPanic => "L4",
            Rule::WallClock => "L5",
            Rule::StaleFile => "L6",
        }
    }

    /// Parses a waiver rule name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "unseeded-rng" => Some(Rule::UnseededRng),
            "hash-iter" => Some(Rule::HashIter),
            "float-eq" => Some(Rule::FloatEq),
            "no-panic" => Some(Rule::NoPanic),
            "wall-clock" => Some(Rule::WallClock),
            "stale-file" => Some(Rule::StaleFile),
            _ => None,
        }
    }
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Violated rule.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

/// One waiver comment found in a file.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Waiver {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// Line of the waiver comment.
    pub line: u32,
    /// Waived rule.
    pub rule: Rule,
    /// Whether a finding was actually suppressed by this waiver.
    pub used: bool,
}

/// How a file participates in linting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileScope {
    /// File lives in test/bench/example context: code rules don't apply.
    pub is_test_context: bool,
    /// File belongs to a deterministic-path crate
    /// (sim/core/energy/predict/trace/scope).
    pub is_deterministic_path: bool,
}

/// Result of linting one Rust source file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Unwaived findings.
    pub findings: Vec<Finding>,
    /// All waivers seen, with usage flags.
    pub waivers: Vec<Waiver>,
}

/// The crates whose results must be bit-reproducible: the simulator, the
/// characterization framework, the predictor, the energy models, the
/// trace subsystem (its serialized streams are part of the reproducible
/// surface), and the analytics crate (its reports and diffs gate CI on
/// byte equality).
pub const DETERMINISTIC_CRATES: [&str; 6] = ["sim", "core", "energy", "predict", "trace", "scope"];

/// Classifies `rel` (workspace-relative, `/`-separated) into a scope.
///
/// Returns `None` when the file must not be linted at all (lint fixtures,
/// VCS/build internals).
#[must_use]
pub fn classify_path(rel: &str) -> Option<FileScope> {
    let components: Vec<&str> = rel.split('/').collect();
    if components
        .iter()
        .any(|c| *c == ".git" || *c == "target" || *c == "fixtures")
    {
        return None;
    }
    let is_test_context = components
        .iter()
        .any(|c| *c == "tests" || *c == "benches" || *c == "examples");
    let is_deterministic_path = components.len() > 1
        && components[0] == "crates"
        && DETERMINISTIC_CRATES.contains(&components[1]);
    Some(FileScope {
        is_test_context,
        is_deterministic_path,
    })
}

/// Lints one Rust source file.
#[must_use]
pub fn lint_rust_file(rel: &str, src: &str, scope: FileScope) -> FileOutcome {
    let lexed = lex(src);
    let test_lines = test_line_spans(&lexed.tokens);
    let waivers = collect_waivers(&lexed, src);

    let mut raw: Vec<Finding> = Vec::new();
    if !scope.is_test_context {
        let in_test = |line: u32| test_lines.iter().any(|(a, b)| line >= *a && line <= *b);
        check_unseeded_rng(rel, &lexed.tokens, &in_test, &mut raw);
        if scope.is_deterministic_path {
            check_hash_iter(rel, &lexed.tokens, &in_test, &mut raw);
            check_float_eq(rel, &lexed.tokens, &in_test, &mut raw);
            check_no_panic(rel, &lexed.tokens, &in_test, &mut raw);
            check_wall_clock(rel, &lexed.tokens, &in_test, &mut raw);
        }
    }

    apply_waivers(rel, raw, waivers)
}

/// Resolves waivers against raw findings: a finding is suppressed when a
/// waiver for its rule targets its line.
fn apply_waivers(rel: &str, raw: Vec<Finding>, waivers: Vec<(Rule, u32, u32)>) -> FileOutcome {
    // (rule, comment line, target line)
    let mut used = vec![false; waivers.len()];
    let mut findings = Vec::new();
    for f in raw {
        let mut waived = false;
        for (i, (rule, _, target)) in waivers.iter().enumerate() {
            if *rule == f.rule && *target == f.line {
                used[i] = true;
                waived = true;
            }
        }
        if !waived {
            findings.push(f);
        }
    }
    let waivers = waivers
        .into_iter()
        .zip(used)
        .map(|((rule, line, _), used)| Waiver {
            file: rel.to_owned(),
            line,
            rule,
            used,
        })
        .collect();
    FileOutcome { findings, waivers }
}

/// Extracts `lint: allow(rule[, rule])` waivers from comments and computes
/// each waiver's target line: the comment's own line when code shares it,
/// otherwise the next line that carries code.
fn collect_waivers(lexed: &Lexed, src: &str) -> Vec<(Rule, u32, u32)> {
    let code_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    let last_line = src.lines().count() as u32;
    let mut out = Vec::new();
    for Comment { line, text } in &lexed.comments {
        // Doc comments (`///`, `//!`, `/** .. */`) never carry waivers —
        // they are rendered documentation, not annotations on code lines.
        if text.starts_with('/') || text.starts_with('!') || text.starts_with('*') {
            continue;
        }
        for rule in parse_waiver_rules(text) {
            let target = if code_lines.contains(line) {
                *line
            } else {
                (*line + 1..=last_line)
                    .find(|l| code_lines.contains(l))
                    .unwrap_or(*line)
            };
            out.push((rule, *line, target));
        }
    }
    out
}

/// Parses the rule list out of a `lint: allow(a, b)` comment.
fn parse_waiver_rules(comment: &str) -> Vec<Rule> {
    let Some(pos) = comment.find("lint:") else {
        return Vec::new();
    };
    let rest = comment[pos + "lint:".len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Vec::new();
    };
    let Some(end) = rest.find(')') else {
        return Vec::new();
    };
    rest[..end]
        .split(',')
        .filter_map(|name| Rule::from_name(name.trim()))
        .collect()
}

/// Computes `(first, last)` line spans of `#[cfg(test)]`-guarded items, so
/// in-file unit-test modules are exempt from code rules.
fn test_line_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].punct() == Some("#")
            && matches!(tokens.get(i + 1).and_then(Token::punct), Some("["))
        {
            let attr_line = tokens[i].line;
            let (attr_end, is_test_cfg) = scan_attribute(tokens, i + 1);
            if is_test_cfg {
                if let Some((_, close_line)) = item_body_span(tokens, attr_end) {
                    spans.push((attr_line, close_line));
                }
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    spans
}

/// Scans an attribute starting at its `[`; returns (index past `]`, whether
/// it is a `cfg(...)` containing the `test` flag or a bare `#[test]`).
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut idents = Vec::new();
    let mut j = open;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokKind::Punct(p) if p == "[" => depth += 1,
            TokKind::Punct(p) if p == "]" => {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            TokKind::Ident(s) => idents.push(s.as_str().to_owned()),
            _ => {}
        }
        j += 1;
    }
    let is_cfg_test =
        idents.first().is_some_and(|f| f == "cfg") && idents.iter().any(|s| s == "test");
    let is_bare_test = idents.len() == 1 && idents[0] == "test";
    (j, is_cfg_test || is_bare_test)
}

/// From just past a test attribute, skips any further attributes and finds
/// the brace-delimited body of the next item. Returns `(open, close)` lines.
fn item_body_span(tokens: &[Token], mut i: usize) -> Option<(u32, u32)> {
    // Skip subsequent outer attributes.
    while i < tokens.len() && tokens[i].punct() == Some("#") {
        if tokens.get(i + 1).and_then(Token::punct) == Some("[") {
            let (end, _) = scan_attribute(tokens, i + 1);
            i = end;
        } else {
            i += 1;
        }
    }
    // Find the item's opening brace; a `;` first means no body (`mod x;`).
    let mut j = i;
    while j < tokens.len() {
        match tokens[j].punct() {
            Some(";") => return None,
            Some("{") => break,
            _ => j += 1,
        }
    }
    if j >= tokens.len() {
        return None;
    }
    let open_line = tokens[j].line;
    let mut depth = 0usize;
    while j < tokens.len() {
        match tokens[j].punct() {
            Some("{") => depth += 1,
            Some("}") => {
                depth -= 1;
                if depth == 0 {
                    return Some((open_line, tokens[j].line));
                }
            }
            _ => {}
        }
        j += 1;
    }
    Some((open_line, tokens.last().map_or(open_line, |t| t.line)))
}

fn push(out: &mut Vec<Finding>, rel: &str, tok: &Token, rule: Rule, message: String) {
    out.push(Finding {
        file: rel.to_owned(),
        line: tok.line,
        col: tok.col,
        rule,
        message,
    });
}

/// L1: `thread_rng`, `rand::random`, `from_entropy`.
fn check_unseeded_rng(
    rel: &str,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if in_test(t.line) {
            continue;
        }
        match t.ident() {
            Some("thread_rng") => push(
                out,
                rel,
                t,
                Rule::UnseededRng,
                "thread_rng() draws OS entropy; seed an explicit StdRng instead".into(),
            ),
            Some("from_entropy") => push(
                out,
                rel,
                t,
                Rule::UnseededRng,
                "from_entropy() is unseeded; derive the seed from campaign coordinates".into(),
            ),
            Some("random")
                if i >= 2
                    && tokens[i - 1].punct() == Some("::")
                    && tokens[i - 2].ident() == Some("rand") =>
            {
                push(
                    out,
                    rel,
                    t,
                    Rule::UnseededRng,
                    "rand::random() draws OS entropy; seed an explicit StdRng instead".into(),
                );
            }
            _ => {}
        }
    }
}

/// L2: any `HashMap`/`HashSet` in deterministic-path code.
///
/// Iteration order is where the nondeterminism leaks, but *whether* a map
/// is iterated is a type-level question a token pass cannot settle — so the
/// rule is deliberately conservative: name the type at all and you must
/// either switch to an ordered container or leave an explicit waiver.
fn check_hash_iter(
    rel: &str,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for t in tokens {
        if in_test(t.line) {
            continue;
        }
        if let Some(name @ ("HashMap" | "HashSet")) = t.ident() {
            push(
                out,
                rel,
                t,
                Rule::HashIter,
                format!("{name} iteration order is nondeterministic on the reproducible path; use BTreeMap/BTreeSet or waive"),
            );
        }
    }
}

/// L3: `==`/`!=` adjacent to float literals or `as f64`/`as f32` casts.
fn check_float_eq(
    rel: &str,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    const WINDOW: usize = 3;
    for (i, t) in tokens.iter().enumerate() {
        if !matches!(t.punct(), Some("==" | "!=")) || in_test(t.line) {
            continue;
        }
        let lo = i.saturating_sub(WINDOW);
        let hi = (i + WINDOW + 1).min(tokens.len());
        let near = &tokens[lo..hi];
        let float_lit = near.iter().any(|n| n.kind == TokKind::Float);
        let float_cast = near
            .windows(2)
            .any(|w| w[0].ident() == Some("as") && matches!(w[1].ident(), Some("f64" | "f32")));
        if float_lit || float_cast {
            push(
                out,
                rel,
                t,
                Rule::FloatEq,
                "floating-point equality on model math; compare in integer millivolts or with an epsilon".into(),
            );
        }
    }
}

/// L4: `.unwrap()` / `.expect(` in non-test deterministic-path code.
fn check_no_panic(
    rel: &str,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if in_test(t.line) {
            continue;
        }
        let called = matches!(tokens.get(i + 1).and_then(Token::punct), Some("("));
        let method = i > 0 && tokens[i - 1].punct() == Some(".");
        if !(called && method) {
            continue;
        }
        match t.ident() {
            Some("unwrap") => push(
                out,
                rel,
                t,
                Rule::NoPanic,
                "unwrap() can panic mid-campaign; return a typed error or waive with justification"
                    .into(),
            ),
            Some("expect") => push(
                out,
                rel,
                t,
                Rule::NoPanic,
                "expect() can panic mid-campaign; return a typed error or waive with justification"
                    .into(),
            ),
            _ => {}
        }
    }
}

/// L5: `Instant::now` / `SystemTime::now` on the deterministic path.
fn check_wall_clock(
    rel: &str,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if in_test(t.line) {
            continue;
        }
        if t.ident() == Some("now")
            && i >= 2
            && tokens[i - 1].punct() == Some("::")
            && matches!(tokens[i - 2].ident(), Some("Instant" | "SystemTime"))
        {
            push(
                out,
                rel,
                t,
                Rule::WallClock,
                format!(
                    "{}::now() injects wall-clock state into deterministic computation; thread simulated time through instead",
                    tokens[i - 2].ident().unwrap_or_default()
                ),
            );
        }
    }
}

/// L6: stale file extensions. Applies to *paths*, not contents.
#[must_use]
pub fn check_stale_file(rel: &str) -> Option<Finding> {
    let stale = [".bak", ".orig", ".rej"]
        .iter()
        .find(|ext| rel.ends_with(**ext))?;
    Some(Finding {
        file: rel.to_owned(),
        line: 0,
        col: 0,
        rule: Rule::StaleFile,
        message: format!("stale `{stale}` file checked into the tree; delete it"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DET: FileScope = FileScope {
        is_test_context: false,
        is_deterministic_path: true,
    };

    fn lint(src: &str) -> FileOutcome {
        lint_rust_file("crates/sim/src/x.rs", src, DET)
    }

    fn rules_of(out: &FileOutcome) -> Vec<Rule> {
        out.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unwrap_and_expect_flagged() {
        let out = lint("fn f() { x.unwrap(); y.expect(\"msg\"); }");
        assert_eq!(rules_of(&out), vec![Rule::NoPanic, Rule::NoPanic]);
    }

    #[test]
    fn unwrap_in_cfg_test_module_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n fn g() { x.unwrap(); }\n}\n";
        assert!(lint(src).findings.is_empty());
    }

    #[test]
    fn unwrap_or_else_not_flagged() {
        let out = lint("fn f() { x.unwrap_or_else(|| 3); x.unwrap_or(1); }");
        assert!(out.findings.is_empty());
    }

    #[test]
    fn waiver_same_line_and_line_above() {
        let same = "fn f() { x.unwrap(); } // lint: allow(no-panic) — invariant";
        let out = lint(same);
        assert!(out.findings.is_empty());
        assert_eq!(out.waivers.len(), 1);
        assert!(out.waivers[0].used);

        let above = "fn f() {\n // lint: allow(no-panic) — invariant\n x.unwrap();\n}";
        assert!(lint(above).findings.is_empty());
    }

    #[test]
    fn unused_waiver_reported_unused() {
        let out = lint("// lint: allow(no-panic)\nfn f() { let a = 1; }");
        assert!(out.findings.is_empty());
        assert_eq!(out.waivers.len(), 1);
        assert!(!out.waivers[0].used);
    }

    #[test]
    fn waiver_only_covers_its_rule() {
        let src = "fn f() { x.unwrap(); } // lint: allow(hash-iter)";
        let out = lint(src);
        assert_eq!(rules_of(&out), vec![Rule::NoPanic]);
    }

    #[test]
    fn hashmap_flagged_only_on_deterministic_path() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        assert_eq!(lint(src).findings.len(), 3);
        let other = lint_rust_file(
            "crates/bench/src/x.rs",
            src,
            FileScope {
                is_test_context: false,
                is_deterministic_path: false,
            },
        );
        assert!(other.findings.is_empty());
    }

    #[test]
    fn float_eq_heuristics() {
        let out = lint("fn f(v: f64) { if v == 3.3 {} if (v as f64) != w {} }");
        assert_eq!(rules_of(&out), vec![Rule::FloatEq, Rule::FloatEq]);
        // Integer comparisons and range patterns stay clean.
        assert!(lint("fn f(v: u32) { if v == 905 {} let r = 0..10; }")
            .findings
            .is_empty());
    }

    #[test]
    fn unseeded_rng_applies_everywhere_nontest() {
        let src = "fn f() { let r = rand::thread_rng(); let x: u8 = rand::random(); let s = StdRng::from_entropy(); }";
        let out = lint_rust_file(
            "crates/bench/src/x.rs",
            src,
            FileScope {
                is_test_context: false,
                is_deterministic_path: false,
            },
        );
        assert_eq!(
            rules_of(&out),
            vec![Rule::UnseededRng, Rule::UnseededRng, Rule::UnseededRng]
        );
    }

    #[test]
    fn wall_clock_flagged() {
        let out = lint("fn f() { let t = std::time::Instant::now(); }");
        assert_eq!(rules_of(&out), vec![Rule::WallClock]);
    }

    #[test]
    fn test_context_files_are_exempt() {
        let out = lint_rust_file(
            "crates/sim/tests/t.rs",
            "fn f() { x.unwrap(); thread_rng(); }",
            FileScope {
                is_test_context: true,
                is_deterministic_path: true,
            },
        );
        assert!(out.findings.is_empty());
    }

    #[test]
    fn classify_paths() {
        assert!(classify_path("crates/lint/tests/fixtures/seedlike/x.rs").is_none());
        assert!(classify_path("target/debug/x.rs").is_none());
        let s = classify_path("crates/sim/src/volt.rs").unwrap();
        assert!(s.is_deterministic_path && !s.is_test_context);
        let t = classify_path("crates/sim/tests/proptest_sim.rs").unwrap();
        assert!(t.is_test_context);
        let b = classify_path("crates/bench/src/lib.rs").unwrap();
        assert!(!b.is_deterministic_path);
        let tr = classify_path("crates/trace/src/sink.rs").unwrap();
        assert!(tr.is_deterministic_path && !tr.is_test_context);
        let root = classify_path("src/bin/voltmargin.rs").unwrap();
        assert!(!root.is_deterministic_path && !root.is_test_context);
    }

    #[test]
    fn stale_file_rule() {
        assert!(check_stale_file("crates/bench/src/lib.rs.bak").is_some());
        assert!(check_stale_file("crates/bench/src/lib.rs").is_none());
        assert!(check_stale_file("a/b.orig").is_some());
    }

    #[test]
    fn tokens_in_strings_do_not_fire() {
        let src = r#"fn f() { let s = "x.unwrap() HashMap thread_rng"; }"#;
        assert!(lint(src).findings.is_empty());
    }
}
