//! Rules L1–L10 and the waiver machinery.
//!
//! Rules L1–L6 are token-pattern checks over [`crate::lexer::Lexed`]
//! output, scoped by file role (test code is exempt from code rules) and
//! by crate (determinism rules only bind the deterministic-path crates).
//! Rules L7–L10 are semantic checks over the item-level parse
//! ([`crate::parse`]) and the workspace symbol table
//! ([`crate::symbols`]): unit-escape at `pub fn` boundaries, trace-span
//! balance and event-schema conformance, order-sensitive spawn sites, and
//! swallowed fallibility. Findings can be waived with an explicit comment:
//!
//! ```text
//! // lint: allow(<rule>[, <rule>...]) — optional justification
//! ```
//!
//! placed either on the offending line or on its own line directly above.
//! Waivers are never silent: each one is recorded in the report with a
//! `used` flag so reviewers can see (and CI can count) every escape hatch.

use crate::lexer::{lex, Comment, Lexed, TokKind, Token};
use crate::parse::{self, ItemKind, ParsedFile};
use crate::symbols::{crate_of, ty_mentions, Symbols};
use std::collections::BTreeSet;

/// Machine name of every rule, in L-number order.
pub const RULE_NAMES: [&str; 10] = [
    Rule::UnseededRng.name(),
    Rule::HashIter.name(),
    Rule::FloatEq.name(),
    Rule::NoPanic.name(),
    Rule::WallClock.name(),
    Rule::StaleFile.name(),
    Rule::UnitEscape.name(),
    Rule::SpanBalance.name(),
    Rule::OrderSensitivity.name(),
    Rule::SwallowedFallibility.name(),
];

/// The lint rules, L1–L10 of the determinism/unit-safety invariant set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// L1: unseeded randomness (`thread_rng`, `rand::random`,
    /// `from_entropy`) outside test/bench code.
    UnseededRng,
    /// L2: `HashMap`/`HashSet` in deterministic-path crates — iteration
    /// order would leak scheduling/hashing noise into reproducible results.
    HashIter,
    /// L3: `==`/`!=` on floating-point voltage/frequency math.
    FloatEq,
    /// L4: `unwrap()`/`expect()` in non-test library code of
    /// deterministic-path crates.
    NoPanic,
    /// L5: wall-clock reads (`Instant::now`, `SystemTime::now`) inside
    /// fault/severity computation crates.
    WallClock,
    /// L6: stale editor/VCS droppings (`*.bak`, `*.orig`, `*.rej`) in tree.
    StaleFile,
    /// L7: a raw primitive carrying a typed quantity (`mv: u32`,
    /// `core: u8`) across a `pub fn` boundary of a crate that can see the
    /// workspace newtype for that quantity.
    UnitEscape,
    /// L8: a trace span opened (`CampaignStarted`/`SweepStarted`
    /// constructed) without its closing event in the same function, or an
    /// event constructor/pattern naming variants or fields that are not in
    /// the `TraceEvent` schema.
    SpanBalance,
    /// L9: a thread-spawn site in a deterministic-path crate whose
    /// enclosing function shows no reorder/finalize step, so worker
    /// completion order could leak into results.
    OrderSensitivity,
    /// L10: a discarded `Result` (`let _ =` / `drop(...)`) from an I/O,
    /// sink or always-fallible workspace call on the deterministic path.
    SwallowedFallibility,
}

impl Rule {
    /// The rule's machine name, used in reports and waiver comments.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Rule::UnseededRng => "unseeded-rng",
            Rule::HashIter => "hash-iter",
            Rule::FloatEq => "float-eq",
            Rule::NoPanic => "no-panic",
            Rule::WallClock => "wall-clock",
            Rule::StaleFile => "stale-file",
            Rule::UnitEscape => "unit-escape",
            Rule::SpanBalance => "span-balance",
            Rule::OrderSensitivity => "order-sensitivity",
            Rule::SwallowedFallibility => "swallowed-fallibility",
        }
    }

    /// The L-number label (`L1`…`L10`).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Rule::UnseededRng => "L1",
            Rule::HashIter => "L2",
            Rule::FloatEq => "L3",
            Rule::NoPanic => "L4",
            Rule::WallClock => "L5",
            Rule::StaleFile => "L6",
            Rule::UnitEscape => "L7",
            Rule::SpanBalance => "L8",
            Rule::OrderSensitivity => "L9",
            Rule::SwallowedFallibility => "L10",
        }
    }

    /// One-line description of the invariant, used by SARIF rule metadata
    /// and the `--explain` subcommand.
    #[must_use]
    pub const fn summary(self) -> &'static str {
        match self {
            Rule::UnseededRng => {
                "no OS-entropy randomness outside test code; campaigns must replay from their seed"
            }
            Rule::HashIter => {
                "no HashMap/HashSet on the deterministic path; iteration order must be stable"
            }
            Rule::FloatEq => {
                "no ==/!= on floating-point model math; compare in integer millivolts or epsilon"
            }
            Rule::NoPanic => {
                "no unwrap()/expect() in deterministic-path library code; return typed errors"
            }
            Rule::WallClock => {
                "no wall-clock reads on the deterministic path; thread modelled time through"
            }
            Rule::StaleFile => "no stale editor/VCS droppings (*.bak, *.orig, *.rej) in the tree",
            Rule::UnitEscape => {
                "no raw primitives carrying typed quantities (mV, MHz, core ids) across pub fn boundaries"
            }
            Rule::SpanBalance => {
                "trace spans must close in the function that opens them, and event constructors must match the TraceEvent schema"
            }
            Rule::OrderSensitivity => {
                "thread-spawn sites must route results through a reorder/finalize step before order-sensitive sinks"
            }
            Rule::SwallowedFallibility => {
                "no silently discarded Results from I/O, sink or always-fallible workspace calls"
            }
        }
    }

    /// Long-form rationale, example and waiver syntax, printed by
    /// `margins-lint --explain <rule>`.
    #[must_use]
    pub const fn explain(self) -> &'static str {
        match self {
            Rule::UnseededRng => {
                "\
Why: the paper's Vmin/severity figures are distributions over seeded
campaigns; any OS-entropy draw makes a run unrepeatable and its data
point unverifiable.

Bad:   let mut rng = rand::thread_rng();
Good:  let mut rng = StdRng::seed_from_u64(config.seed);

Waive: // lint: allow(unseeded-rng) — <why this site may be nondeterministic>"
            }
            Rule::HashIter => {
                "\
Why: HashMap/HashSet iteration order depends on the hasher's random
state, so anything derived from iteration (reports, caches, traces)
changes between runs. Deterministic crates use BTreeMap/BTreeSet.

Bad:   let mut by_core: HashMap<u8, Vec<Run>> = HashMap::new();
Good:  let mut by_core: BTreeMap<u8, Vec<Run>> = BTreeMap::new();

Waive: // lint: allow(hash-iter) — <why order cannot reach any output>"
            }
            Rule::FloatEq => {
                "\
Why: float equality on model math silently depends on operation order
and optimization level; voltage grids are integer millivolts precisely
so comparisons stay exact.

Bad:   if severity == 0.15 { ... }
Good:  if (severity - 0.15).abs() < 1e-9 { ... }   // or compare in mV

Waive: // lint: allow(float-eq) — <why exact bit equality is intended>"
            }
            Rule::NoPanic => {
                "\
Why: a panic in library code aborts a multi-hour characterization
campaign and throws away every completed sweep; fallible paths must
return typed errors the runner can log and recover from.

Bad:   let prior = priors.get(&key).unwrap();
Good:  let Some(prior) = priors.get(&key) else { return Err(...) };

Waive: // lint: allow(no-panic) — <the invariant that makes this infallible>"
            }
            Rule::WallClock => {
                "\
Why: the campaign clock is modelled (sum of modelled run durations), so
results are identical on any machine at any load; reading the host
clock leaks real time into that surface.

Bad:   let t0 = std::time::Instant::now();
Good:  let t = finalizer.clock_s();   // modelled campaign time

Waive: // lint: allow(wall-clock) — <why host time cannot reach results>"
            }
            Rule::StaleFile => {
                "\
Why: *.bak/*.orig/*.rej files are editor/VCS droppings; checked in,
they rot, shadow real sources in greps, and confuse the lint walker.

Fix: delete the file (its history lives in git).

Waive: not waivable — L6 applies to paths, not lines."
            }
            Rule::UnitEscape => {
                "\
Why: the workspace defines quantity newtypes (Millivolts, Megahertz,
CoreId) so a 980 can never be read as MHz where mV was meant — the
paper's entire dataset is keyed by (voltage, frequency, core). A raw
u32/u8 on a pub fn boundary reopens that confusion exactly where
crates hand values to each other. The rule fires only in crates that
can actually name the newtype (it is in their dependency closure).

Bad:   pub fn on_grid(self, start_mv: u32) -> ResolvedPrior
Good:  pub fn on_grid(self, start_mv: Millivolts) -> ResolvedPrior

Waive: // lint: allow(unit-escape) — <why the raw representation is the API>"
            }
            Rule::SpanBalance => {
                "\
Why: campaign traces are spans (CampaignStarted..CampaignFinished,
SweepStarted..SweepFinished); an open without its close truncates every
derived analysis (durations, diffs, OpenMetrics counters). Constructors
must also match the TraceEvent schema so serialized streams stay
replayable.

Bad:   obs.record(&TraceEvent::SweepStarted { program, dataset, core });
       // fn returns with no SweepFinished on this path
Good:  emit SweepFinished (or delegate to a helper that does) before
       every return of the same function.

Waive: // lint: allow(span-balance) — <which caller closes the span, and why
       that is guaranteed>"
            }
            Rule::OrderSensitivity => {
                "\
Why: PR 2's bug class — worker threads finishing in scheduler order
wrote events straight into an order-sensitive sink, so two identical
campaigns produced different traces. Every spawn site on the
deterministic path must re-merge results in canonical order (reorder
buffer, BTreeMap staging, StreamFinalizer) before anything ordered
consumes them.

Bad:   scope.spawn(move || sink.write(run(item)));
Good:  scope.spawn(move || tx.send((idx, run(item))));
       // ...then drain via a BTreeMap keyed by idx / StreamFinalizer.

Waive: // lint: allow(order-sensitivity) — <why completion order cannot
       reach any output>"
            }
            Rule::SwallowedFallibility => {
                "\
Why: a silently dropped Result from I/O, sink or cache calls turns a
half-written campaign cache or truncated trace into 'success'; the
stale data then poisons every later incremental run. Handle the error,
propagate it, or own the discard with a waiver.

Bad:   let _ = self.writer.flush();
Good:  self.writer.flush().map_err(CacheError::Io)?;

Waive: // lint: allow(swallowed-fallibility) — <why best-effort is correct here>"
            }
        }
    }

    /// Parses a waiver rule name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "unseeded-rng" => Some(Rule::UnseededRng),
            "hash-iter" => Some(Rule::HashIter),
            "float-eq" => Some(Rule::FloatEq),
            "no-panic" => Some(Rule::NoPanic),
            "wall-clock" => Some(Rule::WallClock),
            "stale-file" => Some(Rule::StaleFile),
            "unit-escape" => Some(Rule::UnitEscape),
            "span-balance" => Some(Rule::SpanBalance),
            "order-sensitivity" => Some(Rule::OrderSensitivity),
            "swallowed-fallibility" => Some(Rule::SwallowedFallibility),
            _ => None,
        }
    }

    /// All rules, in L-number order.
    #[must_use]
    pub const fn all() -> [Rule; 10] {
        [
            Rule::UnseededRng,
            Rule::HashIter,
            Rule::FloatEq,
            Rule::NoPanic,
            Rule::WallClock,
            Rule::StaleFile,
            Rule::UnitEscape,
            Rule::SpanBalance,
            Rule::OrderSensitivity,
            Rule::SwallowedFallibility,
        ]
    }
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Violated rule.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

/// One waiver comment found in a file.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Waiver {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// Line of the waiver comment.
    pub line: u32,
    /// Waived rule.
    pub rule: Rule,
    /// Whether a finding was actually suppressed by this waiver.
    pub used: bool,
}

/// How a file participates in linting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileScope {
    /// File lives in test/bench/example context: code rules don't apply.
    pub is_test_context: bool,
    /// File belongs to a deterministic-path crate
    /// (sim/core/energy/predict/trace/scope).
    pub is_deterministic_path: bool,
}

/// Result of linting one Rust source file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Unwaived findings.
    pub findings: Vec<Finding>,
    /// All waivers seen, with usage flags.
    pub waivers: Vec<Waiver>,
}

/// The crates whose results must be bit-reproducible: the simulator, the
/// characterization framework, the predictor, the energy models, the
/// trace subsystem (its serialized streams are part of the reproducible
/// surface), and the analytics crate (its reports and diffs gate CI on
/// byte equality).
pub const DETERMINISTIC_CRATES: [&str; 6] = ["sim", "core", "energy", "predict", "trace", "scope"];

/// Classifies `rel` (workspace-relative, `/`-separated) into a scope.
///
/// Returns `None` when the file must not be linted at all (lint fixtures,
/// VCS/build internals).
#[must_use]
pub fn classify_path(rel: &str) -> Option<FileScope> {
    let components: Vec<&str> = rel.split('/').collect();
    if components
        .iter()
        .any(|c| *c == ".git" || *c == "target" || *c == "fixtures")
    {
        return None;
    }
    let is_test_context = components
        .iter()
        .any(|c| *c == "tests" || *c == "benches" || *c == "examples");
    let is_deterministic_path = components.len() > 1
        && components[0] == "crates"
        && DETERMINISTIC_CRATES.contains(&components[1]);
    Some(FileScope {
        is_test_context,
        is_deterministic_path,
    })
}

/// Lints one Rust source file with the token rules L1–L6 only.
///
/// The full semantic pass (L1–L10) is [`lint_rust_file_semantic`]; this
/// entry point exists for callers without a workspace symbol table.
#[must_use]
pub fn lint_rust_file(rel: &str, src: &str, scope: FileScope) -> FileOutcome {
    lint_file(rel, src, scope, None)
}

/// Lints one Rust source file with all rules L1–L10, resolving the
/// semantic rules against the workspace symbol table.
#[must_use]
pub fn lint_rust_file_semantic(
    rel: &str,
    src: &str,
    scope: FileScope,
    symbols: &Symbols,
) -> FileOutcome {
    lint_file(rel, src, scope, Some(symbols))
}

fn lint_file(rel: &str, src: &str, scope: FileScope, symbols: Option<&Symbols>) -> FileOutcome {
    let lexed = lex(src);
    let test_lines = test_line_spans(&lexed.tokens);
    let waivers = collect_waivers(&lexed, src);

    let mut raw: Vec<Finding> = Vec::new();
    if !scope.is_test_context {
        let in_test = |line: u32| test_lines.iter().any(|(a, b)| line >= *a && line <= *b);
        check_unseeded_rng(rel, &lexed.tokens, &in_test, &mut raw);
        if scope.is_deterministic_path {
            check_hash_iter(rel, &lexed.tokens, &in_test, &mut raw);
            check_float_eq(rel, &lexed.tokens, &in_test, &mut raw);
            check_no_panic(rel, &lexed.tokens, &in_test, &mut raw);
            check_wall_clock(rel, &lexed.tokens, &in_test, &mut raw);
        }
        if let Some(symbols) = symbols {
            let parsed = parse::parse(&lexed.tokens);
            check_unit_escape(rel, &parsed, symbols, &in_test, &mut raw);
            check_span_balance(rel, &lexed.tokens, &parsed, symbols, &in_test, &mut raw);
            if scope.is_deterministic_path {
                check_order_sensitivity(rel, &lexed.tokens, &parsed, &in_test, &mut raw);
                check_swallowed_fallibility(rel, &lexed.tokens, symbols, &in_test, &mut raw);
            }
        }
    }

    apply_waivers(rel, raw, waivers)
}

/// Resolves waivers against raw findings: a finding is suppressed when a
/// waiver for its rule targets its line.
fn apply_waivers(rel: &str, raw: Vec<Finding>, waivers: Vec<(Rule, u32, u32)>) -> FileOutcome {
    // (rule, comment line, target line)
    let mut used = vec![false; waivers.len()];
    let mut findings = Vec::new();
    for f in raw {
        let mut waived = false;
        for (i, (rule, _, target)) in waivers.iter().enumerate() {
            if *rule == f.rule && *target == f.line {
                used[i] = true;
                waived = true;
            }
        }
        if !waived {
            findings.push(f);
        }
    }
    let waivers = waivers
        .into_iter()
        .zip(used)
        .map(|((rule, line, _), used)| Waiver {
            file: rel.to_owned(),
            line,
            rule,
            used,
        })
        .collect();
    FileOutcome { findings, waivers }
}

/// Extracts `lint: allow(rule[, rule])` waivers from comments and computes
/// each waiver's target line: the comment's own line when code shares it,
/// otherwise the next line that carries code.
fn collect_waivers(lexed: &Lexed, src: &str) -> Vec<(Rule, u32, u32)> {
    let code_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    let last_line = src.lines().count() as u32;
    let mut out = Vec::new();
    for Comment { line, text } in &lexed.comments {
        // Doc comments (`///`, `//!`, `/** .. */`) never carry waivers —
        // they are rendered documentation, not annotations on code lines.
        if text.starts_with('/') || text.starts_with('!') || text.starts_with('*') {
            continue;
        }
        for rule in parse_waiver_rules(text) {
            let target = if code_lines.contains(line) {
                *line
            } else {
                (*line + 1..=last_line)
                    .find(|l| code_lines.contains(l))
                    .unwrap_or(*line)
            };
            out.push((rule, *line, target));
        }
    }
    out
}

/// Parses the rule list out of a `lint: allow(a, b)` comment.
fn parse_waiver_rules(comment: &str) -> Vec<Rule> {
    let Some(pos) = comment.find("lint:") else {
        return Vec::new();
    };
    let rest = comment[pos + "lint:".len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Vec::new();
    };
    let Some(end) = rest.find(')') else {
        return Vec::new();
    };
    rest[..end]
        .split(',')
        .filter_map(|name| Rule::from_name(name.trim()))
        .collect()
}

/// Computes `(first, last)` line spans of `#[cfg(test)]`-guarded items, so
/// in-file unit-test modules are exempt from code rules.
fn test_line_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].punct() == Some("#")
            && matches!(tokens.get(i + 1).and_then(Token::punct), Some("["))
        {
            let attr_line = tokens[i].line;
            let (attr_end, is_test_cfg) = scan_attribute(tokens, i + 1);
            if is_test_cfg {
                if let Some((_, close_line)) = item_body_span(tokens, attr_end) {
                    spans.push((attr_line, close_line));
                }
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    spans
}

/// Scans an attribute starting at its `[`; returns (index past `]`, whether
/// it is a `cfg(...)` containing the `test` flag or a bare `#[test]`).
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut idents = Vec::new();
    let mut j = open;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokKind::Punct(p) if p == "[" => depth += 1,
            TokKind::Punct(p) if p == "]" => {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            TokKind::Ident(s) => idents.push(s.as_str().to_owned()),
            _ => {}
        }
        j += 1;
    }
    let is_cfg_test =
        idents.first().is_some_and(|f| f == "cfg") && idents.iter().any(|s| s == "test");
    let is_bare_test = idents.len() == 1 && idents[0] == "test";
    (j, is_cfg_test || is_bare_test)
}

/// From just past a test attribute, skips any further attributes and finds
/// the brace-delimited body of the next item. Returns `(open, close)` lines.
fn item_body_span(tokens: &[Token], mut i: usize) -> Option<(u32, u32)> {
    // Skip subsequent outer attributes.
    while i < tokens.len() && tokens[i].punct() == Some("#") {
        if tokens.get(i + 1).and_then(Token::punct) == Some("[") {
            let (end, _) = scan_attribute(tokens, i + 1);
            i = end;
        } else {
            i += 1;
        }
    }
    // Find the item's opening brace; a `;` first means no body (`mod x;`).
    let mut j = i;
    while j < tokens.len() {
        match tokens[j].punct() {
            Some(";") => return None,
            Some("{") => break,
            _ => j += 1,
        }
    }
    if j >= tokens.len() {
        return None;
    }
    let open_line = tokens[j].line;
    let mut depth = 0usize;
    while j < tokens.len() {
        match tokens[j].punct() {
            Some("{") => depth += 1,
            Some("}") => {
                depth -= 1;
                if depth == 0 {
                    return Some((open_line, tokens[j].line));
                }
            }
            _ => {}
        }
        j += 1;
    }
    Some((open_line, tokens.last().map_or(open_line, |t| t.line)))
}

fn push(out: &mut Vec<Finding>, rel: &str, tok: &Token, rule: Rule, message: String) {
    out.push(Finding {
        file: rel.to_owned(),
        line: tok.line,
        col: tok.col,
        rule,
        message,
    });
}

/// L1: `thread_rng`, `rand::random`, `from_entropy`.
fn check_unseeded_rng(
    rel: &str,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if in_test(t.line) {
            continue;
        }
        match t.ident() {
            Some("thread_rng") => push(
                out,
                rel,
                t,
                Rule::UnseededRng,
                "thread_rng() draws OS entropy; seed an explicit StdRng instead".into(),
            ),
            Some("from_entropy") => push(
                out,
                rel,
                t,
                Rule::UnseededRng,
                "from_entropy() is unseeded; derive the seed from campaign coordinates".into(),
            ),
            Some("random")
                if i >= 2
                    && tokens[i - 1].punct() == Some("::")
                    && tokens[i - 2].ident() == Some("rand") =>
            {
                push(
                    out,
                    rel,
                    t,
                    Rule::UnseededRng,
                    "rand::random() draws OS entropy; seed an explicit StdRng instead".into(),
                );
            }
            _ => {}
        }
    }
}

/// L2: any `HashMap`/`HashSet` in deterministic-path code.
///
/// Iteration order is where the nondeterminism leaks, but *whether* a map
/// is iterated is a type-level question a token pass cannot settle — so the
/// rule is deliberately conservative: name the type at all and you must
/// either switch to an ordered container or leave an explicit waiver.
fn check_hash_iter(
    rel: &str,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for t in tokens {
        if in_test(t.line) {
            continue;
        }
        if let Some(name @ ("HashMap" | "HashSet")) = t.ident() {
            push(
                out,
                rel,
                t,
                Rule::HashIter,
                format!("{name} iteration order is nondeterministic on the reproducible path; use BTreeMap/BTreeSet or waive"),
            );
        }
    }
}

/// L3: `==`/`!=` adjacent to float literals or `as f64`/`as f32` casts.
fn check_float_eq(
    rel: &str,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    const WINDOW: usize = 3;
    for (i, t) in tokens.iter().enumerate() {
        if !matches!(t.punct(), Some("==" | "!=")) || in_test(t.line) {
            continue;
        }
        let lo = i.saturating_sub(WINDOW);
        let hi = (i + WINDOW + 1).min(tokens.len());
        let near = &tokens[lo..hi];
        let float_lit = near.iter().any(|n| n.kind == TokKind::Float);
        let float_cast = near
            .windows(2)
            .any(|w| w[0].ident() == Some("as") && matches!(w[1].ident(), Some("f64" | "f32")));
        if float_lit || float_cast {
            push(
                out,
                rel,
                t,
                Rule::FloatEq,
                "floating-point equality on model math; compare in integer millivolts or with an epsilon".into(),
            );
        }
    }
}

/// L4: `.unwrap()` / `.expect(` in non-test deterministic-path code.
fn check_no_panic(
    rel: &str,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if in_test(t.line) {
            continue;
        }
        let called = matches!(tokens.get(i + 1).and_then(Token::punct), Some("("));
        let method = i > 0 && tokens[i - 1].punct() == Some(".");
        if !(called && method) {
            continue;
        }
        match t.ident() {
            Some("unwrap") => push(
                out,
                rel,
                t,
                Rule::NoPanic,
                "unwrap() can panic mid-campaign; return a typed error or waive with justification"
                    .into(),
            ),
            Some("expect") => push(
                out,
                rel,
                t,
                Rule::NoPanic,
                "expect() can panic mid-campaign; return a typed error or waive with justification"
                    .into(),
            ),
            _ => {}
        }
    }
}

/// L5: `Instant::now` / `SystemTime::now` on the deterministic path.
fn check_wall_clock(
    rel: &str,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if in_test(t.line) {
            continue;
        }
        if t.ident() == Some("now")
            && i >= 2
            && tokens[i - 1].punct() == Some("::")
            && matches!(tokens[i - 2].ident(), Some("Instant" | "SystemTime"))
        {
            push(
                out,
                rel,
                t,
                Rule::WallClock,
                format!(
                    "{}::now() injects wall-clock state into deterministic computation; thread simulated time through instead",
                    tokens[i - 2].ident().unwrap_or_default()
                ),
            );
        }
    }
}

/// Whether a name denotes quantity `q` (`mv` exactly, or a `_mv` suffix).
fn name_denotes(name: &str, names: &[&str], suffixes: &[&str]) -> bool {
    names.iter().any(|n| name == *n) || suffixes.iter().any(|s| name.ends_with(s))
}

/// L7: raw primitives crossing `pub fn` boundaries where a workspace
/// newtype exists for the quantity.
fn check_unit_escape(
    rel: &str,
    parsed: &ParsedFile,
    symbols: &Symbols,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let Some(krate) = crate_of(rel) else { return };
    for item in &parsed.items {
        let ItemKind::Fn(sig) = &item.kind else {
            continue;
        };
        if !item.is_pub || item.in_trait_impl || in_test(item.line) {
            continue;
        }
        for aq in &symbols.active_quantities {
            let q = &aq.quantity;
            // The newtype's own impl is allowed to speak raw units.
            if item.owner.as_deref() == Some(q.newtype) {
                continue;
            }
            // The rule only binds crates that can actually name the newtype.
            if !symbols.crate_sees(&krate, &aq.def_crate) {
                continue;
            }
            for p in &sig.params {
                if name_denotes(&p.name, q.names, q.suffixes)
                    && q.raw.iter().any(|raw| ty_mentions(&p.ty, raw))
                    && !ty_mentions(&p.ty, q.newtype)
                {
                    out.push(Finding {
                        file: rel.to_owned(),
                        line: item.line,
                        col: item.col,
                        rule: Rule::UnitEscape,
                        message: format!(
                            "pub fn `{}` takes `{}: {}`; use the `{}` newtype from `{}` at public boundaries",
                            item.name, p.name, p.ty, q.newtype, aq.def_crate
                        ),
                    });
                }
            }
            if let Some(ret) = &sig.ret {
                if name_denotes(&item.name, q.names, q.suffixes)
                    && q.raw.iter().any(|raw| ty_mentions(ret, raw))
                    && !ty_mentions(ret, q.newtype)
                {
                    out.push(Finding {
                        file: rel.to_owned(),
                        line: item.line,
                        col: item.col,
                        rule: Rule::UnitEscape,
                        message: format!(
                            "pub fn `{}` returns `{}`; use the `{}` newtype from `{}` at public boundaries",
                            item.name, ret, q.newtype, aq.def_crate
                        ),
                    });
                }
            }
        }
    }
}

/// Span-open variants and the close variant that must balance each within
/// one function body.
const SPAN_PAIRS: [(&str, &str); 2] = [
    ("CampaignStarted", "CampaignFinished"),
    ("SweepStarted", "SweepFinished"),
];

/// One `TraceEvent::Variant` occurrence found by the L8 scanner.
struct EventUse {
    /// Index of the variant ident token.
    at: usize,
    variant: String,
    /// Named fields mentioned at brace depth 1 (`field:`), if braced.
    fields: Vec<String>,
    /// Whether the payload is an explicit construction: at least one
    /// `field:` and no `..` rest token. Match patterns use shorthand or
    /// `..`, so they never count as span opens.
    constructs: bool,
}

/// Scans token stream for `TraceEvent::Variant` uses and their payloads.
fn scan_event_uses(tokens: &[Token]) -> Vec<EventUse> {
    let mut uses = Vec::new();
    let mut i = 0usize;
    while i + 2 < tokens.len() {
        if tokens[i].ident() == Some("TraceEvent")
            && tokens[i + 1].punct() == Some("::")
            && matches!(tokens[i + 2].kind, TokKind::Ident(_))
        {
            let variant = tokens[i + 2].ident().unwrap_or_default().to_owned();
            let mut fields = Vec::new();
            let mut constructs = false;
            if tokens.get(i + 3).and_then(Token::punct) == Some("{") {
                let open = i + 3;
                let mut depth = 0usize;
                let mut close = open;
                for (j, t) in tokens.iter().enumerate().skip(open) {
                    match t.punct() {
                        Some("{") => depth += 1,
                        Some("}") => {
                            depth -= 1;
                            if depth == 0 {
                                close = j;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                let mut named = 0usize;
                let mut rest = false;
                let payload = if close > open {
                    &tokens[open + 1..close]
                } else {
                    &[]
                };
                for seg in parse::split_top_commas(payload) {
                    match (seg.first(), seg.get(1)) {
                        (Some(a), Some(b))
                            if matches!(a.kind, TokKind::Ident(_)) && b.punct() == Some(":") =>
                        {
                            fields.push(a.ident().unwrap_or_default().to_owned());
                            named += 1;
                        }
                        (Some(a), _) if matches!(a.kind, TokKind::Ident(_)) => {
                            // Shorthand `field` — a field mention either way.
                            fields.push(a.ident().unwrap_or_default().to_owned());
                        }
                        (Some(a), _) if a.punct() == Some("..") => rest = true,
                        _ => {}
                    }
                }
                constructs = named > 0 && !rest;
            }
            uses.push(EventUse {
                at: i + 2,
                variant,
                fields,
                constructs,
            });
            i += 3;
            continue;
        }
        i += 1;
    }
    uses
}

/// L8: `TraceEvent` uses must match the workspace schema, and span-open
/// constructions must be balanced by their close variant in the same fn.
fn check_span_balance(
    rel: &str,
    tokens: &[Token],
    parsed: &ParsedFile,
    symbols: &Symbols,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    if symbols.trace_schema.is_empty() {
        return;
    }
    let uses = scan_event_uses(tokens);
    for u in &uses {
        let tok = &tokens[u.at];
        if in_test(tok.line) {
            continue;
        }
        match symbols.trace_schema.get(&u.variant) {
            None => push(
                out,
                rel,
                tok,
                Rule::SpanBalance,
                format!(
                    "`TraceEvent::{}` is not a variant of the workspace trace schema",
                    u.variant
                ),
            ),
            Some(schema) => {
                for f in &u.fields {
                    if !schema.contains(f) {
                        push(
                            out,
                            rel,
                            tok,
                            Rule::SpanBalance,
                            format!(
                                "field `{f}` is not part of the `TraceEvent::{}` schema",
                                u.variant
                            ),
                        );
                    }
                }
            }
        }
    }
    // Balance check: per fn body, an explicit construction of a span-open
    // variant needs a mention of the close variant in the same body.
    for item in &parsed.items {
        let (ItemKind::Fn(_), Some((lo, hi))) = (&item.kind, item.body) else {
            continue;
        };
        if in_test(item.line) {
            continue;
        }
        for (open_v, close_v) in SPAN_PAIRS {
            let opens: Vec<&EventUse> = uses
                .iter()
                .filter(|u| u.at >= lo && u.at < hi && u.variant == open_v && u.constructs)
                .collect();
            if opens.is_empty() {
                continue;
            }
            let closed = uses
                .iter()
                .any(|u| u.at >= lo && u.at < hi && u.variant == close_v);
            if !closed {
                for u in opens {
                    push(
                        out,
                        rel,
                        &tokens[u.at],
                        Rule::SpanBalance,
                        format!(
                            "`{open_v}` span opened in fn `{}` with no matching `{close_v}` on any path",
                            item.name
                        ),
                    );
                }
            }
        }
    }
}

/// Idents whose presence in a spawning fn indicates results are re-merged
/// deterministically before reaching order-sensitive sinks.
const REORDER_MARKERS: [&str; 6] = [
    "StreamFinalizer",
    "emit_record",
    "BTreeMap",
    "BTreeSet",
    "reorder",
    "finalizer",
];

/// L9: thread-spawn sites in deterministic crates must route results
/// through a reorder/finalizer path.
fn check_order_sensitivity(
    rel: &str,
    tokens: &[Token],
    parsed: &ParsedFile,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for item in &parsed.items {
        let (ItemKind::Fn(_), Some((lo, hi))) = (&item.kind, item.body) else {
            continue;
        };
        if in_test(item.line) || hi <= lo {
            continue;
        }
        let body = &tokens[lo..hi.min(tokens.len())];
        let spawn_at = body.iter().enumerate().position(|(j, t)| {
            t.ident() == Some("spawn") && body.get(j + 1).and_then(Token::punct) == Some("(")
        });
        let Some(spawn_at) = spawn_at else { continue };
        let reordered = body.iter().any(|t| {
            t.ident()
                .is_some_and(|id| REORDER_MARKERS.contains(&id) || id.starts_with("sort"))
        });
        if !reordered {
            push(
                out,
                rel,
                &body[spawn_at],
                Rule::OrderSensitivity,
                format!(
                    "fn `{}` spawns workers without a reorder/finalizer path; completion order will leak into output",
                    item.name
                ),
            );
        }
    }
}

/// Fallible I/O-ish method names whose `Result` must not be dropped
/// silently in deterministic crates.
const IO_METHODS: [&str; 9] = [
    "flush",
    "send",
    "recv",
    "sync_all",
    "sync_data",
    "write_all",
    "write_fmt",
    "set_len",
    "wait",
];

/// Whether a discarded expression's tokens contain a fallible I/O, fs, or
/// always-`Result` workspace call.
fn expr_swallows_result(expr: &[Token], symbols: &Symbols) -> Option<String> {
    for (j, t) in expr.iter().enumerate() {
        let next_is = |p: &str| expr.get(j + 1).and_then(Token::punct) == Some(p);
        if let Some(id) = t.ident() {
            let prev_punct = j.checked_sub(1).and_then(|k| expr[k].punct());
            if next_is("(") {
                if prev_punct == Some(".") && IO_METHODS.contains(&id) {
                    return Some(format!(".{id}()"));
                }
                if prev_punct == Some("::") && j >= 2 && expr[j - 2].ident() == Some("fs") {
                    return Some(format!("fs::{id}()"));
                }
                if prev_punct != Some(".") && symbols.always_returns_result(id) {
                    return Some(format!("{id}()"));
                }
            }
            if (id == "write" || id == "writeln") && next_is("!") {
                // Fallible only when the target is a field/path expression
                // (`self.writer`, `io::stderr()`); a bare local ident is a
                // `fmt::Write` String target and infallible.
                if let Some(open) =
                    (j + 2..expr.len()).find(|k| matches!(expr[*k].punct(), Some("(" | "[" | "{")))
                {
                    let args = &expr[open + 1..];
                    let target: Vec<&Token> = parse::split_top_commas(args)
                        .first()
                        .map(|s| s.iter().collect())
                        .unwrap_or_default();
                    if target.iter().any(|t| matches!(t.punct(), Some("." | "::"))) {
                        return Some(format!("{id}!"));
                    }
                }
            }
        }
    }
    None
}

/// L10: `let _ =` / `drop(...)` silently discarding a fallible result.
fn check_swallowed_fallibility(
    rel: &str,
    tokens: &[Token],
    symbols: &Symbols,
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if in_test(t.line) {
            i += 1;
            continue;
        }
        // `let _ = <expr> ;`
        if t.ident() == Some("let")
            && tokens.get(i + 1).and_then(Token::ident) == Some("_")
            && tokens.get(i + 2).and_then(Token::punct) == Some("=")
        {
            let start = i + 3;
            let mut depth = 0i32;
            let mut end = start;
            while end < tokens.len() {
                match tokens[end].punct() {
                    Some("(" | "[" | "{") => depth += 1,
                    Some(")" | "]" | "}") => depth -= 1,
                    Some(";") if depth == 0 => break,
                    _ => {}
                }
                end += 1;
            }
            if let Some(what) = expr_swallows_result(&tokens[start..end], symbols) {
                push(
                    out,
                    rel,
                    t,
                    Rule::SwallowedFallibility,
                    format!(
                        "`let _ =` discards the Result of `{what}`; handle the error or add an accounted waiver"
                    ),
                );
            }
            i = end;
            continue;
        }
        // `drop(<expr>)` — the free function, not `.drop()` or `fn drop`.
        if t.ident() == Some("drop")
            && tokens.get(i + 1).and_then(Token::punct) == Some("(")
            && i.checked_sub(1).map_or(true, |k| {
                tokens[k].punct() != Some(".") && tokens[k].ident() != Some("fn")
            })
        {
            let open = i + 1;
            let mut depth = 0i32;
            let mut close = open;
            while close < tokens.len() {
                match tokens[close].punct() {
                    Some("(") => depth += 1,
                    Some(")") => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                close += 1;
            }
            if let Some(what) =
                expr_swallows_result(&tokens[open + 1..close.min(tokens.len())], symbols)
            {
                push(
                    out,
                    rel,
                    t,
                    Rule::SwallowedFallibility,
                    format!(
                        "`drop(..)` discards the Result of `{what}`; handle the error or add an accounted waiver"
                    ),
                );
            }
            i = close;
            continue;
        }
        i += 1;
    }
}

/// L6: stale file extensions. Applies to *paths*, not contents.
#[must_use]
pub fn check_stale_file(rel: &str) -> Option<Finding> {
    let stale = [".bak", ".orig", ".rej"]
        .iter()
        .find(|ext| rel.ends_with(**ext))?;
    Some(Finding {
        file: rel.to_owned(),
        line: 0,
        col: 0,
        rule: Rule::StaleFile,
        message: format!("stale `{stale}` file checked into the tree; delete it"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DET: FileScope = FileScope {
        is_test_context: false,
        is_deterministic_path: true,
    };

    fn lint(src: &str) -> FileOutcome {
        lint_rust_file("crates/sim/src/x.rs", src, DET)
    }

    fn rules_of(out: &FileOutcome) -> Vec<Rule> {
        out.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unwrap_and_expect_flagged() {
        let out = lint("fn f() { x.unwrap(); y.expect(\"msg\"); }");
        assert_eq!(rules_of(&out), vec![Rule::NoPanic, Rule::NoPanic]);
    }

    #[test]
    fn unwrap_in_cfg_test_module_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n fn g() { x.unwrap(); }\n}\n";
        assert!(lint(src).findings.is_empty());
    }

    #[test]
    fn unwrap_or_else_not_flagged() {
        let out = lint("fn f() { x.unwrap_or_else(|| 3); x.unwrap_or(1); }");
        assert!(out.findings.is_empty());
    }

    #[test]
    fn waiver_same_line_and_line_above() {
        let same = "fn f() { x.unwrap(); } // lint: allow(no-panic) — invariant";
        let out = lint(same);
        assert!(out.findings.is_empty());
        assert_eq!(out.waivers.len(), 1);
        assert!(out.waivers[0].used);

        let above = "fn f() {\n // lint: allow(no-panic) — invariant\n x.unwrap();\n}";
        assert!(lint(above).findings.is_empty());
    }

    #[test]
    fn unused_waiver_reported_unused() {
        let out = lint("// lint: allow(no-panic)\nfn f() { let a = 1; }");
        assert!(out.findings.is_empty());
        assert_eq!(out.waivers.len(), 1);
        assert!(!out.waivers[0].used);
    }

    #[test]
    fn waiver_only_covers_its_rule() {
        let src = "fn f() { x.unwrap(); } // lint: allow(hash-iter)";
        let out = lint(src);
        assert_eq!(rules_of(&out), vec![Rule::NoPanic]);
    }

    #[test]
    fn hashmap_flagged_only_on_deterministic_path() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        assert_eq!(lint(src).findings.len(), 3);
        let other = lint_rust_file(
            "crates/bench/src/x.rs",
            src,
            FileScope {
                is_test_context: false,
                is_deterministic_path: false,
            },
        );
        assert!(other.findings.is_empty());
    }

    #[test]
    fn float_eq_heuristics() {
        let out = lint("fn f(v: f64) { if v == 3.3 {} if (v as f64) != w {} }");
        assert_eq!(rules_of(&out), vec![Rule::FloatEq, Rule::FloatEq]);
        // Integer comparisons and range patterns stay clean.
        assert!(lint("fn f(v: u32) { if v == 905 {} let r = 0..10; }")
            .findings
            .is_empty());
    }

    #[test]
    fn unseeded_rng_applies_everywhere_nontest() {
        let src = "fn f() { let r = rand::thread_rng(); let x: u8 = rand::random(); let s = StdRng::from_entropy(); }";
        let out = lint_rust_file(
            "crates/bench/src/x.rs",
            src,
            FileScope {
                is_test_context: false,
                is_deterministic_path: false,
            },
        );
        assert_eq!(
            rules_of(&out),
            vec![Rule::UnseededRng, Rule::UnseededRng, Rule::UnseededRng]
        );
    }

    #[test]
    fn wall_clock_flagged() {
        let out = lint("fn f() { let t = std::time::Instant::now(); }");
        assert_eq!(rules_of(&out), vec![Rule::WallClock]);
    }

    #[test]
    fn test_context_files_are_exempt() {
        let out = lint_rust_file(
            "crates/sim/tests/t.rs",
            "fn f() { x.unwrap(); thread_rng(); }",
            FileScope {
                is_test_context: true,
                is_deterministic_path: true,
            },
        );
        assert!(out.findings.is_empty());
    }

    #[test]
    fn classify_paths() {
        assert!(classify_path("crates/lint/tests/fixtures/seedlike/x.rs").is_none());
        assert!(classify_path("target/debug/x.rs").is_none());
        let s = classify_path("crates/sim/src/volt.rs").unwrap();
        assert!(s.is_deterministic_path && !s.is_test_context);
        let t = classify_path("crates/sim/tests/proptest_sim.rs").unwrap();
        assert!(t.is_test_context);
        let b = classify_path("crates/bench/src/lib.rs").unwrap();
        assert!(!b.is_deterministic_path);
        let tr = classify_path("crates/trace/src/sink.rs").unwrap();
        assert!(tr.is_deterministic_path && !tr.is_test_context);
        let root = classify_path("src/bin/voltmargin.rs").unwrap();
        assert!(!root.is_deterministic_path && !root.is_test_context);
    }

    #[test]
    fn stale_file_rule() {
        assert!(check_stale_file("crates/bench/src/lib.rs.bak").is_some());
        assert!(check_stale_file("crates/bench/src/lib.rs").is_none());
        assert!(check_stale_file("a/b.orig").is_some());
    }

    #[test]
    fn tokens_in_strings_do_not_fire() {
        let src = r#"fn f() { let s = "x.unwrap() HashMap thread_rng"; }"#;
        assert!(lint(src).findings.is_empty());
    }

    // ------------------------------------------------------------------
    // Semantic rules L7–L10 against a hand-built symbol table.

    fn sim_symbols() -> Symbols {
        let mut sym = Symbols::default();
        sym.newtypes
            .insert("Millivolts".into(), ("u32".into(), "sim".into()));
        sym.newtypes
            .insert("CoreId".into(), ("u8".into(), "sim".into()));
        sym.trace_schema.insert(
            "SweepStarted".into(),
            ["program", "dataset", "core"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
        );
        sym.trace_schema.insert(
            "SweepFinished".into(),
            ["program", "vmin_mv"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
        );
        sym.fn_result.insert("persist_cache".into(), (1, 1));
        sym.fn_result.insert("lookup".into(), (1, 2));
        sym.active_quantities = vec![
            crate::symbols::ActiveQuantity {
                quantity: crate::symbols::Quantity {
                    newtype: "Millivolts",
                    raw: &["u32"],
                    names: &["mv"],
                    suffixes: &["_mv"],
                },
                def_crate: "sim".into(),
            },
            crate::symbols::ActiveQuantity {
                quantity: crate::symbols::Quantity {
                    newtype: "CoreId",
                    raw: &["u8"],
                    names: &["core"],
                    suffixes: &[],
                },
                def_crate: "sim".into(),
            },
        ];
        sym
    }

    fn lint_sem(src: &str) -> FileOutcome {
        lint_rust_file_semantic("crates/sim/src/x.rs", src, DET, &sim_symbols())
    }

    #[test]
    fn unit_escape_flags_raw_param_and_return() {
        let out = lint_sem("pub fn set(mv: u32) {}\npub fn vmin_mv(&self) -> Option<u32> { None }");
        assert_eq!(rules_of(&out), vec![Rule::UnitEscape, Rule::UnitEscape]);
    }

    #[test]
    fn unit_escape_exemptions() {
        // Private fn, typed param, newtype's own impl, unrelated name.
        let src = "fn step(mv: u32) {}\n\
                   pub fn set(mv: Millivolts) {}\n\
                   impl Millivolts { pub fn new(mv: u32) -> Self { Self(mv) } }\n\
                   pub fn count(n: u32) {}";
        assert!(lint_sem(src).findings.is_empty());
    }

    #[test]
    fn unit_escape_needs_dep_visibility() {
        // `trace` does not depend on `sim`, so it cannot name Millivolts.
        let out = lint_rust_file_semantic(
            "crates/trace/src/x.rs",
            "pub fn set(mv: u32) {}",
            DET,
            &sim_symbols(),
        );
        assert!(out.findings.is_empty());
    }

    #[test]
    fn span_balance_unknown_variant_and_field() {
        let out = lint_sem(
            "fn f(o: &O) { o.record(&TraceEvent::Bogus { x: 1 }); }\n\
             fn g(o: &O) { o.record(&TraceEvent::SweepFinished { program: p, typo: 1 }); }",
        );
        assert_eq!(rules_of(&out), vec![Rule::SpanBalance, Rule::SpanBalance]);
        assert!(out.findings[0].message.contains("Bogus"));
        assert!(out.findings[1].message.contains("typo"));
    }

    #[test]
    fn span_balance_unclosed_open_flagged() {
        let src = "fn f(o: &O) { o.record(&TraceEvent::SweepStarted { program: p, core: c }); }";
        let out = lint_sem(src);
        assert_eq!(rules_of(&out), vec![Rule::SpanBalance]);
        assert!(out.findings[0].message.contains("SweepFinished"));
    }

    #[test]
    fn span_balance_closed_open_and_patterns_ok() {
        // Open + close in the same fn is balanced; match patterns with `..`
        // or shorthand are not constructions.
        let src = "fn f(o: &O) {\n\
                     o.record(&TraceEvent::SweepStarted { program: p, core: c });\n\
                     o.record(&TraceEvent::SweepFinished { program: p, vmin_mv: v });\n\
                   }\n\
                   fn g(e: &TraceEvent) { match e { TraceEvent::SweepStarted { program, .. } => (), _ => () } }";
        assert!(lint_sem(src).findings.is_empty());
    }

    #[test]
    fn order_sensitivity_flags_bare_spawn() {
        let out = lint_sem("fn run(s: &S) { s.spawn(|| work()); collect(); }");
        assert_eq!(rules_of(&out), vec![Rule::OrderSensitivity]);
    }

    #[test]
    fn order_sensitivity_reorder_path_ok() {
        let src = "fn run(s: &S) { s.spawn(|| work()); let pending = BTreeMap::new(); emit_record(pending); }";
        assert!(lint_sem(src).findings.is_empty());
    }

    #[test]
    fn swallowed_fallibility_flags_io_and_workspace_results() {
        let src = "fn f(w: &mut W) { let _ = w.flush(); }\n\
                   fn g() { let _ = persist_cache(&path); }\n\
                   fn h(w: &mut W) { let _ = writeln!(self.writer, \"x\"); }\n\
                   fn k() { drop(fs::remove_file(p)); }";
        let out = lint_sem(src);
        assert_eq!(rules_of(&out), vec![Rule::SwallowedFallibility; 4]);
    }

    #[test]
    fn swallowed_fallibility_exemptions() {
        // String-target write! is infallible; `lookup` is not always-Result;
        // plain drops of values are fine; waived sites count as waivers.
        let src = "fn f(out: &mut String) { let _ = writeln!(out, \"x\"); }\n\
                   fn g() { let _ = lookup(k); }\n\
                   fn h(v: Vec<u8>) { drop(v); }\n\
                   fn k(w: &mut W) {\n\
                     // lint: allow(swallowed-fallibility) — best-effort progress\n\
                     let _ = w.flush();\n\
                   }";
        let out = lint_sem(src);
        assert!(out.findings.is_empty());
        assert_eq!(out.waivers.len(), 1);
        assert!(out.waivers[0].used);
    }

    #[test]
    fn semantic_rules_skip_test_spans() {
        let src = "#[cfg(test)]\nmod tests {\n pub fn set(mv: u32) {}\n fn f(w: &mut W) { let _ = w.flush(); }\n}";
        assert!(lint_sem(src).findings.is_empty());
    }
}
