//! The incremental-lint cache: per-file content hashes, symbol summaries
//! and lint outcomes, persisted between runs.
//!
//! A cached entry is valid for *token* rules when the file's FNV-1a
//! content hash is unchanged, and for *semantic* rules additionally only
//! when the workspace **context hash** (the hash of the merged symbol
//! table, see [`crate::symbols::Symbols::context_hash`]) matches — a
//! newtype added in crate A can create findings in crate B without B
//! changing, so per-file hashing alone would under-invalidate. The linter
//! therefore reuses a file's findings only when both hashes match.
//!
//! The on-disk format is a deliberately minimal line format (the linter
//! is dependency-free, so no serde):
//!
//! ```text
//! margins-lint-cache v2 ctx=<hex16>
//! F <hash-hex16> <path>
//! N <newtype> <inner>
//! V <variant> <field,field,...>
//! R <0|1> <fn-name>
//! D <rule> <line> <col> <message with \n and \\ escaped>
//! W <rule> <line> <0|1>
//! ```
//!
//! `N`/`V`/`R` lines carry the file's symbol summary (so unchanged files
//! need no re-parse), `D`/`W` its findings and waivers. Any malformed
//! byte anywhere makes the whole cache [`LoadOutcome::Corrupt`] — the
//! caller falls back to a full re-scan with a typed warning; corruption
//! is never a panic and never silently partial.

use crate::rules::{Finding, Rule, Waiver};
use crate::symbols::FileSymbols;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Magic + version prefix of the cache header line.
const HEADER_PREFIX: &str = "margins-lint-cache v2 ctx=";

/// One file's cached state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CachedFile {
    /// FNV-1a 64 hash of the file's bytes.
    pub hash: u64,
    /// The file's contribution to the workspace symbol table.
    pub symbols: FileSymbols,
    /// Findings produced last run (file field filled on load).
    pub findings: Vec<Finding>,
    /// Waivers seen last run.
    pub waivers: Vec<Waiver>,
}

/// The whole persisted cache.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    /// Context hash of the symbol table the findings were computed under.
    pub context: u64,
    /// Per-file entries, keyed by workspace-relative path.
    pub files: BTreeMap<String, CachedFile>,
}

/// What loading the cache produced.
#[derive(Debug)]
pub enum LoadOutcome {
    /// No cache file exists yet (cold run).
    Missing,
    /// Cache parsed cleanly.
    Loaded(Cache),
    /// Cache exists but is malformed; the message says where and why.
    Corrupt(String),
}

/// Loads the cache at `path`. Never panics: unreadable or malformed
/// content degrades to [`LoadOutcome::Corrupt`].
#[must_use]
pub fn load(path: &Path) -> LoadOutcome {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return LoadOutcome::Missing,
        Err(e) => return LoadOutcome::Corrupt(format!("unreadable cache: {e}")),
    };
    match parse(&text) {
        Ok(cache) => LoadOutcome::Loaded(cache),
        Err(msg) => LoadOutcome::Corrupt(msg),
    }
}

/// Serializes and writes the cache; parent directories must exist.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn store(path: &Path, cache: &Cache) -> io::Result<()> {
    fs::write(path, render(cache))
}

/// The byte-deterministic serialized form.
#[must_use]
pub fn render(cache: &Cache) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{HEADER_PREFIX}{:016x}", cache.context);
    for (path, f) in &cache.files {
        let _ = writeln!(s, "F {:016x} {path}", f.hash);
        for (name, inner) in &f.symbols.newtypes {
            let _ = writeln!(s, "N {name} {inner}");
        }
        for (variant, fields) in &f.symbols.trace_variants {
            let _ = writeln!(s, "V {variant} {}", fields.join(","));
        }
        for (name, returns_result) in &f.symbols.fns {
            let _ = writeln!(s, "R {} {name}", u8::from(*returns_result));
        }
        for d in &f.findings {
            let _ = writeln!(
                s,
                "D {} {} {} {}",
                d.rule.name(),
                d.line,
                d.col,
                escape(&d.message)
            );
        }
        for w in &f.waivers {
            let _ = writeln!(s, "W {} {} {}", w.rule.name(), w.line, u8::from(w.used));
        }
    }
    s
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn parse(text: &str) -> Result<Cache, String> {
    let mut lines = text.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Err("empty cache file".to_owned());
    };
    let Some(ctx_hex) = header.strip_prefix(HEADER_PREFIX) else {
        return Err(format!("bad cache header: {header:?}"));
    };
    let context =
        u64::from_str_radix(ctx_hex, 16).map_err(|_| format!("bad context hash: {ctx_hex:?}"))?;

    let mut cache = Cache {
        context,
        files: BTreeMap::new(),
    };
    let mut current: Option<(String, CachedFile)> = None;
    for (n, line) in lines {
        let lineno = n + 1;
        if line.is_empty() {
            continue;
        }
        let (tag, rest) = line
            .split_once(' ')
            .ok_or_else(|| format!("line {lineno}: missing payload"))?;
        match tag {
            "F" => {
                let (hash_hex, path) = rest
                    .split_once(' ')
                    .ok_or_else(|| format!("line {lineno}: bad F record"))?;
                let hash = u64::from_str_radix(hash_hex, 16)
                    .map_err(|_| format!("line {lineno}: bad file hash {hash_hex:?}"))?;
                if path.is_empty() {
                    return Err(format!("line {lineno}: empty path"));
                }
                if let Some((p, f)) = current.take() {
                    cache.files.insert(p, f);
                }
                current = Some((
                    path.to_owned(),
                    CachedFile {
                        hash,
                        ..CachedFile::default()
                    },
                ));
            }
            "N" | "V" | "R" | "D" | "W" => {
                let (_, file) = current
                    .as_mut()
                    .ok_or_else(|| format!("line {lineno}: {tag} record before any F record"))?;
                parse_member(tag, rest, file).map_err(|e| format!("line {lineno}: {e}"))?;
            }
            other => return Err(format!("line {lineno}: unknown record tag {other:?}")),
        }
    }
    if let Some((p, f)) = current.take() {
        cache.files.insert(p, f);
    }
    Ok(cache)
}

fn parse_member(tag: &str, rest: &str, file: &mut CachedFile) -> Result<(), String> {
    match tag {
        "N" => {
            let (name, inner) = rest.split_once(' ').ok_or("bad N record")?;
            file.symbols
                .newtypes
                .push((name.to_owned(), inner.to_owned()));
        }
        "V" => {
            let (variant, fields) = rest.split_once(' ').ok_or("bad V record")?;
            let fields = if fields.is_empty() {
                Vec::new()
            } else {
                fields.split(',').map(str::to_owned).collect()
            };
            file.symbols
                .trace_variants
                .push((variant.to_owned(), fields));
        }
        "R" => {
            let (flag, name) = rest.split_once(' ').ok_or("bad R record")?;
            let returns_result = parse_bool(flag)?;
            file.symbols.fns.push((name.to_owned(), returns_result));
        }
        "D" => {
            let mut it = rest.splitn(4, ' ');
            let rule = it.next().and_then(Rule::from_name).ok_or("bad D rule")?;
            let line = parse_u32(it.next())?;
            let col = parse_u32(it.next())?;
            let message = unescape(it.next().unwrap_or_default());
            file.findings.push(Finding {
                file: String::new(), // filled by the caller from the F path
                line,
                col,
                rule,
                message,
            });
        }
        "W" => {
            let mut it = rest.splitn(3, ' ');
            let rule = it.next().and_then(Rule::from_name).ok_or("bad W rule")?;
            let line = parse_u32(it.next())?;
            let used = parse_bool(it.next().unwrap_or_default())?;
            file.waivers.push(Waiver {
                file: String::new(),
                line,
                rule,
                used,
            });
        }
        _ => unreachable!("caller dispatches only known tags"),
    }
    Ok(())
}

fn parse_bool(s: &str) -> Result<bool, String> {
    match s {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(format!("bad flag {other:?}")),
    }
}

fn parse_u32(s: Option<&str>) -> Result<u32, String> {
    s.ok_or_else(|| "missing number".to_owned())?
        .parse()
        .map_err(|_| format!("bad number {:?}", s.unwrap_or_default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Cache {
        let mut files = BTreeMap::new();
        files.insert(
            "crates/sim/src/volt.rs".to_owned(),
            CachedFile {
                hash: 0xdead_beef,
                symbols: FileSymbols {
                    newtypes: vec![("Millivolts".into(), "u32".into())],
                    trace_variants: vec![("SweepStarted".into(), vec!["program".into()])],
                    fns: vec![("persist".into(), true), ("get".into(), false)],
                },
                findings: vec![Finding {
                    file: String::new(),
                    line: 9,
                    col: 4,
                    rule: Rule::NoPanic,
                    message: "msg with \\ backslash\nand newline".into(),
                }],
                waivers: vec![Waiver {
                    file: String::new(),
                    line: 12,
                    rule: Rule::SwallowedFallibility,
                    used: true,
                }],
            },
        );
        Cache {
            context: 0x1234_5678_9abc_def0,
            files,
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let cache = sample();
        let text = render(&cache);
        let back = match parse(&text) {
            Ok(c) => c,
            Err(e) => panic!("roundtrip parse failed: {e}"),
        };
        assert_eq!(back.context, cache.context);
        let f = &back.files["crates/sim/src/volt.rs"];
        let orig = &cache.files["crates/sim/src/volt.rs"];
        assert_eq!(f.hash, orig.hash);
        assert_eq!(f.symbols, orig.symbols);
        assert_eq!(f.findings[0].message, orig.findings[0].message);
        assert_eq!(f.findings[0].rule, Rule::NoPanic);
        assert_eq!(f.waivers[0].used, true);
    }

    #[test]
    fn render_is_deterministic() {
        assert_eq!(render(&sample()), render(&sample()));
    }

    #[test]
    fn corrupt_variants_are_typed_errors_not_panics() {
        for bad in [
            "",
            "not-a-cache",
            "margins-lint-cache v2 ctx=zzz",
            "margins-lint-cache v2 ctx=0\nX what",
            "margins-lint-cache v2 ctx=0\nD no-panic 1 2 msg",
            "margins-lint-cache v2 ctx=0\nF nothex p",
            "margins-lint-cache v2 ctx=0\nF 0 p\nD bogus-rule 1 2 m",
            "margins-lint-cache v2 ctx=0\nF 0 p\nW no-panic 1 7",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn missing_file_is_missing_not_corrupt() {
        assert!(matches!(
            load(Path::new("/nonexistent/margins-lint.cache")),
            LoadOutcome::Missing
        ));
    }
}
