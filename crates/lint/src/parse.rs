//! A lightweight item-level parser on top of [`crate::lexer`].
//!
//! The semantic rules (L7–L10) need to know *where function boundaries
//! are* and *what types cross them* — not full expression trees. This
//! parser recovers exactly that: `fn` signatures (params, return type,
//! body token span), `struct`/`enum` declarations (fields, tuple-newtype
//! shape), `impl` blocks (so methods know their owning type), and `use`
//! paths — all from the token stream, with no external dependencies.
//!
//! Like the lexer, the parser is forgiving: any construct it does not
//! recognise is skipped token-by-token, never an error. A lint pass must
//! survive half-written files and future Rust syntax.

use crate::lexer::{TokKind, Token};

/// One function parameter: a binding name (possibly empty for pattern
/// params) and a normalized type string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// The bound identifier (`mv` in `mv: u32`); empty for tuple patterns.
    pub name: String,
    /// Normalized type text (`Option<u32>`, `&mut Millivolts`).
    pub ty: String,
}

/// A parsed `fn` signature.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FnSig {
    /// Non-receiver parameters in declaration order.
    pub params: Vec<Param>,
    /// Normalized return type, `None` for `()`-returning functions.
    pub ret: Option<String>,
}

/// One struct/enum field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name; empty for tuple fields.
    pub name: String,
    /// Normalized type text.
    pub ty: String,
}

/// One enum variant with its fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// Fields; empty for unit variants.
    pub fields: Vec<Field>,
    /// Whether the fields are named (`{ a: T }`) rather than tuple (`(T)`).
    pub named: bool,
}

/// What kind of item was parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// A free function or method.
    Fn(FnSig),
    /// A struct declaration.
    Struct {
        /// Declared fields (tuple fields have empty names).
        fields: Vec<Field>,
        /// Whether this is a tuple struct (`struct Millivolts(u32);`).
        tuple: bool,
    },
    /// An enum declaration.
    Enum {
        /// Declared variants.
        variants: Vec<Variant>,
    },
    /// An `impl` block (inherent or trait).
    Impl {
        /// Base name of the implemented type (`Millivolts` for
        /// `impl fmt::Display for Millivolts<'_>`).
        type_name: String,
        /// Whether this is `impl Trait for Type`.
        is_trait_impl: bool,
    },
    /// A `use` declaration with its joined path text.
    Use {
        /// The imported path, tokens joined (`std::collections::BTreeMap`).
        path: String,
    },
}

/// One parsed item with position and context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// Item kind and payload.
    pub kind: ItemKind,
    /// Item name (empty for `impl` blocks and `use` items).
    pub name: String,
    /// Whether the item is `pub` (any visibility wider than private).
    pub is_pub: bool,
    /// 1-based line of the item's name (or introducing keyword).
    pub line: u32,
    /// 1-based column of the item's name (or introducing keyword).
    pub col: u32,
    /// Token-index range `[start, end)` of the item's brace body, into the
    /// token slice the parser was given. `None` for bodiless items.
    pub body: Option<(usize, usize)>,
    /// For fns inside an `impl` block: the implemented type's base name.
    pub owner: Option<String>,
    /// Whether the item sits inside a trait impl or trait declaration
    /// (its visibility is the trait's, not its own `pub`).
    pub in_trait_impl: bool,
}

/// The parsed form of one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All recognised items, in source order. Items nested in `impl`/`mod`
    /// blocks are flattened into this list with `owner` context.
    pub items: Vec<Item>,
}

/// Parses the token stream of one file into items.
#[must_use]
pub fn parse(tokens: &[Token]) -> ParsedFile {
    let mut out = ParsedFile::default();
    parse_items(tokens, 0, tokens.len(), None, false, &mut out.items);
    out
}

/// Returns true for tokens that render as word-like text (idents, numeric
/// literals) so type normalization knows where a space is required.
fn wordy(t: &Token) -> bool {
    matches!(t.kind, TokKind::Ident(_) | TokKind::Int | TokKind::Float)
}

/// Text form of a token, for joining into normalized type strings.
fn tok_text(t: &Token) -> &str {
    match &t.kind {
        TokKind::Ident(s) | TokKind::Punct(s) => s,
        TokKind::Int => "0",
        TokKind::Float => "0.0",
        TokKind::Lifetime => "'_",
    }
}

/// Joins a token slice into a normalized type string: no spaces except
/// between adjacent word-like tokens (`Option<u32>`, `&mut Millivolts`).
fn join_tokens(tokens: &[Token]) -> String {
    let mut s = String::new();
    let mut prev_wordy = false;
    for t in tokens {
        let w = wordy(t);
        if w && prev_wordy {
            s.push(' ');
        }
        s.push_str(tok_text(t));
        prev_wordy = w;
    }
    s
}

/// Net angle-bracket depth change contributed by one punct token. `->` and
/// `=>` contain `>` but never appear inside generic argument lists we
/// track, so they are excluded.
fn angle_delta(p: &str) -> i32 {
    if p == "->" || p == "=>" {
        return 0;
    }
    let opens = p.matches('<').count() as i32;
    let closes = p.matches('>').count() as i32;
    opens - closes
}

/// Skips a generic parameter list starting at `<`; returns the index past
/// the matching `>`. `i` must point at a token whose text starts with `<`.
fn skip_generics(tokens: &[Token], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < tokens.len() {
        if let Some(p) = tokens[i].punct() {
            depth += angle_delta(p);
            if depth <= 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// From an opening delimiter at `i`, returns the index of the matching
/// closing delimiter, tracking all three bracket kinds.
fn match_delim(tokens: &[Token], i: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = i;
    while j < tokens.len() {
        match tokens[j].punct() {
            Some("(" | "[" | "{") => depth += 1,
            Some(")" | "]" | "}") => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Skips to the `;` terminating a const/static/type item, ignoring
/// semicolons nested inside brackets (`[u32; 3]`) or braces.
fn skip_to_semi(tokens: &[Token], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < tokens.len() {
        match tokens[i].punct() {
            Some("(" | "[" | "{") => depth += 1,
            Some(")" | "]" | "}") => depth -= 1,
            Some(";") if depth <= 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Skips an attribute (`#[...]` / `#![...]`) starting at `#`; returns the
/// index past the closing `]`.
fn skip_attribute(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if tokens.get(j).and_then(Token::punct) == Some("!") {
        j += 1;
    }
    if tokens.get(j).and_then(Token::punct) == Some("[") {
        match_delim(tokens, j).map_or(tokens.len(), |e| e + 1)
    } else {
        i + 1
    }
}

/// Recursive item scanner over `tokens[start..end)`.
fn parse_items(
    tokens: &[Token],
    start: usize,
    end: usize,
    owner: Option<&str>,
    in_trait_impl: bool,
    out: &mut Vec<Item>,
) {
    let mut i = start;
    while i < end {
        // Attributes.
        if tokens[i].punct() == Some("#") {
            i = skip_attribute(tokens, i);
            continue;
        }
        // Visibility.
        let mut is_pub = false;
        let item_start = i;
        if tokens[i].ident() == Some("pub") {
            is_pub = true;
            i += 1;
            if i < end && tokens[i].punct() == Some("(") {
                i = match_delim(tokens, i).map_or(end, |e| e + 1);
            }
        }
        // Fn modifiers (`const fn`, `unsafe fn`, `async fn`, `extern "C" fn`).
        let mut j = i;
        loop {
            match tokens.get(j).and_then(Token::ident) {
                Some("const" | "unsafe" | "async" | "extern" | "default") => j += 1,
                _ => break,
            }
        }
        let is_fn_head = tokens.get(j).and_then(Token::ident) == Some("fn");
        if is_fn_head && j > i {
            i = j; // real modifiers before `fn`
        }

        match tokens.get(i).and_then(Token::ident) {
            Some("fn") => {
                i = parse_fn(tokens, i, end, is_pub, owner, in_trait_impl, out);
            }
            Some("struct") => {
                i = parse_struct(tokens, i, end, is_pub, out);
            }
            Some("enum") => {
                i = parse_enum(tokens, i, end, is_pub, out);
            }
            Some("impl") => {
                i = parse_impl(tokens, i, end, out);
            }
            Some("trait") => {
                i = parse_trait(tokens, i, end, out);
            }
            Some("mod") => {
                i = parse_mod(tokens, i, end, owner, in_trait_impl, out);
            }
            Some("use") => {
                i = parse_use(tokens, i, end, is_pub, out);
            }
            Some("const" | "static" | "type") => {
                i = skip_to_semi(tokens, i);
            }
            Some("macro_rules") => {
                // `macro_rules! name { ... }` — skip the whole definition.
                i = skip_macro_like(tokens, i, end);
            }
            _ => {
                // Item-level macro invocation (`thread_local! { ... }`) or
                // anything unrecognised: resynchronise.
                if tokens.get(i).and_then(Token::ident).is_some()
                    && tokens.get(i + 1).and_then(Token::punct) == Some("!")
                {
                    i = skip_macro_like(tokens, i, end);
                } else {
                    i = item_start.max(i) + 1;
                }
            }
        }
    }
}

/// Skips `name ! (...)` / `name ! { ... }` / `macro_rules! name { ... }`.
fn skip_macro_like(tokens: &[Token], mut i: usize, end: usize) -> usize {
    while i < end {
        match tokens[i].punct() {
            Some("(" | "[" | "{") => {
                let is_brace = tokens[i].punct() == Some("{");
                let close = match_delim(tokens, i).map_or(end, |e| e + 1);
                if is_brace {
                    return close;
                }
                i = close;
                // `name!(...)` as an item ends with `;`.
                if tokens.get(i).and_then(Token::punct) == Some(";") {
                    return i + 1;
                }
                return i;
            }
            Some(";") => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Parses a `fn` item starting at the `fn` keyword; returns the index past
/// the item.
fn parse_fn(
    tokens: &[Token],
    fn_idx: usize,
    end: usize,
    is_pub: bool,
    owner: Option<&str>,
    in_trait_impl: bool,
    out: &mut Vec<Item>,
) -> usize {
    let mut i = fn_idx + 1;
    let Some(name_tok) = tokens.get(i) else {
        return end;
    };
    let Some(name) = name_tok.ident().map(str::to_owned) else {
        return i + 1;
    };
    let (line, col) = (name_tok.line, name_tok.col);
    i += 1;
    // Generics.
    if i < end && tokens[i].punct().is_some_and(|p| p.starts_with('<')) {
        i = skip_generics(tokens, i);
    }
    // Parameters.
    let mut sig = FnSig::default();
    if i < end && tokens[i].punct() == Some("(") {
        let close = match_delim(tokens, i)
            .unwrap_or(end.min(tokens.len()).saturating_sub(1))
            .max(i + 1);
        sig.params = parse_params(&tokens[i + 1..close]);
        i = close + 1;
    }
    // Return type.
    if i < end && tokens[i].punct() == Some("->") {
        let ret_start = i + 1;
        let mut j = ret_start;
        let mut angle = 0i32;
        while j < end {
            if let Some(p) = tokens[j].punct() {
                if angle == 0 && (p == "{" || p == ";") {
                    break;
                }
                angle += angle_delta(p);
            } else if angle == 0 && tokens[j].ident() == Some("where") {
                break;
            }
            j += 1;
        }
        sig.ret = Some(join_tokens(&tokens[ret_start..j]));
        i = j;
    }
    // Where clause.
    if i < end && tokens[i].ident() == Some("where") {
        while i < end && !matches!(tokens[i].punct(), Some("{" | ";")) {
            i += 1;
        }
    }
    // Body (or `;` for trait method declarations).
    let mut body = None;
    if i < end {
        if tokens[i].punct() == Some("{") {
            let close = match_delim(tokens, i)
                .unwrap_or(end.saturating_sub(1))
                .max(i + 1);
            body = Some((i + 1, close));
            i = close + 1;
        } else if tokens[i].punct() == Some(";") {
            i += 1;
        }
    }
    out.push(Item {
        kind: ItemKind::Fn(sig),
        name,
        is_pub,
        line,
        col,
        body,
        owner: owner.map(str::to_owned),
        in_trait_impl,
    });
    i
}

/// Splits and parses a parameter list's tokens (between the parens).
fn parse_params(tokens: &[Token]) -> Vec<Param> {
    let mut params = Vec::new();
    for seg in split_top_commas(tokens) {
        if seg.is_empty() {
            continue;
        }
        // Receiver: `self`, `&self`, `&'a mut self`, `mut self`.
        if seg.iter().all(|t| {
            matches!(t.ident(), Some("self" | "mut"))
                || t.punct() == Some("&")
                || t.kind == TokKind::Lifetime
        }) && seg.iter().any(|t| t.ident() == Some("self"))
        {
            continue;
        }
        // Find the top-level `:` separating pattern from type.
        let mut depth = 0i32;
        let mut colon = None;
        for (k, t) in seg.iter().enumerate() {
            if let Some(p) = t.punct() {
                match p {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ":" if depth == 0 => {
                        colon = Some(k);
                        break;
                    }
                    _ => {}
                }
            }
        }
        let Some(colon) = colon else { continue };
        // Binding name: the last ident of the pattern (`mv` in `mut mv`);
        // empty for tuple/struct patterns.
        let pattern = &seg[..colon];
        let name = if pattern.iter().any(|t| t.punct().is_some()) {
            String::new()
        } else {
            pattern
                .iter()
                .rev()
                .find_map(|t| t.ident())
                .unwrap_or("")
                .to_owned()
        };
        params.push(Param {
            name,
            ty: join_tokens(&seg[colon + 1..]),
        });
    }
    params
}

/// Splits a token slice on commas at zero bracket *and* angle depth.
pub(crate) fn split_top_commas(tokens: &[Token]) -> Vec<&[Token]> {
    let mut segs = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut start = 0usize;
    for (k, t) in tokens.iter().enumerate() {
        if let Some(p) = t.punct() {
            match p {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 && angle == 0 => {
                    segs.push(&tokens[start..k]);
                    start = k + 1;
                    continue;
                }
                _ => angle += angle_delta(p),
            }
            // Closures (`|x| ...`) in parameter defaults don't occur in
            // signatures; `|` is left uninterpreted.
        }
        let _ = t;
    }
    if start < tokens.len() {
        segs.push(&tokens[start..]);
    }
    segs
}

/// Parses a `struct` item; returns the index past it.
fn parse_struct(
    tokens: &[Token],
    kw_idx: usize,
    end: usize,
    is_pub: bool,
    out: &mut Vec<Item>,
) -> usize {
    let mut i = kw_idx + 1;
    let Some(name_tok) = tokens.get(i) else {
        return end;
    };
    let Some(name) = name_tok.ident().map(str::to_owned) else {
        return i + 1;
    };
    let (line, col) = (name_tok.line, name_tok.col);
    i += 1;
    if i < end && tokens[i].punct().is_some_and(|p| p.starts_with('<')) {
        i = skip_generics(tokens, i);
    }
    // Where clause before the body.
    if i < end && tokens[i].ident() == Some("where") {
        while i < end && !matches!(tokens[i].punct(), Some("{" | "(" | ";")) {
            i += 1;
        }
    }
    let mut fields = Vec::new();
    let mut tuple = false;
    match tokens.get(i).and_then(Token::punct) {
        Some("(") => {
            tuple = true;
            let close = match_delim(tokens, i)
                .unwrap_or(end.saturating_sub(1))
                .max(i + 1);
            for seg in split_top_commas(&tokens[i + 1..close]) {
                let seg = strip_visibility(seg);
                if seg.is_empty() {
                    continue;
                }
                fields.push(Field {
                    name: String::new(),
                    ty: join_tokens(seg),
                });
            }
            i = skip_to_semi(tokens, close + 1);
        }
        Some("{") => {
            let close = match_delim(tokens, i)
                .unwrap_or(end.saturating_sub(1))
                .max(i + 1);
            fields = parse_named_fields(&tokens[i + 1..close]);
            i = close + 1;
        }
        Some(";") => i += 1,
        _ => {}
    }
    out.push(Item {
        kind: ItemKind::Struct { fields, tuple },
        name,
        is_pub,
        line,
        col,
        body: None,
        owner: None,
        in_trait_impl: false,
    });
    i
}

/// Drops a leading `pub` / `pub(...)` from a field's token slice.
fn strip_visibility(seg: &[Token]) -> &[Token] {
    if seg.first().and_then(Token::ident) == Some("pub") {
        if seg.get(1).and_then(Token::punct) == Some("(") {
            if let Some(close) = match_delim(seg, 1) {
                return &seg[close + 1..];
            }
        }
        return &seg[1..];
    }
    seg
}

/// Parses `name: Ty` named fields (attributes stripped).
fn parse_named_fields(tokens: &[Token]) -> Vec<Field> {
    let mut fields = Vec::new();
    for seg in split_top_commas(tokens) {
        // Strip leading attributes.
        let mut s = seg;
        while s.first().and_then(Token::punct) == Some("#") {
            let after = skip_attribute(s, 0);
            s = &s[after.min(s.len())..];
        }
        let s = strip_visibility(s);
        if s.len() < 3 || s[1].punct() != Some(":") {
            continue;
        }
        let Some(name) = s[0].ident() else { continue };
        fields.push(Field {
            name: name.to_owned(),
            ty: join_tokens(&s[2..]),
        });
    }
    fields
}

/// Parses an `enum` item; returns the index past it.
fn parse_enum(
    tokens: &[Token],
    kw_idx: usize,
    end: usize,
    is_pub: bool,
    out: &mut Vec<Item>,
) -> usize {
    let mut i = kw_idx + 1;
    let Some(name_tok) = tokens.get(i) else {
        return end;
    };
    let Some(name) = name_tok.ident().map(str::to_owned) else {
        return i + 1;
    };
    let (line, col) = (name_tok.line, name_tok.col);
    i += 1;
    if i < end && tokens[i].punct().is_some_and(|p| p.starts_with('<')) {
        i = skip_generics(tokens, i);
    }
    let mut variants = Vec::new();
    if tokens.get(i).and_then(Token::punct) == Some("{") {
        let close = match_delim(tokens, i)
            .unwrap_or(end.saturating_sub(1))
            .max(i + 1);
        for seg in split_top_commas(&tokens[i + 1..close]) {
            let mut s = seg;
            while s.first().and_then(Token::punct) == Some("#") {
                let after = skip_attribute(s, 0);
                s = &s[after.min(s.len())..];
            }
            let Some(vname) = s.first().and_then(Token::ident) else {
                continue;
            };
            let mut fields = Vec::new();
            let mut named = false;
            match s.get(1).and_then(Token::punct) {
                Some("{") => {
                    named = true;
                    if let Some(vclose) = match_delim(s, 1) {
                        fields = parse_named_fields(&s[2..vclose]);
                    }
                }
                Some("(") => {
                    if let Some(vclose) = match_delim(s, 1) {
                        for f in split_top_commas(&s[2..vclose]) {
                            if f.is_empty() {
                                continue;
                            }
                            fields.push(Field {
                                name: String::new(),
                                ty: join_tokens(f),
                            });
                        }
                    }
                }
                _ => {}
            }
            variants.push(Variant {
                name: vname.to_owned(),
                fields,
                named,
            });
        }
        i = close + 1;
    }
    out.push(Item {
        kind: ItemKind::Enum { variants },
        name,
        is_pub,
        line,
        col,
        body: None,
        owner: None,
        in_trait_impl: false,
    });
    i
}

/// Parses an `impl` block, recursing into its body for methods.
fn parse_impl(tokens: &[Token], kw_idx: usize, end: usize, out: &mut Vec<Item>) -> usize {
    let (line, col) = (tokens[kw_idx].line, tokens[kw_idx].col);
    let mut i = kw_idx + 1;
    if i < end && tokens[i].punct().is_some_and(|p| p.starts_with('<')) {
        i = skip_generics(tokens, i);
    }
    // Collect the type path up to `{`; an intervening `for` marks a trait
    // impl, and the implemented type is what follows it.
    let mut is_trait_impl = false;
    let mut last_ident: Option<String> = None;
    let mut angle = 0i32;
    while i < end {
        match &tokens[i].kind {
            TokKind::Punct(p) if p == "{" && angle == 0 => break,
            TokKind::Punct(p) => angle += angle_delta(p),
            TokKind::Ident(s) if s == "for" && angle == 0 => {
                is_trait_impl = true;
                last_ident = None;
            }
            TokKind::Ident(s) if s == "where" && angle == 0 => {
                // Type path complete; skip the where clause.
                while i < end && tokens[i].punct() != Some("{") {
                    i += 1;
                }
                break;
            }
            TokKind::Ident(s) if angle == 0 => last_ident = Some(s.clone()),
            _ => {}
        }
        i += 1;
    }
    let type_name = last_ident.unwrap_or_default();
    let mut body = None;
    if i < end && tokens[i].punct() == Some("{") {
        let close = match_delim(tokens, i)
            .unwrap_or(end.saturating_sub(1))
            .max(i + 1);
        body = Some((i + 1, close));
        i = close + 1;
    }
    out.push(Item {
        kind: ItemKind::Impl {
            type_name: type_name.clone(),
            is_trait_impl,
        },
        name: String::new(),
        is_pub: false,
        line,
        col,
        body,
        owner: None,
        in_trait_impl: false,
    });
    if let Some((bstart, bend)) = body {
        parse_items(tokens, bstart, bend, Some(&type_name), is_trait_impl, out);
    }
    i
}

/// Parses a `trait` declaration, recursing into default methods.
fn parse_trait(tokens: &[Token], kw_idx: usize, end: usize, out: &mut Vec<Item>) -> usize {
    let mut i = kw_idx + 1;
    let Some(name) = tokens.get(i).and_then(Token::ident).map(str::to_owned) else {
        return (kw_idx + 1).min(end);
    };
    i += 1;
    while i < end && tokens[i].punct() != Some("{") {
        if tokens[i].punct() == Some(";") {
            return i + 1;
        }
        i += 1;
    }
    if i >= end {
        return end;
    }
    let close = match_delim(tokens, i).unwrap_or(end.saturating_sub(1));
    parse_items(tokens, i + 1, close, Some(&name), true, out);
    close + 1
}

/// Parses a `mod` item, recursing into an inline body.
fn parse_mod(
    tokens: &[Token],
    kw_idx: usize,
    end: usize,
    owner: Option<&str>,
    in_trait_impl: bool,
    out: &mut Vec<Item>,
) -> usize {
    let mut i = kw_idx + 1;
    // Skip the module name and find `{` or `;`.
    while i < end {
        match tokens[i].punct() {
            Some(";") => return i + 1,
            Some("{") => {
                let close = match_delim(tokens, i).unwrap_or(end.saturating_sub(1));
                parse_items(tokens, i + 1, close, owner, in_trait_impl, out);
                return close + 1;
            }
            _ => i += 1,
        }
    }
    end
}

/// Parses a `use` item, recording the joined path.
fn parse_use(
    tokens: &[Token],
    kw_idx: usize,
    _end: usize,
    is_pub: bool,
    out: &mut Vec<Item>,
) -> usize {
    let (line, col) = (tokens[kw_idx].line, tokens[kw_idx].col);
    let start = kw_idx + 1;
    let semi = skip_to_semi(tokens, start);
    let path = join_tokens(&tokens[start..semi.saturating_sub(1).max(start)]);
    out.push(Item {
        kind: ItemKind::Use { path },
        name: String::new(),
        is_pub,
        line,
        col,
        body: None,
        owner: None,
        in_trait_impl: false,
    });
    semi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Vec<Item> {
        parse(&lex(src).tokens).items
    }

    fn fns(src: &str) -> Vec<Item> {
        items(src)
            .into_iter()
            .filter(|i| matches!(i.kind, ItemKind::Fn(_)))
            .collect()
    }

    #[test]
    fn parses_fn_signature_with_params_and_return() {
        let f = &fns("pub fn step(&self, mv: u32, name: &str) -> Option<u32> { None }")[0];
        assert_eq!(f.name, "step");
        assert!(f.is_pub);
        let ItemKind::Fn(sig) = &f.kind else { panic!() };
        assert_eq!(sig.params.len(), 2);
        assert_eq!(
            sig.params[0],
            Param {
                name: "mv".into(),
                ty: "u32".into()
            }
        );
        assert_eq!(
            sig.params[1],
            Param {
                name: "name".into(),
                ty: "&str".into()
            }
        );
        assert_eq!(sig.ret.as_deref(), Some("Option<u32>"));
    }

    #[test]
    fn generic_params_and_commas_inside_angles() {
        let f = &fns("fn f<K: Ord, V>(map: BTreeMap<K, V>, n: u32) {}")[0];
        let ItemKind::Fn(sig) = &f.kind else { panic!() };
        assert_eq!(sig.params.len(), 2);
        assert_eq!(sig.params[0].ty, "BTreeMap<K,V>");
        assert_eq!(sig.params[1].name, "n");
        assert!(sig.ret.is_none());
    }

    #[test]
    fn const_fn_and_pub_crate() {
        let f = &fns("pub(crate) const fn new(mv: u32) -> Millivolts { Millivolts(mv) }")[0];
        assert!(f.is_pub);
        assert_eq!(f.name, "new");
        let ItemKind::Fn(sig) = &f.kind else { panic!() };
        assert_eq!(sig.ret.as_deref(), Some("Millivolts"));
    }

    #[test]
    fn tuple_struct_detected_as_newtype() {
        let it = &items("pub struct Millivolts(u32);")[0];
        assert_eq!(it.name, "Millivolts");
        let ItemKind::Struct { fields, tuple } = &it.kind else {
            panic!()
        };
        assert!(*tuple);
        assert_eq!(fields.len(), 1);
        assert_eq!(fields[0].ty, "u32");
    }

    #[test]
    fn named_struct_fields_parsed() {
        let it = &items("pub struct S { pub mv: u32, name: String }")[0];
        let ItemKind::Struct { fields, tuple } = &it.kind else {
            panic!()
        };
        assert!(!*tuple);
        assert_eq!(
            fields[0],
            Field {
                name: "mv".into(),
                ty: "u32".into()
            }
        );
        assert_eq!(fields[1].name, "name");
    }

    #[test]
    fn enum_variants_with_named_fields() {
        let src = "pub enum E { Unit, Tuple(u32, String), Rec { core: u8, mv: u32 } }";
        let it = &items(src)[0];
        let ItemKind::Enum { variants } = &it.kind else {
            panic!()
        };
        assert_eq!(variants.len(), 3);
        assert_eq!(variants[0].name, "Unit");
        assert!(variants[0].fields.is_empty());
        assert_eq!(variants[1].fields.len(), 2);
        assert!(!variants[1].named);
        assert!(variants[2].named);
        assert_eq!(variants[2].fields[1].name, "mv");
    }

    #[test]
    fn impl_blocks_give_methods_an_owner() {
        let src = "impl Millivolts { pub fn get(self) -> u32 { self.0 } }\n\
                   impl fmt::Display for Millivolts { fn fmt(&self) {} }";
        let all = items(src);
        let methods: Vec<&Item> = all
            .iter()
            .filter(|i| matches!(i.kind, ItemKind::Fn(_)))
            .collect();
        assert_eq!(methods.len(), 2);
        assert_eq!(methods[0].owner.as_deref(), Some("Millivolts"));
        assert!(!methods[0].in_trait_impl);
        assert_eq!(methods[1].owner.as_deref(), Some("Millivolts"));
        assert!(methods[1].in_trait_impl);
    }

    #[test]
    fn generic_impl_type_base_name() {
        let src = "impl<W: Write> Sink for ProgressSink<W> { fn emit(&mut self) {} }";
        let all = items(src);
        let ItemKind::Impl {
            type_name,
            is_trait_impl,
        } = &all[0].kind
        else {
            panic!()
        };
        assert_eq!(type_name, "ProgressSink");
        assert!(*is_trait_impl);
    }

    #[test]
    fn nested_mod_items_are_found() {
        let src = "mod inner { pub fn f(mv: u32) {} }";
        let f = &fns(src)[0];
        assert_eq!(f.name, "f");
    }

    #[test]
    fn trait_methods_are_marked() {
        let src =
            "pub trait Observer { fn enabled(&self) -> bool { true } fn record(&self, e: &E); }";
        let all = fns(src);
        assert_eq!(all.len(), 2);
        assert!(all.iter().all(|f| f.in_trait_impl));
        assert_eq!(all[0].owner.as_deref(), Some("Observer"));
    }

    #[test]
    fn const_items_with_bracket_semicolons_skipped() {
        let src = "pub const XS: [u32; 3] = [1, 2, 3];\npub fn after() {}";
        let all = fns(src);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].name, "after");
    }

    #[test]
    fn use_paths_joined() {
        let it = &items("use std::collections::BTreeMap;")[0];
        let ItemKind::Use { path } = &it.kind else {
            panic!()
        };
        assert_eq!(path, "std::collections::BTreeMap");
    }

    #[test]
    fn fn_body_token_span_covers_body() {
        let src = "fn f() { inner_call(); } fn g() {}";
        let all = fns(src);
        let toks = lex(src).tokens;
        let (s, e) = all[0].body.unwrap();
        let body_idents: Vec<&str> = toks[s..e].iter().filter_map(Token::ident).collect();
        assert_eq!(body_idents, vec!["inner_call"]);
        assert!(all[1].body.is_some());
    }

    #[test]
    fn pattern_params_have_empty_names() {
        let f = &fns("fn f((a, b): (u32, u32), mut n: usize) {}")[0];
        let ItemKind::Fn(sig) = &f.kind else { panic!() };
        assert_eq!(sig.params[0].name, "");
        assert_eq!(sig.params[1].name, "n");
        assert_eq!(sig.params[1].ty, "usize");
    }

    #[test]
    fn where_clause_does_not_pollute_return_type() {
        let f = &fns("fn f<T>(x: T) -> u32 where T: Ord { 0 }")[0];
        let ItemKind::Fn(sig) = &f.kind else { panic!() };
        assert_eq!(sig.ret.as_deref(), Some("u32"));
    }

    #[test]
    fn malformed_input_does_not_panic() {
        for src in [
            "fn", "struct", "impl {", "pub", "fn f(", "enum E {", "use ;",
        ] {
            let _ = items(src);
        }
    }
}
