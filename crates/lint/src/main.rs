//! CLI driver: `margins-lint --workspace [--deny] [--json PATH] [--root DIR]`.
//!
//! Exit status: `0` clean (or findings present without `--deny`), `1`
//! findings present under `--deny`, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    deny: bool,
    json: Option<PathBuf>,
    quiet: bool,
}

const USAGE: &str =
    "usage: margins-lint --workspace [--deny] [--json PATH|-] [--root DIR] [--quiet]

Lints every Rust source file of the workspace against the determinism,
unit-safety and no-panic rules L1-L6 (see crates/lint and DESIGN.md).

  --workspace   lint the enclosing cargo workspace (located by walking up
                from the current directory to a [workspace] manifest)
  --root DIR    lint DIR instead of the discovered workspace root
  --deny        exit nonzero when any unwaived finding remains
  --json PATH   also write the machine-readable report to PATH ('-' = stdout)
  --quiet       suppress human diagnostics
";

fn parse_args() -> Result<Args, String> {
    let mut root: Option<PathBuf> = None;
    let mut deny = false;
    let mut json = None;
    let mut quiet = false;
    let mut workspace = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--deny" => deny = true,
            "--quiet" => quiet = true,
            "--json" => {
                let path = it.next().ok_or("--json requires a path")?;
                json = Some(PathBuf::from(path));
            }
            "--root" => {
                let path = it.next().ok_or("--root requires a directory")?;
                root = Some(PathBuf::from(path));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if !workspace && root.is_none() {
        return Err("pass --workspace (or an explicit --root DIR)".to_owned());
    }
    let root = match root {
        Some(r) => r,
        None => discover_workspace_root()?,
    };
    Ok(Args {
        root,
        deny,
        json,
        quiet,
    })
}

/// Walks up from the current directory to the first `Cargo.toml` declaring
/// a `[workspace]` section.
fn discover_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no [workspace] Cargo.toml found above the current directory".to_owned());
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("margins-lint: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let report = match margins_lint::lint_workspace(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("margins-lint: {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.json {
        let json = report.to_json();
        if path.as_os_str() == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(path, json) {
            eprintln!("margins-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !args.quiet {
        print!("{}", report.render_human());
    }

    if args.deny && !report.findings.is_empty() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
