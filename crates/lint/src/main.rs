//! CLI driver: `margins-lint --workspace [--deny] [--json PATH]
//! [--sarif PATH] [--format human|json|sarif] [--incremental] [--root DIR]`,
//! plus `margins-lint --explain <rule>`.
//!
//! Exit status: `0` clean (or findings present without `--deny`), `1`
//! findings present under `--deny`, `2` usage or I/O error.
//!
//! Cache statistics from `--incremental` go to **stderr** only: stdout and
//! every written report stay byte-identical between cold and cached runs.

use margins_lint::{CacheState, Rule};
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Sarif,
}

struct Args {
    root: PathBuf,
    deny: bool,
    format: Format,
    json: Option<PathBuf>,
    sarif: Option<PathBuf>,
    incremental: bool,
    cache: Option<PathBuf>,
    quiet: bool,
}

const USAGE: &str = "usage: margins-lint --workspace [options]
       margins-lint --explain <rule>

Lints every Rust source file of the workspace against the determinism,
unit-safety and no-panic rules L1-L10 (see crates/lint and DESIGN.md).

  --workspace       lint the enclosing cargo workspace (located by walking
                    up from the current directory to a [workspace] manifest)
  --root DIR        lint DIR instead of the discovered workspace root
  --deny            exit nonzero when any unwaived finding remains
  --format FMT      what to print on stdout: human (default), json, sarif
  --json PATH       also write the JSON report to PATH ('-' = stdout)
  --sarif PATH      also write the SARIF 2.1.0 report to PATH ('-' = stdout)
  --incremental     reuse the per-file cache (default .margins-lint.cache
                    under the workspace root); reports stay byte-identical
  --cache PATH      cache location for --incremental
  --quiet           suppress human diagnostics
  --explain RULE    print a rule's rationale, example and waiver syntax
                    (by name 'unit-escape' or label 'L7')
";

/// Resolves `--explain` input by name or L-label.
fn rule_by_name_or_label(s: &str) -> Option<Rule> {
    Rule::from_name(s).or_else(|| Rule::all().into_iter().find(|r| r.label() == s))
}

fn explain(arg: &str) -> Result<String, String> {
    let Some(rule) = rule_by_name_or_label(arg) else {
        return Err(format!(
            "unknown rule '{arg}' (rules: {})",
            Rule::all().map(|r| r.name()).join(", ")
        ));
    };
    Ok(format!(
        "{}/{} — {}\n\n{}\n",
        rule.label(),
        rule.name(),
        rule.summary(),
        rule.explain()
    ))
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut root: Option<PathBuf> = None;
    let mut deny = false;
    let mut format = Format::Human;
    let mut json = None;
    let mut sarif = None;
    let mut incremental = false;
    let mut cache = None;
    let mut quiet = false;
    let mut workspace = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--deny" => deny = true,
            "--quiet" => quiet = true,
            "--incremental" => incremental = true,
            "--format" => {
                let fmt = it.next().ok_or("--format requires human|json|sarif")?;
                format = match fmt.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format '{other}'")),
                };
            }
            "--json" => {
                let path = it.next().ok_or("--json requires a path")?;
                json = Some(PathBuf::from(path));
            }
            "--sarif" => {
                let path = it.next().ok_or("--sarif requires a path")?;
                sarif = Some(PathBuf::from(path));
            }
            "--cache" => {
                let path = it.next().ok_or("--cache requires a path")?;
                cache = Some(PathBuf::from(path));
            }
            "--root" => {
                let path = it.next().ok_or("--root requires a directory")?;
                root = Some(PathBuf::from(path));
            }
            "--explain" => {
                let rule = it.next().ok_or("--explain requires a rule name")?;
                print!("{}", explain(&rule)?);
                return Ok(None);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if !workspace && root.is_none() {
        return Err("pass --workspace (or an explicit --root DIR)".to_owned());
    }
    let root = match root {
        Some(r) => r,
        None => discover_workspace_root()?,
    };
    Ok(Some(Args {
        root,
        deny,
        format,
        json,
        sarif,
        incremental,
        cache,
        quiet,
    }))
}

/// Walks up from the current directory to the first `Cargo.toml` declaring
/// a `[workspace]` section.
fn discover_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no [workspace] Cargo.toml found above the current directory".to_owned());
        }
    }
}

/// Writes `content` to `path`, with `-` meaning stdout.
fn emit(path: &PathBuf, content: &str) -> Result<(), String> {
    if path.as_os_str() == "-" {
        print!("{content}");
        Ok(())
    } else {
        std::fs::write(path, content).map_err(|e| format!("writing {}: {e}", path.display()))
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("margins-lint: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let cache_path = if args.incremental {
        Some(
            args.cache
                .clone()
                .unwrap_or_else(|| args.root.join(".margins-lint.cache")),
        )
    } else {
        args.cache.clone()
    };
    let (report, stats) =
        match margins_lint::lint_workspace_incremental(&args.root, cache_path.as_deref()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("margins-lint: {}: {e}", args.root.display());
                return ExitCode::from(2);
            }
        };

    // Cache telemetry is out-of-band so report bytes never vary with
    // cache temperature.
    match &stats.cache_state {
        CacheState::Disabled => {}
        CacheState::Cold => eprintln!(
            "margins-lint: cache cold; scanned {} file(s), wrote cache",
            stats.cache_misses
        ),
        CacheState::Warm => eprintln!(
            "margins-lint: cache warm; {} hit(s), {} miss(es) of {} file(s)",
            stats.cache_hits, stats.cache_misses, stats.rust_files
        ),
        CacheState::Corrupt(msg) => eprintln!(
            "margins-lint: warning: corrupt cache ({msg}); full re-scan of {} file(s), cache rewritten",
            stats.cache_misses
        ),
    }

    if let Some(path) = &args.json {
        if let Err(e) = emit(path, &report.to_json()) {
            eprintln!("margins-lint: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &args.sarif {
        if let Err(e) = emit(path, &margins_lint::sarif::to_sarif(&report)) {
            eprintln!("margins-lint: {e}");
            return ExitCode::from(2);
        }
    }
    match args.format {
        Format::Human => {
            if !args.quiet {
                print!("{}", report.render_human());
            }
        }
        Format::Json if args.json.as_deref().map(|p| p.as_os_str()) != Some("-".as_ref()) => {
            print!("{}", report.to_json());
        }
        Format::Sarif if args.sarif.as_deref().map(|p| p.as_os_str()) != Some("-".as_ref()) => {
            print!("{}", margins_lint::sarif::to_sarif(&report));
        }
        _ => {}
    }

    if args.deny && !report.findings.is_empty() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
