//! Deterministic workspace traversal.
//!
//! `std::fs::read_dir` order is filesystem-dependent; the walker sorts
//! every directory's entries by name so the scan order — and therefore the
//! report — is identical on every machine.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into.
const SKIP_DIRS: [&str; 3] = [".git", "target", "node_modules"];

/// Recursively lists all files under `root`, sorted, as
/// workspace-relative `/`-separated paths.
pub fn walk(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    walk_dir(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk_dir(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            walk_dir(root, &path, out)?;
        } else if let Ok(rel) = path.strip_prefix(root) {
            let rel: Vec<String> = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect();
            out.push(rel.join("/"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_is_sorted_and_relative() {
        let dir = std::env::temp_dir().join(format!("margins-lint-walk-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("b/inner")).unwrap();
        fs::create_dir_all(dir.join(".git")).unwrap();
        fs::write(dir.join("b/inner/z.rs"), "").unwrap();
        fs::write(dir.join("a.rs"), "").unwrap();
        fs::write(dir.join(".git/ignored"), "").unwrap();
        let files = walk(&dir).unwrap();
        assert_eq!(files, vec!["a.rs".to_owned(), "b/inner/z.rs".to_owned()]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
