//! A minimal, lossless-enough Rust lexer.
//!
//! The linter's rules are token-pattern rules (`thread_rng` as an
//! identifier, `.` `unwrap` `(` as a call, `==` adjacent to a float
//! literal), so a full parse is unnecessary — but a naive substring grep
//! would false-positive inside string literals and comments. This lexer
//! classifies every byte of a source file as code token, comment or
//! literal, handling nested block comments, raw strings, byte strings,
//! char literals and lifetimes, so the rules only ever see real code
//! tokens while waiver scanning only ever sees comment text.

/// One code token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
    /// Token class and text.
    pub kind: TokKind,
}

/// Token classes the rules care about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Operator / punctuation, multi-character operators joined (`==`, `::`).
    Punct(String),
    /// Integer literal (any radix).
    Int,
    /// Floating-point literal.
    Float,
    /// Lifetime or loop label (`'a`).
    Lifetime,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The punctuation text, if this token is punctuation.
    pub fn punct(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Punct(s) => Some(s),
            _ => None,
        }
    }
}

/// A comment (line, block or doc) with the line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line of the first character of the comment.
    pub line: u32,
    /// Full comment text, delimiters stripped.
    pub text: String,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so greedy matching works.
const OPERATORS: &[&str] = &[
    "..=", "<<=", ">>=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Lexes `src` into code tokens and comments.
///
/// The lexer is intentionally forgiving: on malformed input (unterminated
/// string, stray byte) it resynchronises at the next character rather than
/// failing, because lint must never be the reason a build script dies on a
/// half-written file.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);

        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < chars.len() {
            if chars[i + 1] == '/' {
                let start = i + 2;
                while i < chars.len() && chars[i] != '\n' {
                    bump!();
                }
                let text: String = chars[start..i.min(chars.len())].iter().collect();
                out.comments.push(Comment { line: tline, text });
                continue;
            }
            if chars[i + 1] == '*' {
                let start = i + 2;
                bump!();
                bump!();
                let mut depth = 1u32;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                        depth += 1;
                        bump!();
                        bump!();
                    } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                        depth -= 1;
                        bump!();
                        bump!();
                    } else {
                        bump!();
                    }
                }
                let end = i.saturating_sub(2).max(start);
                let text: String = chars[start..end.min(chars.len())].iter().collect();
                out.comments.push(Comment { line: tline, text });
                continue;
            }
        }

        // Raw / byte strings: r"", r#""#, b"", br#""#, and plain strings.
        if c == 'r' || c == 'b' {
            if let Some(consumed) = try_string_prefix(&chars, i) {
                for _ in 0..consumed {
                    bump!();
                }
                continue;
            }
        }
        if c == '"' {
            let consumed = scan_plain_string(&chars, i);
            for _ in 0..consumed {
                bump!();
            }
            continue;
        }

        // Char literal or lifetime.
        if c == '\'' {
            if let Some(consumed) = scan_char_literal(&chars, i) {
                for _ in 0..consumed {
                    bump!();
                }
                continue;
            }
            // Lifetime / label: consume the quote plus identifier chars.
            bump!();
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                bump!();
            }
            out.tokens.push(Token {
                line: tline,
                col: tcol,
                kind: TokKind::Lifetime,
            });
            continue;
        }

        // Identifiers and keywords.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                bump!();
            }
            let text: String = chars[start..i].iter().collect();
            out.tokens.push(Token {
                line: tline,
                col: tcol,
                kind: TokKind::Ident(text),
            });
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let consumed = scan_number(&chars, i);
            let is_float = consumed.1;
            for _ in 0..consumed.0 {
                bump!();
            }
            out.tokens.push(Token {
                line: tline,
                col: tcol,
                kind: if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                },
            });
            continue;
        }

        // Operators, longest match first.
        let mut matched = false;
        for op in OPERATORS {
            let oc: Vec<char> = op.chars().collect();
            if chars[i..].starts_with(&oc) {
                for _ in 0..oc.len() {
                    bump!();
                }
                out.tokens.push(Token {
                    line: tline,
                    col: tcol,
                    kind: TokKind::Punct((*op).to_owned()),
                });
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }

        // Single-character punctuation (or anything we don't recognise).
        bump!();
        out.tokens.push(Token {
            line: tline,
            col: tcol,
            kind: TokKind::Punct(c.to_string()),
        });
    }

    out
}

/// If position `i` starts a raw/byte string (`r"`, `r#"`, `b"`, `br#"`,
/// `rb"` is not legal Rust but tolerated), returns the number of chars the
/// whole literal occupies.
fn try_string_prefix(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    let mut raw = false;
    // Up to two prefix letters (b, r in either order — only br/r/b are legal).
    for _ in 0..2 {
        match chars.get(j) {
            Some('r') => {
                raw = true;
                j += 1;
            }
            Some('b') => {
                j += 1;
            }
            _ => break,
        }
    }
    if j == i {
        return None;
    }
    if raw {
        // Count hashes.
        let mut hashes = 0usize;
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        if chars.get(j) != Some(&'"') {
            return None;
        }
        j += 1;
        // Scan until `"` followed by `hashes` hashes.
        loop {
            match chars.get(j) {
                None => return Some(j - i),
                Some('"') => {
                    let mut k = j + 1;
                    let mut seen = 0usize;
                    while seen < hashes && chars.get(k) == Some(&'#') {
                        seen += 1;
                        k += 1;
                    }
                    if seen == hashes {
                        return Some(k - i);
                    }
                    j += 1;
                }
                Some(_) => j += 1,
            }
        }
    }
    // Byte string b"..." (with escapes). If the prefix letters are not
    // followed by a quote this was just an identifier starting with b/r —
    // not a string at all.
    if chars.get(j) == Some(&'"') {
        let consumed = scan_plain_string(chars, j);
        return Some(j - i + consumed);
    }
    // b'x' byte char literal.
    if chars.get(j) == Some(&'\'') {
        if let Some(consumed) = scan_char_literal(chars, j) {
            return Some(j - i + consumed);
        }
    }
    None
}

/// Scans a `"..."` literal starting at the opening quote; returns chars
/// consumed including both quotes. Handles `\\` and `\"` escapes.
fn scan_plain_string(chars: &[char], i: usize) -> usize {
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '"' => return j + 1 - i,
            _ => j += 1,
        }
    }
    chars.len() - i
}

/// Scans a char literal starting at `'`; returns `Some(consumed)` when the
/// quote really opens a char literal (as opposed to a lifetime).
fn scan_char_literal(chars: &[char], i: usize) -> Option<usize> {
    let next = chars.get(i + 1)?;
    if *next == '\\' {
        // Escape: consume until closing quote.
        let mut j = i + 2;
        if j < chars.len() {
            j += 1; // the escaped character
        }
        // Unicode escapes \u{...} span further.
        while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
            j += 1;
        }
        if chars.get(j) == Some(&'\'') {
            return Some(j + 1 - i);
        }
        return Some(j - i);
    }
    // 'x' — a char literal only if the character after the payload closes it.
    if chars.get(i + 2) == Some(&'\'') && *next != '\'' {
        return Some(3);
    }
    None
}

/// Scans a numeric literal; returns `(consumed, is_float)`.
fn scan_number(chars: &[char], i: usize) -> (usize, bool) {
    let mut j = i;
    let mut is_float = false;

    // Radix prefixes: 0x / 0o / 0b — always integers.
    if chars[j] == '0' && j + 1 < chars.len() && matches!(chars[j + 1], 'x' | 'o' | 'b' | 'X') {
        j += 2;
        while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        return (j - i, false);
    }

    while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
        j += 1;
    }
    // Fractional part: a '.' followed by a digit, or a terminal '.' that is
    // neither a range operator (`0..n`) nor a method call (`1.max(2)`).
    if j < chars.len() && chars[j] == '.' {
        let after = chars.get(j + 1);
        let starts_range = after == Some(&'.');
        let starts_method = after.is_some_and(|c| c.is_alphabetic() || *c == '_');
        if !starts_range && !starts_method {
            is_float = true;
            j += 1;
            while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
    }
    // Exponent.
    if j < chars.len() && matches!(chars[j], 'e' | 'E') {
        let mut k = j + 1;
        if k < chars.len() && matches!(chars[k], '+' | '-') {
            k += 1;
        }
        if k < chars.len() && chars[k].is_ascii_digit() {
            is_float = true;
            j = k;
            while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
    }
    // Type suffix (u32, f64, …).
    if j < chars.len() && (chars[j].is_alphabetic() || chars[j] == '_') {
        let suffix_start = j;
        while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        let suffix: String = chars[suffix_start..j].iter().collect();
        if suffix.starts_with('f') {
            is_float = true;
        }
    }
    (j - i, is_float)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r#"
            // thread_rng in a comment
            /* and HashMap in /* a nested */ block */
            let s = "thread_rng()";
            let r = r#other; // raw-ish ident
        "#;
        let ids = idents(src);
        assert!(!ids.contains(&"thread_rng".to_owned()));
        assert!(!ids.contains(&"HashMap".to_owned()));
        assert!(ids.contains(&"r".to_owned()));
    }

    #[test]
    fn raw_and_byte_strings_are_skipped() {
        let src = "let a = r\"unwrap()\"; let b = b\"expect\"; let c = br#\"x \"q\" y\"#;";
        let ids = idents(src);
        assert_eq!(
            ids,
            vec!["let", "a", "let", "b", "let", "c"],
            "string payloads must not produce tokens"
        );
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'q'; let n = '\\n'; }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
        // 'q' and '\n' must not have produced lifetime or ident tokens.
        assert!(!idents(src).contains(&"q".to_owned()));
    }

    #[test]
    fn float_vs_int_vs_range_vs_method() {
        let toks = lex("let a = 1.5; let b = 0..10; let c = 1.max(2); let d = 3.; let e = 1e4; let f = 0x1F; let g = 2f64;");
        let floats = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Float)
            .count();
        // 1.5, 3., 1e4, 2f64 are floats; 0, 10, 1, 2, 0x1F are not.
        assert_eq!(floats, 4, "{:?}", toks.tokens);
    }

    #[test]
    fn operators_are_joined() {
        let toks = lex("a == b != c :: d .. e ..= f");
        let puncts: Vec<&str> = toks.tokens.iter().filter_map(Token::punct).collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "..", "..="]);
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let src = "let a = 1;\n// lint: allow(no-panic)\nlet b = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("allow(no-panic)"));
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("ab cd\nef");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (1, 4));
        assert_eq!((lexed.tokens[2].line, lexed.tokens[2].col), (2, 1));
    }

    #[test]
    fn deeply_nested_block_comments_terminate() {
        let src = "/* a /* b /* c */ d */ e */ fn ok() {}";
        assert_eq!(idents(src), vec!["fn", "ok"]);
    }

    #[test]
    fn unterminated_nested_comment_swallows_the_rest() {
        // Forgiving lexing: a half-written file must not panic; everything
        // after the unclosed `/*` is comment, not code.
        let src = "fn before() {} /* open /* still open */ fn after() {}";
        assert_eq!(idents(src), vec!["fn", "before"]);
    }

    #[test]
    fn raw_strings_with_hashes_span_lines_and_track_positions() {
        let src = "let a = r##\"multi\nline \"# quote\" unwrap()\"##;\nlet b = 1;";
        let lexed = lex(src);
        assert_eq!(idents(src), vec!["let", "a", "let", "b"]);
        let b_tok = lexed
            .tokens
            .iter()
            .find(|t| t.ident() == Some("b"))
            .expect("b survives");
        assert_eq!(
            b_tok.line, 3,
            "newlines inside raw strings still advance lines"
        );
    }

    #[test]
    fn labeled_loops_and_escaped_quote_chars() {
        let src =
            "fn f() { 'outer: loop { break 'outer; } let q = '\\''; let s: &'static str = \"\"; }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3, "two labels plus 'static");
        // The escaped-quote char literal is consumed whole: the tokens after
        // it resume correctly and nothing inside it leaks out as code.
        assert_eq!(
            idents(src),
            vec!["fn", "f", "loop", "break", "let", "q", "let", "s", "str"]
        );
    }

    #[test]
    fn doc_comments_are_comments() {
        let lexed = lex("/// outer doc\n//! inner doc\nfn x() {}\n");
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(idents("/// HashMap\nfn x() {}"), vec!["fn", "x"]);
    }
}
