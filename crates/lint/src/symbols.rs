//! The cross-file workspace symbol table.
//!
//! The semantic rules need three kinds of workspace-global knowledge that
//! no single file contains:
//!
//! * which **quantity newtypes** exist and where (`Millivolts` in
//!   `crates/sim` wraps `u32`) — drives L7 unit-escape,
//! * the **trace event schema** (`TraceEvent`'s variants and field names)
//!   — drives L8 span-balance,
//! * which function names **always return `Result`** — drives L10
//!   swallowed-fallibility,
//!
//! plus the **crate dependency graph** (from `Cargo.toml` manifests), so a
//! rule only binds crates that can actually *see* the type it wants used
//! (the `trace` crate stores raw primitives deliberately: it does not
//! depend on `sim`, so `Millivolts` is not nameable there).
//!
//! Each file contributes a small, serializable [`FileSymbols`] summary;
//! the incremental cache persists these so unchanged files need no
//! re-parse. The merged [`Symbols`] table hashes to a *context hash* —
//! cached per-file findings are only valid while the context hash holds,
//! which is what makes cross-file rules safe under incremental linting.

use crate::parse::{ItemKind, ParsedFile};
use std::collections::{BTreeMap, BTreeSet};

/// Primitive types a quantity newtype may wrap.
const PRIMITIVES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize", "f32", "f64",
];

/// The per-file symbol summary — everything one file contributes to the
/// workspace table, in a shape small enough to persist in the lint cache.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FileSymbols {
    /// Public single-field tuple structs wrapping a primitive:
    /// `(newtype name, inner primitive)`.
    pub newtypes: Vec<(String, String)>,
    /// Variants of a `TraceEvent` enum declared in this file:
    /// `(variant name, named field names)`.
    pub trace_variants: Vec<(String, Vec<String>)>,
    /// Every function declared in this file: `(name, returns Result)`.
    pub fns: Vec<(String, bool)>,
}

/// Extracts the symbol summary of one parsed file.
#[must_use]
pub fn file_symbols(parsed: &ParsedFile) -> FileSymbols {
    let mut out = FileSymbols::default();
    for item in &parsed.items {
        match &item.kind {
            ItemKind::Struct { fields, tuple } => {
                if item.is_pub
                    && *tuple
                    && fields.len() == 1
                    && PRIMITIVES.contains(&fields[0].ty.as_str())
                {
                    out.newtypes.push((item.name.clone(), fields[0].ty.clone()));
                }
            }
            ItemKind::Enum { variants } if item.name == "TraceEvent" => {
                for v in variants {
                    let fields: Vec<String> = v.fields.iter().map(|f| f.name.clone()).collect();
                    out.trace_variants.push((v.name.clone(), fields));
                }
            }
            ItemKind::Fn(sig) => {
                let returns_result = sig.ret.as_deref().is_some_and(|r| ty_mentions(r, "Result"));
                out.fns.push((item.name.clone(), returns_result));
            }
            _ => {}
        }
    }
    out.newtypes.sort();
    out.trace_variants.sort();
    out.fns.sort();
    out
}

/// One quantity the unit-escape rule enforces, bound to a newtype that was
/// actually found in the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quantity {
    /// The newtype that should carry the quantity (`Millivolts`).
    pub newtype: &'static str,
    /// Raw primitive(s) the newtype replaces at boundaries.
    pub raw: &'static [&'static str],
    /// Exact parameter/function names that denote the quantity.
    pub names: &'static [&'static str],
    /// Name suffixes that denote the quantity (`_mv`).
    pub suffixes: &'static [&'static str],
}

/// The registry of quantities the rule knows how to type. A quantity only
/// activates when its newtype exists somewhere in the workspace.
const QUANTITIES: [Quantity; 3] = [
    Quantity {
        newtype: "Millivolts",
        raw: &["u32"],
        names: &["mv"],
        suffixes: &["_mv"],
    },
    Quantity {
        newtype: "Megahertz",
        raw: &["u32"],
        names: &["mhz"],
        suffixes: &["_mhz"],
    },
    Quantity {
        newtype: "CoreId",
        raw: &["u8"],
        names: &["core"],
        suffixes: &[],
    },
];

/// A quantity together with its defining crate, as resolved against the
/// actual workspace.
#[derive(Debug, Clone)]
pub struct ActiveQuantity {
    /// The registry entry.
    pub quantity: Quantity,
    /// The crate that declares the newtype.
    pub def_crate: String,
}

/// The merged, workspace-wide symbol table.
#[derive(Debug, Default)]
pub struct Symbols {
    /// Newtype name → (inner primitive, defining crate).
    pub newtypes: BTreeMap<String, (String, String)>,
    /// `TraceEvent` variant name → set of named fields.
    pub trace_schema: BTreeMap<String, BTreeSet<String>>,
    /// Function name → (how many declarations return `Result`, total
    /// declarations).
    pub fn_result: BTreeMap<String, (u32, u32)>,
    /// Crate → transitive dependency closure (workspace crates only,
    /// including the crate itself).
    pub dep_closure: BTreeMap<String, BTreeSet<String>>,
    /// Quantities whose newtype exists in this workspace.
    pub active_quantities: Vec<ActiveQuantity>,
}

impl Symbols {
    /// Builds the table from per-file summaries and manifest texts.
    ///
    /// `per_file` maps workspace-relative paths to summaries;
    /// `manifests` maps workspace-relative `Cargo.toml` paths to contents.
    #[must_use]
    pub fn build(
        per_file: &BTreeMap<String, FileSymbols>,
        manifests: &BTreeMap<String, String>,
    ) -> Symbols {
        let mut sym = Symbols::default();
        for (rel, fs) in per_file {
            let krate = crate_of(rel).unwrap_or_default();
            for (name, inner) in &fs.newtypes {
                sym.newtypes
                    .entry(name.clone())
                    .or_insert_with(|| (inner.clone(), krate.clone()));
            }
            for (variant, fields) in &fs.trace_variants {
                sym.trace_schema
                    .entry(variant.clone())
                    .or_default()
                    .extend(fields.iter().cloned());
            }
            for (name, returns_result) in &fs.fns {
                let slot = sym.fn_result.entry(name.clone()).or_insert((0, 0));
                slot.1 += 1;
                if *returns_result {
                    slot.0 += 1;
                }
            }
        }
        sym.dep_closure = dep_closure(manifests);
        sym.active_quantities = QUANTITIES
            .iter()
            .filter_map(|q| {
                sym.newtypes
                    .get(q.newtype)
                    .map(|(_, def_crate)| ActiveQuantity {
                        quantity: q.clone(),
                        def_crate: def_crate.clone(),
                    })
            })
            .collect();
        sym
    }

    /// Whether code in `krate` can name items of `def_crate` (it is the
    /// same crate or a transitive dependency).
    #[must_use]
    pub fn crate_sees(&self, krate: &str, def_crate: &str) -> bool {
        if krate == def_crate {
            return true;
        }
        self.dep_closure
            .get(krate)
            .is_some_and(|deps| deps.contains(def_crate))
    }

    /// Whether every workspace function named `name` returns `Result`
    /// (and at least one such function exists).
    #[must_use]
    pub fn always_returns_result(&self, name: &str) -> bool {
        self.fn_result
            .get(name)
            .is_some_and(|(res, total)| *res == *total && *total > 0)
    }

    /// FNV-1a hash over the canonical serialization of the table — the
    /// *context hash* gating cached cross-file findings.
    #[must_use]
    pub fn context_hash(&self) -> u64 {
        let mut dump = String::new();
        for (name, (inner, krate)) in &self.newtypes {
            dump.push_str("N\x1f");
            dump.push_str(name);
            dump.push('\x1f');
            dump.push_str(inner);
            dump.push('\x1f');
            dump.push_str(krate);
            dump.push('\n');
        }
        for (variant, fields) in &self.trace_schema {
            dump.push_str("V\x1f");
            dump.push_str(variant);
            for f in fields {
                dump.push('\x1f');
                dump.push_str(f);
            }
            dump.push('\n');
        }
        for (name, (res, total)) in &self.fn_result {
            dump.push_str("R\x1f");
            dump.push_str(name);
            dump.push('\x1f');
            dump.push_str(&res.to_string());
            dump.push('\x1f');
            dump.push_str(&total.to_string());
            dump.push('\n');
        }
        for (krate, deps) in &self.dep_closure {
            dump.push_str("D\x1f");
            dump.push_str(krate);
            for d in deps {
                dump.push('\x1f');
                dump.push_str(d);
            }
            dump.push('\n');
        }
        fnv1a(dump.as_bytes())
    }
}

/// FNV-1a 64-bit — the repo-standard dependency-free content hash.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The owning workspace crate of a relative path: `crates/sim/src/x.rs`
/// → `sim`; anything else under the root package → `voltmargin`.
#[must_use]
pub fn crate_of(rel: &str) -> Option<String> {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => parts.next().map(str::to_owned),
        Some(_) => Some("voltmargin".to_owned()),
        None => None,
    }
}

/// Whether type text `ty` names `what` as a standalone path segment
/// (`Option<u32>` mentions `u32`; `Vec<u32>` too; `u32x4` does not).
#[must_use]
pub fn ty_mentions(ty: &str, what: &str) -> bool {
    ty.split(|c: char| !c.is_alphanumeric() && c != '_')
        .any(|seg| seg == what)
}

/// Parses the `[dependencies]` sections of every manifest and computes
/// each workspace crate's transitive dependency closure.
///
/// Workspace crates are identified by the `margins-` package-name prefix
/// (the root package is `voltmargin`); only intra-workspace edges are
/// recorded. The parse is line-oriented and deliberately minimal — enough
/// for the manifest style this repo uses.
fn dep_closure(manifests: &BTreeMap<String, String>) -> BTreeMap<String, BTreeSet<String>> {
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (rel, text) in manifests {
        let krate = match manifest_crate(rel) {
            Some(k) => k,
            None => continue,
        };
        let deps = direct.entry(krate).or_default();
        let mut in_deps = false;
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_deps = line == "[dependencies]" || line.starts_with("[dependencies.");
                if let Some(rest) = line.strip_prefix("[dependencies.") {
                    if let Some(name) = rest.strip_suffix(']') {
                        if let Some(ws) = workspace_dep_name(name) {
                            deps.insert(ws);
                        }
                    }
                }
                continue;
            }
            if !in_deps {
                continue;
            }
            if let Some(eq) = line.find('=') {
                let key = line[..eq].trim().trim_matches('"');
                // `margins-sim.workspace = true` style keys.
                let key = key.split('.').next().unwrap_or(key);
                if let Some(ws) = workspace_dep_name(key) {
                    deps.insert(ws);
                }
            }
        }
    }
    // Transitive closure by iteration to a fixed point.
    let mut closure = direct.clone();
    loop {
        let mut grew = false;
        for krate in direct.keys() {
            let current: BTreeSet<String> = closure[krate].clone();
            let mut next = current.clone();
            for dep in &current {
                if let Some(inner) = closure.get(dep) {
                    next.extend(inner.iter().cloned());
                }
            }
            if next.len() > current.len() {
                closure.insert(krate.clone(), next);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    closure
}

/// Maps a dependency key to a workspace crate directory name.
fn workspace_dep_name(key: &str) -> Option<String> {
    key.strip_prefix("margins-").map(str::to_owned)
}

/// The crate a manifest path belongs to (`crates/sim/Cargo.toml` → `sim`,
/// the root `Cargo.toml` → `voltmargin`).
fn manifest_crate(rel: &str) -> Option<String> {
    if rel == "Cargo.toml" {
        return Some("voltmargin".to_owned());
    }
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", name, "Cargo.toml"] => Some((*name).to_owned()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn symbols_of(src: &str) -> FileSymbols {
        file_symbols(&parse(&lex(src).tokens))
    }

    #[test]
    fn newtypes_are_public_primitive_tuples_only() {
        let fs = symbols_of(
            "pub struct Millivolts(u32);\n\
             struct Private(u32);\n\
             pub struct Pair(u32, u32);\n\
             pub struct Wrapper(String);\n\
             pub struct Named { v: u32 }",
        );
        assert_eq!(
            fs.newtypes,
            vec![("Millivolts".to_owned(), "u32".to_owned())]
        );
    }

    #[test]
    fn trace_schema_collects_named_fields() {
        let fs =
            symbols_of("pub enum TraceEvent { SweepStarted { program: String, core: u8 }, Plain }");
        assert_eq!(fs.trace_variants.len(), 2);
        assert_eq!(fs.trace_variants[1].0, "SweepStarted");
        assert_eq!(fs.trace_variants[1].1, vec!["program", "core"]);
        // Other enums do not contribute.
        assert!(symbols_of("pub enum Other { A { x: u8 } }")
            .trace_variants
            .is_empty());
    }

    #[test]
    fn fn_result_tracking() {
        let fs = symbols_of(
            "pub fn a() -> Result<(), E> { Ok(()) }\nfn b() -> u32 { 0 }\nfn a() -> io::Result<u8> { Ok(0) }",
        );
        let mut per_file = BTreeMap::new();
        per_file.insert("crates/sim/src/x.rs".to_owned(), fs);
        let sym = Symbols::build(&per_file, &BTreeMap::new());
        assert!(sym.always_returns_result("a"));
        assert!(!sym.always_returns_result("b"));
        assert!(!sym.always_returns_result("missing"));
    }

    #[test]
    fn dep_closure_is_transitive() {
        let mut manifests = BTreeMap::new();
        manifests.insert(
            "crates/sim/Cargo.toml".to_owned(),
            "[package]\nname = \"margins-sim\"\n[dependencies]\nserde = \"1\"\n".to_owned(),
        );
        manifests.insert(
            "crates/core/Cargo.toml".to_owned(),
            "[dependencies]\nmargins-sim = { workspace = true }\n".to_owned(),
        );
        manifests.insert(
            "crates/energy/Cargo.toml".to_owned(),
            "[dependencies]\nmargins-core.workspace = true\n".to_owned(),
        );
        let sym = Symbols::build(&BTreeMap::new(), &manifests);
        assert!(sym.crate_sees("core", "sim"));
        assert!(sym.crate_sees("energy", "sim"), "transitive edge");
        assert!(!sym.crate_sees("sim", "core"));
        assert!(sym.crate_sees("sim", "sim"), "a crate sees itself");
    }

    #[test]
    fn quantities_activate_only_when_newtype_exists() {
        let mut per_file = BTreeMap::new();
        per_file.insert(
            "crates/sim/src/volt.rs".to_owned(),
            symbols_of("pub struct Millivolts(u32);"),
        );
        let sym = Symbols::build(&per_file, &BTreeMap::new());
        let names: Vec<&str> = sym
            .active_quantities
            .iter()
            .map(|a| a.quantity.newtype)
            .collect();
        assert_eq!(names, vec!["Millivolts"]);
        assert_eq!(sym.active_quantities[0].def_crate, "sim");
    }

    #[test]
    fn context_hash_tracks_symbol_changes() {
        let mut per_file = BTreeMap::new();
        per_file.insert(
            "crates/sim/src/volt.rs".to_owned(),
            symbols_of("pub struct Millivolts(u32);"),
        );
        let a = Symbols::build(&per_file, &BTreeMap::new()).context_hash();
        per_file.insert(
            "crates/sim/src/freq.rs".to_owned(),
            symbols_of("pub struct Megahertz(u32);"),
        );
        let b = Symbols::build(&per_file, &BTreeMap::new()).context_hash();
        assert_ne!(a, b);
        let b2 = Symbols::build(&per_file, &BTreeMap::new()).context_hash();
        assert_eq!(b, b2, "hash must be stable for identical tables");
    }

    #[test]
    fn crate_of_paths() {
        assert_eq!(crate_of("crates/sim/src/volt.rs").as_deref(), Some("sim"));
        assert_eq!(crate_of("src/lib.rs").as_deref(), Some("voltmargin"));
        assert_eq!(
            crate_of("examples/quickstart.rs").as_deref(),
            Some("voltmargin")
        );
    }

    #[test]
    fn ty_mentions_segments_only() {
        assert!(ty_mentions("Option<u32>", "u32"));
        assert!(ty_mentions("&mut u32", "u32"));
        assert!(!ty_mentions("u32x4", "u32"));
        assert!(!ty_mentions("Millivolts", "u32"));
    }
}
