//! End-to-end determinism guarantees of the analytics surface.
//!
//! Campaigns are generated in-process with `margins-core`; the summaries,
//! reports and diffs must be byte-identical across reruns and across
//! serial vs sharded execution, and the `trace-scope` binary must exit
//! with the documented class codes.

use margins_core::config::CampaignConfig;
use margins_core::runner::Campaign;
use margins_scope::{csv, diff, json, markdown, summarize_records, DivergenceClass};
use margins_sim::{ChipSpec, CoreId, Corner, Millivolts};
use margins_trace::{JsonlSink, MemorySink, Sink, TraceRecord};
use std::path::PathBuf;
use std::process::Command;

fn config(seed: u64) -> CampaignConfig {
    CampaignConfig::builder()
        .benchmarks(["bwaves", "namd"])
        .cores([CoreId::new(0), CoreId::new(4)])
        .iterations(2)
        .start_voltage(Millivolts::new(915))
        .floor_voltage(Millivolts::new(885))
        .seed(seed)
        .build()
        .expect("valid test configuration")
}

/// Runs the campaign over `threads` workers, returning the records and
/// the serialized JSONL text.
fn run_traced(seed: u64, threads: usize) -> (Vec<TraceRecord>, String) {
    let campaign = Campaign::new(ChipSpec::new(Corner::Ttt, 0), config(seed));
    let mut memory = MemorySink::new();
    let mut jsonl = JsonlSink::new(Vec::new());
    {
        let mut sinks: [&mut dyn Sink; 2] = [&mut memory, &mut jsonl];
        let _ = campaign.execute_traced(threads, &mut sinks);
    }
    let bytes = jsonl.into_inner().expect("in-memory writer");
    (memory.records, String::from_utf8(bytes).expect("utf8"))
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("margins-scope-{name}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clean scratch");
    }
    std::fs::create_dir_all(&dir).expect("create scratch");
    dir
}

#[test]
fn reports_are_byte_identical_across_reruns_and_sharding() {
    let (serial, serial_text) = run_traced(7, 1);
    let (serial_again, _) = run_traced(7, 1);
    let (sharded, sharded_text) = run_traced(7, 4);

    // The stream itself is deterministic; everything downstream inherits it.
    assert_eq!(serial, serial_again);
    assert_eq!(serial_text, sharded_text);

    let a = summarize_records(&serial).expect("valid stream");
    let b = summarize_records(&sharded).expect("valid stream");
    assert_eq!(markdown(&a), markdown(&b));
    assert_eq!(json(&a), json(&b));
    assert_eq!(csv(&a), csv(&b));

    // Rerunning the renderers on the same summary changes nothing.
    assert_eq!(markdown(&a), markdown(&a));
    assert_eq!(json(&a), json(&a));
    assert_eq!(csv(&a), csv(&a));

    // The summary reflects the campaign grid.
    assert_eq!(a.campaigns.len(), 1);
    let c = &a.campaigns[0];
    assert_eq!(c.sweeps.len(), 4);
    assert_eq!(c.runs, c.declared_runs);
    assert_eq!(c.power_cycles, c.declared_power_cycles);
}

#[test]
fn same_experiment_diffs_identical_and_different_seeds_diverge() {
    let (serial, _) = run_traced(7, 1);
    let (sharded, _) = run_traced(7, 4);
    let report = diff(&serial, &sharded);
    assert_eq!(report.class, DivergenceClass::Identical, "{report:?}");

    let (other, _) = run_traced(8, 1);
    let report = diff(&serial, &other);
    assert_eq!(
        report.class,
        DivergenceClass::OutcomeDivergence,
        "{report:?}"
    );
    let d = report.first_divergence.expect("pinpointed");
    assert!(
        d.span_path.starts_with("campaign TTT#0/pmd"),
        "{}",
        d.span_path
    );
}

#[test]
fn trace_scope_binary_summarizes_diffs_and_exposes_metrics() {
    let dir = scratch_dir("cli");
    let (_, text_a) = run_traced(7, 1);
    let (_, text_b) = run_traced(7, 4);
    let (_, text_c) = run_traced(8, 1);
    let a = dir.join("a.jsonl");
    let b = dir.join("b.jsonl");
    let c = dir.join("c.jsonl");
    std::fs::write(&a, &text_a).expect("write a");
    std::fs::write(&b, &text_b).expect("write b");
    std::fs::write(&c, &text_c).expect("write c");
    let bin = env!("CARGO_BIN_EXE_trace-scope");

    // summary: deterministic across invocations, in every format.
    for format in ["md", "json", "csv"] {
        let run = || {
            let out = Command::new(bin)
                .args([
                    "summary",
                    a.to_str().expect("utf8 path"),
                    "--format",
                    format,
                ])
                .output()
                .expect("spawn trace-scope");
            assert!(out.status.success(), "summary --format {format} failed");
            out.stdout
        };
        assert_eq!(run(), run(), "--format {format} not reproducible");
    }

    // diff of byte-identical streams exits 0.
    let same = Command::new(bin)
        .args(["diff"])
        .args([&a, &b])
        .output()
        .expect("spawn trace-scope");
    assert_eq!(same.status.code(), Some(0), "{same:?}");

    // diff of different-seed campaigns exits with the outcome-divergence
    // code and names the first diverging span.
    let diverged = Command::new(bin)
        .args(["diff"])
        .args([&a, &c])
        .output()
        .expect("spawn trace-scope");
    assert_eq!(diverged.status.code(), Some(6), "{diverged:?}");
    let stdout = String::from_utf8(diverged.stdout).expect("utf8");
    assert!(stdout.contains("outcome-divergence"), "{stdout}");
    assert!(stdout.contains("campaign TTT#0/pmd"), "{stdout}");

    // metrics: OpenMetrics exposition, reproducible.
    let metrics = || {
        let out = Command::new(bin)
            .args(["metrics", a.to_str().expect("utf8 path")])
            .output()
            .expect("spawn trace-scope");
        assert!(out.status.success(), "{out:?}");
        String::from_utf8(out.stdout).expect("utf8")
    };
    let exposition = metrics();
    assert_eq!(exposition, metrics());
    assert!(
        exposition.contains("voltmargin_campaigns_total 1"),
        "{exposition}"
    );
    assert!(exposition.ends_with("# EOF\n"), "{exposition}");

    // A directory argument recurses like trace-check does.
    let status = Command::new(bin)
        .args(["summary", dir.to_str().expect("utf8 path")])
        .output()
        .expect("spawn trace-scope");
    assert!(status.status.success(), "{status:?}");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn usage_and_read_errors_use_reserved_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_trace-scope");
    let usage = Command::new(bin).output().expect("spawn trace-scope");
    assert_eq!(usage.status.code(), Some(2));
    let unknown = Command::new(bin)
        .args(["frobnicate"])
        .output()
        .expect("spawn trace-scope");
    assert_eq!(unknown.status.code(), Some(2));
    let missing = Command::new(bin)
        .args(["diff", "/nonexistent/a.jsonl", "/nonexistent/b.jsonl"])
        .output()
        .expect("spawn trace-scope");
    assert_eq!(missing.status.code(), Some(1), "{missing:?}");
}
