//! Deterministic report rendering: markdown, JSON and CSV.
//!
//! Every renderer is a pure function of the [`StreamSummary`]; floats are
//! formatted with [`json::fmt_f64`] (shortest round-trip) and JSON objects
//! carry sorted keys, so the same summary always renders to the same
//! bytes.

use crate::summary::{CampaignSummary, DecisionSummary, StreamSummary, SweepSummary};
use margins_trace::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders a summary as a markdown report.
#[must_use]
pub fn markdown(summary: &StreamSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# trace-scope summary");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{} records, {} campaign(s), {} standalone decision(s).",
        summary.records,
        summary.campaigns.len(),
        summary.standalone_decisions.len()
    );
    for campaign in &summary.campaigns {
        markdown_campaign(&mut out, campaign);
    }
    if !summary.standalone_decisions.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "## Standalone governor decisions");
        let _ = writeln!(out);
        markdown_decisions(&mut out, &summary.standalone_decisions);
    }
    out
}

fn markdown_campaign(out: &mut String, c: &CampaignSummary) {
    let _ = writeln!(out);
    let _ = writeln!(out, "## Campaign {}", c.label());
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "- grid: {} benchmark(s) × {} core(s) × {} step(s) × {} iteration(s), {} shard(s), seed {}",
        c.benchmarks, c.cores, c.steps, c.iterations, c.shards, c.seed
    );
    let _ = writeln!(
        out,
        "- runs: {} ({} declared), {} abnormal, {} golden capture(s)",
        c.runs, c.declared_runs, c.abnormal_runs, c.goldens
    );
    let _ = writeln!(
        out,
        "- outcomes: {}",
        if c.outcomes.is_empty() {
            "none".to_owned()
        } else {
            c.outcomes
                .iter()
                .map(|(effects, count)| format!("{effects}={count}"))
                .collect::<Vec<_>>()
                .join(", ")
        }
    );
    let _ = writeln!(
        out,
        "- severity: sum {}, max {}",
        json::fmt_f64(c.severity_sum),
        json::fmt_f64(c.severity_max)
    );
    let _ = writeln!(
        out,
        "- energy: {} J over {} s modelled runtime ({} s campaign clock)",
        json::fmt_f64(c.energy_j),
        json::fmt_f64(c.runtime_s),
        json::fmt_f64(c.modelled_time_s)
    );
    let _ = writeln!(
        out,
        "- recoveries: {} power cycle(s) ({} declared)",
        c.power_cycles, c.declared_power_cycles
    );
    match c.cache_hit_rate() {
        Some(rate) => {
            let _ = writeln!(
                out,
                "- cache: {}/{} hit(s) (rate {})",
                c.cache_hits,
                c.cache_lookups,
                json::fmt_f64(rate)
            );
        }
        None => {
            let _ = writeln!(out, "- cache: no lookups");
        }
    }
    if let Some(search) = c.search {
        let _ = writeln!(
            out,
            "- search: {} probed of {} grid step(s), {} cache hit(s), savings {}",
            search.probed_steps,
            search.grid_steps,
            search.cache_hits,
            json::fmt_f64(search.savings())
        );
    }
    if c.storms.is_empty() {
        let _ = writeln!(out, "- recovery storms: none");
    } else {
        let _ = writeln!(
            out,
            "- recovery storms: {}",
            c.storms
                .iter()
                .map(|s| format!("{} ({} power cycles)", s.sweep, s.power_cycles))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "| sweep | runs | abnormal | probes | recoveries | lowest mV | early stop | severity Σ | energy J |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|");
    for sweep in &c.sweeps {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            sweep.label(),
            sweep.runs,
            sweep.abnormal_runs,
            sweep.machine_probes,
            sweep.power_cycles,
            sweep.lowest_mv.map_or("-".to_owned(), |mv| mv.to_string()),
            sweep
                .early_stop_mv
                .map_or("-".to_owned(), |mv| mv.to_string()),
            json::fmt_f64(sweep.severity_sum),
            json::fmt_f64(sweep.energy_j)
        );
    }

    if !c.decisions.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "### Governor decisions");
        let _ = writeln!(out);
        markdown_decisions(out, &c.decisions);
    }
}

fn markdown_decisions(out: &mut String, decisions: &[DecisionSummary]) {
    let _ = writeln!(
        out,
        "| voltage mV | guardband steps | rel. power | rel. performance | energy savings |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    for d in decisions {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} |",
            d.voltage_mv,
            d.guardband_steps,
            json::fmt_f64(d.relative_power),
            json::fmt_f64(d.relative_performance),
            json::fmt_f64(d.energy_savings)
        );
    }
}

/// Renders a summary as a JSON document (sorted keys, one trailing
/// newline).
#[must_use]
pub fn json(summary: &StreamSummary) -> String {
    let mut root = BTreeMap::new();
    root.insert("records".to_owned(), Value::from_u64(summary.records));
    root.insert(
        "campaigns".to_owned(),
        Value::Array(summary.campaigns.iter().map(campaign_value).collect()),
    );
    root.insert(
        "standalone_decisions".to_owned(),
        Value::Array(
            summary
                .standalone_decisions
                .iter()
                .map(decision_value)
                .collect(),
        ),
    );
    let mut out = json::render(&Value::Object(root));
    out.push('\n');
    out
}

fn campaign_value(c: &CampaignSummary) -> Value {
    let mut map = BTreeMap::new();
    map.insert("chip".to_owned(), Value::from_str_val(&c.chip));
    map.insert("rail".to_owned(), Value::from_str_val(&c.rail));
    map.insert(
        "benchmarks".to_owned(),
        Value::from_u64(c.benchmarks.into()),
    );
    map.insert("cores".to_owned(), Value::from_u64(c.cores.into()));
    map.insert("steps".to_owned(), Value::from_u64(c.steps.into()));
    map.insert(
        "iterations".to_owned(),
        Value::from_u64(c.iterations.into()),
    );
    map.insert("shards".to_owned(), Value::from_u64(c.shards.into()));
    map.insert("seed".to_owned(), Value::from_u64(c.seed));
    map.insert("declared_runs".to_owned(), Value::from_u64(c.declared_runs));
    map.insert(
        "declared_power_cycles".to_owned(),
        Value::from_u64(c.declared_power_cycles.into()),
    );
    map.insert("runs".to_owned(), Value::from_u64(c.runs));
    map.insert("goldens".to_owned(), Value::from_u64(c.goldens));
    map.insert(
        "power_cycles".to_owned(),
        Value::from_u64(c.power_cycles.into()),
    );
    map.insert(
        "modelled_time_s".to_owned(),
        Value::from_f64(c.modelled_time_s),
    );
    map.insert("energy_j".to_owned(), Value::from_f64(c.energy_j));
    map.insert("runtime_s".to_owned(), Value::from_f64(c.runtime_s));
    map.insert(
        "outcomes".to_owned(),
        Value::Object(
            c.outcomes
                .iter()
                .map(|(effects, count)| (effects.clone(), Value::from_u64(*count)))
                .collect(),
        ),
    );
    map.insert("abnormal_runs".to_owned(), Value::from_u64(c.abnormal_runs));
    map.insert("severity_sum".to_owned(), Value::from_f64(c.severity_sum));
    map.insert("severity_max".to_owned(), Value::from_f64(c.severity_max));
    map.insert("cache_lookups".to_owned(), Value::from_u64(c.cache_lookups));
    map.insert("cache_hits".to_owned(), Value::from_u64(c.cache_hits));
    map.insert(
        "search".to_owned(),
        c.search.map_or(Value::Null, |search| {
            let mut s = BTreeMap::new();
            s.insert(
                "probed_steps".to_owned(),
                Value::from_u64(search.probed_steps),
            );
            s.insert("grid_steps".to_owned(), Value::from_u64(search.grid_steps));
            s.insert("cache_hits".to_owned(), Value::from_u64(search.cache_hits));
            s.insert("savings".to_owned(), Value::from_f64(search.savings()));
            Value::Object(s)
        }),
    );
    map.insert(
        "storms".to_owned(),
        Value::Array(
            c.storms
                .iter()
                .map(|storm| {
                    let mut s = BTreeMap::new();
                    s.insert("sweep".to_owned(), Value::from_str_val(&storm.sweep));
                    s.insert(
                        "power_cycles".to_owned(),
                        Value::from_u64(storm.power_cycles.into()),
                    );
                    Value::Object(s)
                })
                .collect(),
        ),
    );
    map.insert(
        "decisions".to_owned(),
        Value::Array(c.decisions.iter().map(decision_value).collect()),
    );
    map.insert(
        "sweeps".to_owned(),
        Value::Array(c.sweeps.iter().map(sweep_value).collect()),
    );
    Value::Object(map)
}

fn sweep_value(s: &SweepSummary) -> Value {
    let mut map = BTreeMap::new();
    map.insert("program".to_owned(), Value::from_str_val(&s.program));
    map.insert("dataset".to_owned(), Value::from_str_val(&s.dataset));
    map.insert("core".to_owned(), Value::from_u64(s.core.into()));
    map.insert("shard".to_owned(), Value::from_u64(s.shard.into()));
    map.insert(
        "declared_runs".to_owned(),
        Value::from_u64(s.declared_runs.into()),
    );
    map.insert("runs".to_owned(), Value::from_u64(s.runs));
    map.insert("abnormal_runs".to_owned(), Value::from_u64(s.abnormal_runs));
    map.insert("goldens".to_owned(), Value::from_u64(s.goldens));
    map.insert(
        "machine_probes".to_owned(),
        Value::from_u64(s.machine_probes),
    );
    map.insert(
        "power_cycles".to_owned(),
        Value::from_u64(s.power_cycles.into()),
    );
    map.insert("cache_lookups".to_owned(), Value::from_u64(s.cache_lookups));
    map.insert("cache_hits".to_owned(), Value::from_u64(s.cache_hits));
    map.insert(
        "outcomes".to_owned(),
        Value::Object(
            s.outcomes
                .iter()
                .map(|(effects, count)| (effects.clone(), Value::from_u64(*count)))
                .collect(),
        ),
    );
    map.insert("severity_sum".to_owned(), Value::from_f64(s.severity_sum));
    map.insert("severity_max".to_owned(), Value::from_f64(s.severity_max));
    map.insert("runtime_s".to_owned(), Value::from_f64(s.runtime_s));
    map.insert("energy_j".to_owned(), Value::from_f64(s.energy_j));
    map.insert(
        "lowest_mv".to_owned(),
        s.lowest_mv
            .map_or(Value::Null, |mv| Value::from_u64(mv.into())),
    );
    map.insert(
        "early_stop_mv".to_owned(),
        s.early_stop_mv
            .map_or(Value::Null, |mv| Value::from_u64(mv.into())),
    );
    map.insert(
        "search".to_owned(),
        s.search.map_or(Value::Null, |search| {
            let mut m = BTreeMap::new();
            m.insert(
                "probed_steps".to_owned(),
                Value::from_u64(search.probed_steps),
            );
            m.insert("grid_steps".to_owned(), Value::from_u64(search.grid_steps));
            m.insert("cache_hits".to_owned(), Value::from_u64(search.cache_hits));
            m.insert("savings".to_owned(), Value::from_f64(search.savings()));
            Value::Object(m)
        }),
    );
    map.insert("recovery_storm".to_owned(), Value::Bool(s.recovery_storm()));
    Value::Object(map)
}

fn decision_value(d: &DecisionSummary) -> Value {
    let mut map = BTreeMap::new();
    map.insert(
        "voltage_mv".to_owned(),
        Value::from_u64(d.voltage_mv.into()),
    );
    map.insert(
        "guardband_steps".to_owned(),
        Value::from_u64(d.guardband_steps.into()),
    );
    map.insert(
        "relative_power".to_owned(),
        Value::from_f64(d.relative_power),
    );
    map.insert(
        "relative_performance".to_owned(),
        Value::from_f64(d.relative_performance),
    );
    map.insert(
        "energy_savings".to_owned(),
        Value::from_f64(d.energy_savings),
    );
    Value::Object(map)
}

/// Renders a summary as CSV: one row per sweep, with the enclosing
/// campaign's identity repeated in the leading columns. Governor
/// decisions and standalone records carry no sweep identity and are
/// deliberately omitted — use the JSON renderer for the full picture.
#[must_use]
pub fn csv(summary: &StreamSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "chip,rail,seed,program,dataset,core,shard,runs,abnormal_runs,goldens,machine_probes,\
         power_cycles,cache_lookups,cache_hits,severity_sum,severity_max,runtime_s,energy_j,\
         lowest_mv,early_stop_mv,probed_steps,grid_steps,recovery_storm"
    );
    for c in &summary.campaigns {
        for s in &c.sweeps {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                csv_field(&c.chip),
                csv_field(&c.rail),
                c.seed,
                csv_field(&s.program),
                csv_field(&s.dataset),
                s.core,
                s.shard,
                s.runs,
                s.abnormal_runs,
                s.goldens,
                s.machine_probes,
                s.power_cycles,
                s.cache_lookups,
                s.cache_hits,
                json::fmt_f64(s.severity_sum),
                json::fmt_f64(s.severity_max),
                json::fmt_f64(s.runtime_s),
                json::fmt_f64(s.energy_j),
                s.lowest_mv.map_or(String::new(), |mv| mv.to_string()),
                s.early_stop_mv.map_or(String::new(), |mv| mv.to_string()),
                s.search
                    .map_or(String::new(), |t| t.probed_steps.to_string()),
                s.search.map_or(String::new(), |t| t.grid_steps.to_string()),
                s.recovery_storm()
            );
        }
    }
    out
}

/// Quotes a CSV field when it contains a delimiter, quote or newline.
fn csv_field(value: &str) -> String {
    if value.contains([',', '"', '\n']) {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize_records;
    use margins_trace::{StreamFinalizer, TraceEvent};

    fn sample() -> StreamSummary {
        let mut fin = StreamFinalizer::new();
        let records: Vec<_> = vec![
            TraceEvent::CampaignStarted {
                chip: "TTT#0".into(),
                rail: "pmd".into(),
                benchmarks: 1,
                cores: 1,
                steps: 2,
                iterations: 1,
                shards: 1,
                seed: 7,
            },
            TraceEvent::SweepStarted {
                program: "namd".into(),
                dataset: "ref".into(),
                core: 4,
                shard: 0,
            },
            TraceEvent::RunCompleted {
                program: "namd".into(),
                dataset: "ref".into(),
                core: 4,
                mv: 915,
                iteration: 0,
                effects: "NO".into(),
                severity: 0.0,
                runtime_s: 0.5,
                energy_j: 1.25,
                corrected_errors: 0,
                uncorrected_errors: 0,
            },
            TraceEvent::SweepFinished {
                program: "namd".into(),
                dataset: "ref".into(),
                core: 4,
                runs: 1,
            },
            TraceEvent::CampaignFinished {
                runs: 1,
                power_cycles: 0,
            },
        ]
        .into_iter()
        .map(|e| fin.seal(e))
        .collect();
        summarize_records(&records).expect("valid stream")
    }

    #[test]
    fn markdown_is_deterministic_and_complete() {
        let summary = sample();
        let a = markdown(&summary);
        let b = markdown(&summary);
        assert_eq!(a, b);
        assert!(a.contains("## Campaign TTT#0/pmd"), "{a}");
        assert!(a.contains("| namd:ref@core4 | 1 | 0 |"), "{a}");
        assert!(a.contains("- cache: no lookups"), "{a}");
        assert!(a.contains("- recovery storms: none"), "{a}");
    }

    #[test]
    fn json_report_parses_back_with_sorted_keys() {
        let summary = sample();
        let text = json(&summary);
        assert!(text.ends_with('\n'));
        let value = margins_trace::json::parse(text.trim_end()).expect("valid JSON");
        let root = value.as_object().expect("object");
        assert_eq!(root.get("records").and_then(Value::as_number), Some("5"));
        let campaigns = match root.get("campaigns") {
            Some(Value::Array(items)) => items,
            other => panic!("campaigns should be an array, got {other:?}"),
        };
        let c = campaigns[0].as_object().expect("campaign object");
        assert_eq!(c.get("chip").and_then(Value::as_str), Some("TTT#0"));
        assert_eq!(c.get("energy_j").and_then(Value::as_number), Some("1.25"));
    }

    #[test]
    fn csv_has_one_row_per_sweep_and_quotes_delimiters() {
        let text = csv(&sample());
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("chip,rail,seed,program"));
        assert!(
            lines[1].starts_with("TTT#0,pmd,7,namd,ref,4,0,1,0,"),
            "{}",
            lines[1]
        );
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("plain"), "plain");
    }
}
