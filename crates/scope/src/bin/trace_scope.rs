//! `trace-scope`: analytics, metrics exposition and regression diffing
//! over `margins-trace` JSONL streams.
//!
//! ```text
//! trace-scope summary <file.jsonl | dir>... [--format md|json|csv] [--out FILE]
//! trace-scope diff <A.jsonl> <B.jsonl> [--out FILE]
//! trace-scope metrics <file.jsonl | dir>... [--out FILE]
//! trace-scope profile <file.jsonl | dir>... [--format md|json] [--out FILE]
//! trace-scope profile diff <A.jsonl> <B.jsonl> [--out FILE]
//! trace-scope merge <file.jsonl | dir>... [--out FILE]
//! trace-scope fleet <file.jsonl | dir>... [--population] [--format md|json|csv] [--out FILE]
//! ```
//!
//! * `summary` folds every stream into one report (markdown by default).
//! * `diff` classifies how two streams of the same intended experiment
//!   diverge and exits with the class code: 0 identical, 4 schedule-only,
//!   5 metrics drift, 6 outcome divergence (1 = read error, 2 = usage).
//! * `metrics` replays the streams through the [`MetricsRegistry`] and
//!   prints the OpenMetrics text exposition.
//! * `profile` folds the profiling plane into a hotspot report; `profile
//!   diff` compares the work accounting of two streams and exits 0
//!   identical, 4 work drift, 5 phase divergence.
//! * `merge` concatenates streams in file order and re-seals them through
//!   one `StreamFinalizer`, producing a single valid stream — the serial
//!   baseline that fleet-daemon output is diffed against.
//! * `fleet` folds a merged multi-campaign stream into per-chip rollups;
//!   with `--population` it folds the same stream into per-corner
//!   binding-Vmin and guardband-margin distributions instead.
//!
//! All outputs are byte-deterministic functions of the input records.

use margins_scope::{
    diff, fleet_report, markdown, population_report, profile, summarize_records, DiffReport,
};
use margins_trace::{
    collect_jsonl, merge_streams, read_jsonl, reconstruct, MetricsRegistry, Sink, TraceRecord,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: trace-scope <command> [args]

commands:
  summary <file.jsonl | dir>... [--format md|json|csv] [--out FILE]
      fold the streams into one deterministic report
  diff <A.jsonl> <B.jsonl> [--out FILE]
      classify how two streams diverge; exit 0 identical, 4 schedule-only,
      5 metrics drift, 6 outcome divergence
  metrics <file.jsonl | dir>... [--out FILE]
      replay the streams through the metrics registry and print the
      OpenMetrics text exposition
  profile <file.jsonl | dir>... [--format md|json] [--out FILE]
      fold the profiling plane into a hotspot report (phases and kernels
      by work share, per-sweep probe cost, step-work attribution)
  profile diff <A.jsonl> <B.jsonl> [--out FILE]
      compare the work accounting of two streams; exit 0 identical,
      4 work drift, 5 phase divergence
  merge <file.jsonl | dir>... [--out FILE]
      concatenate the streams in file order and re-seal sequence numbers
      and the modelled clock into one valid stream
  fleet <file.jsonl | dir>... [--population] [--format md|json|csv] [--out FILE]
      fold a merged multi-campaign stream into per-chip rollups; with
      --population, into per-corner Vmin/margin distributions (json only
      with --population)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match command.as_str() {
        "summary" => cmd_summary(rest),
        "diff" => cmd_diff(rest),
        "metrics" => cmd_metrics(rest),
        "profile" => match rest.split_first() {
            Some((sub, tail)) if sub == "diff" => cmd_profile_diff(tail),
            _ => cmd_profile(rest),
        },
        "merge" => cmd_merge(rest),
        "fleet" => cmd_fleet(rest),
        other => {
            eprintln!("trace-scope: unknown command '{other}'\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Positional arguments plus the `--format`/`--out` options.
struct Options {
    paths: Vec<String>,
    format: String,
    out: Option<PathBuf>,
    population: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        paths: Vec::new(),
        format: "md".to_owned(),
        out: None,
        population: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--population" => opts.population = true,
            "--format" => {
                let value = it.next().ok_or("--format requires a value")?;
                if !matches!(value.as_str(), "md" | "json" | "csv") {
                    return Err(format!(
                        "unknown format '{value}' (expected md, json or csv)"
                    ));
                }
                opts.format = value.clone();
            }
            "--out" => {
                let value = it.next().ok_or("--out requires a value")?;
                opts.out = Some(PathBuf::from(value));
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            path => opts.paths.push(path.to_owned()),
        }
    }
    Ok(opts)
}

/// Reads every record from the expanded path list, in file order.
fn read_streams(paths: &[String]) -> Result<Vec<TraceRecord>, String> {
    let files = collect_jsonl(paths).map_err(|e| e.to_string())?;
    if files.is_empty() {
        return Err("no .jsonl files found under the given paths".to_owned());
    }
    let mut records = Vec::new();
    for path in &files {
        records.extend(read_one(path)?);
    }
    Ok(records)
}

fn read_one(path: &Path) -> Result<Vec<TraceRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    read_jsonl(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Writes the report to `--out` or stdout.
fn deliver(report: &str, out: Option<&Path>) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(path, report).map_err(|e| format!("{}: {e}", path.display())),
        None => {
            print!("{report}");
            Ok(())
        }
    }
}

fn cmd_summary(args: &[String]) -> ExitCode {
    let opts = match parse_options(args) {
        Ok(o) if !o.paths.is_empty() => o,
        Ok(_) => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("trace-scope: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let records = match read_streams(&opts.paths) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace-scope: {e}");
            return ExitCode::FAILURE;
        }
    };
    let summary = match summarize_records(&records) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace-scope: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match opts.format.as_str() {
        "json" => margins_scope::json(&summary),
        "csv" => margins_scope::csv(&summary),
        _ => markdown(&summary),
    };
    match deliver(&report, opts.out.as_deref()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace-scope: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let opts = match parse_options(args) {
        Ok(o) if o.paths.len() == 2 => o,
        Ok(_) => {
            eprintln!("trace-scope: diff takes exactly two paths\n{USAGE}");
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("trace-scope: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (a, b) = match (
        read_one(Path::new(&opts.paths[0])),
        read_one(Path::new(&opts.paths[1])),
    ) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("trace-scope: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report: DiffReport = diff(&a, &b);
    let rendered = report.render();
    if let Err(e) = deliver(&rendered, opts.out.as_deref()) {
        eprintln!("trace-scope: {e}");
        return ExitCode::FAILURE;
    }
    // Exit codes 0/4/5/6 fit in a u8 on every supported platform.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    ExitCode::from(report.class.exit_code() as u8)
}

fn cmd_profile(args: &[String]) -> ExitCode {
    let opts = match parse_options(args) {
        Ok(o) if !o.paths.is_empty() && o.format != "csv" => o,
        Ok(o) if o.format == "csv" => {
            eprintln!("trace-scope: profile reports render as md or json\n{USAGE}");
            return ExitCode::from(2);
        }
        Ok(_) => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("trace-scope: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let report = match profile_of_paths(&opts.paths) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace-scope: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rendered = match opts.format.as_str() {
        "json" => profile::json(&report),
        _ => profile::markdown(&report),
    };
    match deliver(&rendered, opts.out.as_deref()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace-scope: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_profile_diff(args: &[String]) -> ExitCode {
    let opts = match parse_options(args) {
        Ok(o) if o.paths.len() == 2 => o,
        Ok(_) => {
            eprintln!("trace-scope: profile diff takes exactly two paths\n{USAGE}");
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("trace-scope: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (a, b) = match (
        profile_of_paths(&opts.paths[..1]),
        profile_of_paths(&opts.paths[1..]),
    ) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("trace-scope: {e}");
            return ExitCode::FAILURE;
        }
    };
    let divergence = profile::diff(&a, &b);
    let rendered = format!("profile diff: {}\n", divergence.describe());
    if let Err(e) = deliver(&rendered, opts.out.as_deref()) {
        eprintln!("trace-scope: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::from(divergence.exit_code())
}

/// Reads, reconstructs and folds the profiling plane of the given paths.
fn profile_of_paths(paths: &[String]) -> Result<profile::ProfileReport, String> {
    let records = read_streams(paths)?;
    let tree = reconstruct(&records).map_err(|e| e.to_string())?;
    Ok(profile::report(&tree))
}

fn cmd_merge(args: &[String]) -> ExitCode {
    let opts = match parse_options(args) {
        Ok(o) if !o.paths.is_empty() => o,
        Ok(_) => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("trace-scope: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let files = match collect_jsonl(&opts.paths) {
        Ok(f) if !f.is_empty() => f,
        Ok(_) => {
            eprintln!("trace-scope: no .jsonl files found under the given paths");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("trace-scope: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut streams = Vec::new();
    for path in &files {
        match read_one(path) {
            Ok(records) => streams.push(records),
            Err(e) => {
                eprintln!("trace-scope: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let merged = merge_streams(streams.iter().map(Vec::as_slice));
    let mut out = String::new();
    for record in &merged {
        match record.to_json_line() {
            Ok(line) => {
                out.push_str(&line);
                out.push('\n');
            }
            Err(e) => {
                eprintln!("trace-scope: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match deliver(&out, opts.out.as_deref()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace-scope: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_fleet(args: &[String]) -> ExitCode {
    let opts = match parse_options(args) {
        Ok(o) if !o.paths.is_empty() && (o.population || o.format != "json") => o,
        Ok(o) if o.format == "json" => {
            eprintln!("trace-scope: fleet rollups render as md or csv\n{USAGE}");
            return ExitCode::from(2);
        }
        Ok(_) => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("trace-scope: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let records = match read_streams(&opts.paths) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace-scope: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rendered = if opts.population {
        let report = match population_report(&records) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("trace-scope: {e}");
                return ExitCode::FAILURE;
            }
        };
        match opts.format.as_str() {
            "json" => report.json(),
            "csv" => report.csv(),
            _ => report.markdown(),
        }
    } else {
        let report = match fleet_report(&records) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("trace-scope: {e}");
                return ExitCode::FAILURE;
            }
        };
        match opts.format.as_str() {
            "csv" => report.csv(),
            _ => report.markdown(),
        }
    };
    match deliver(&rendered, opts.out.as_deref()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace-scope: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_metrics(args: &[String]) -> ExitCode {
    let opts = match parse_options(args) {
        Ok(o) if !o.paths.is_empty() => o,
        Ok(_) => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("trace-scope: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let records = match read_streams(&opts.paths) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace-scope: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut registry = MetricsRegistry::default();
    for record in &records {
        registry.emit(record);
    }
    registry.finish();
    match deliver(&registry.to_openmetrics(), opts.out.as_deref()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace-scope: {e}");
            ExitCode::FAILURE
        }
    }
}
