//! Fleet rollups: one row per chip over a merged multi-campaign stream.
//!
//! A fleet daemon run (`voltmargin serve`) merges many per-chip campaign
//! streams into one canonical JSONL file. [`fleet_report`] folds such a
//! stream into a [`FleetReport`]: one [`ChipRollup`] per campaign, in
//! stream order (which for daemon output is the canonical chip order),
//! plus fleet-wide totals. Like every other report in this crate the
//! rollup is a pure function of the record sequence — two reports over
//! the same merged stream are byte-identical.

use crate::summary::{summarize_records, StreamSummary};
use margins_trace::json;
use margins_trace::{SpanError, TraceRecord};
use std::fmt::Write as _;

/// Per-chip totals folded out of one campaign of a merged fleet stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipRollup {
    /// Chip identity, e.g. `TTT#17`.
    pub chip: String,
    /// Completed benchmark runs.
    pub runs: u64,
    /// Watchdog power cycles.
    pub power_cycles: u64,
    /// Voltage steps actually probed on the (simulated) machine.
    pub machine_probes: u64,
    /// Campaign-cache lookups.
    pub cache_lookups: u64,
    /// Campaign-cache hits.
    pub cache_hits: u64,
    /// Modelled energy spent, joules.
    pub energy_j: f64,
    /// Modelled runtime, seconds.
    pub runtime_s: f64,
}

/// A fleet-wide characterization rollup: per-chip rows plus totals.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// One row per campaign, in stream (canonical chip) order.
    pub chips: Vec<ChipRollup>,
}

impl FleetReport {
    /// Fleet-wide totals across every chip row.
    #[must_use]
    pub fn totals(&self) -> ChipRollup {
        let mut total = ChipRollup {
            chip: "fleet".to_owned(),
            runs: 0,
            power_cycles: 0,
            machine_probes: 0,
            cache_lookups: 0,
            cache_hits: 0,
            energy_j: 0.0,
            runtime_s: 0.0,
        };
        for row in &self.chips {
            total.runs += row.runs;
            total.power_cycles += row.power_cycles;
            total.machine_probes += row.machine_probes;
            total.cache_lookups += row.cache_lookups;
            total.cache_hits += row.cache_hits;
            total.energy_j += row.energy_j;
            total.runtime_s += row.runtime_s;
        }
        total
    }

    /// Renders the rollup as a markdown table.
    #[must_use]
    pub fn markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# trace-scope fleet rollup");
        let _ = writeln!(out);
        let _ = writeln!(out, "{} chip(s) characterized.", self.chips.len());
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "| chip | runs | power cycles | machine probes | cache hits | energy (J) | runtime (s) |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|");
        let totals = self.totals();
        for row in self.chips.iter().chain(std::iter::once(&totals)) {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {}/{} | {} | {} |",
                row.chip,
                row.runs,
                row.power_cycles,
                row.machine_probes,
                row.cache_hits,
                row.cache_lookups,
                json::fmt_f64(row.energy_j),
                json::fmt_f64(row.runtime_s)
            );
        }
        out
    }

    /// Renders the rollup as CSV (header, chip rows, totals row).
    #[must_use]
    pub fn csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "chip,runs,power_cycles,machine_probes,cache_lookups,cache_hits,energy_j,runtime_s"
        );
        let totals = self.totals();
        for row in self.chips.iter().chain(std::iter::once(&totals)) {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{}",
                row.chip,
                row.runs,
                row.power_cycles,
                row.machine_probes,
                row.cache_lookups,
                row.cache_hits,
                json::fmt_f64(row.energy_j),
                json::fmt_f64(row.runtime_s)
            );
        }
        out
    }
}

/// Folds a merged fleet stream into per-chip rollups.
///
/// # Errors
///
/// Propagates [`SpanError`] when the record sequence is not a valid
/// stream (unbalanced spans, broken seq/clock invariants).
pub fn fleet_report(records: &[TraceRecord]) -> Result<FleetReport, SpanError> {
    Ok(rollup(&summarize_records(records)?))
}

/// Folds an already-computed stream summary into per-chip rollups.
#[must_use]
pub fn rollup(summary: &StreamSummary) -> FleetReport {
    let chips = summary
        .campaigns
        .iter()
        .map(|c| ChipRollup {
            chip: c.chip.clone(),
            runs: c.runs,
            power_cycles: u64::from(c.power_cycles),
            machine_probes: c.sweeps.iter().map(|s| s.machine_probes).sum(),
            cache_lookups: c.cache_lookups,
            cache_hits: c.cache_hits,
            energy_j: c.energy_j,
            runtime_s: c.runtime_s,
        })
        .collect();
    FleetReport { chips }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(chip: &str, runs: u64) -> ChipRollup {
        ChipRollup {
            chip: chip.to_owned(),
            runs,
            power_cycles: 1,
            machine_probes: 2 * runs,
            cache_lookups: runs,
            cache_hits: runs / 2,
            energy_j: 1.5,
            runtime_s: 0.25,
        }
    }

    #[test]
    fn totals_sum_every_column() {
        let report = FleetReport {
            chips: vec![row("TTT#0", 4), row("TTT#1", 6)],
        };
        let totals = report.totals();
        assert_eq!(totals.chip, "fleet");
        assert_eq!(totals.runs, 10);
        assert_eq!(totals.power_cycles, 2);
        assert_eq!(totals.machine_probes, 20);
        assert_eq!(totals.cache_lookups, 10);
        assert_eq!(totals.cache_hits, 5);
        assert!((totals.energy_j - 3.0).abs() < 1e-12);
        assert!((totals.runtime_s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn renders_are_deterministic_and_list_every_chip() {
        let report = FleetReport {
            chips: vec![row("TTT#0", 4), row("TTT#1", 6)],
        };
        let md = report.markdown();
        assert_eq!(md, report.markdown());
        assert!(md.contains("| TTT#0 |"), "{md}");
        assert!(md.contains("| TTT#1 |"), "{md}");
        assert!(md.contains("| fleet |"), "{md}");
        let csv = report.csv();
        assert_eq!(csv.lines().count(), 4, "{csv}");
        assert!(csv.starts_with("chip,runs,"), "{csv}");
        assert!(csv.ends_with("fleet,10,2,20,10,5,3.0,0.5\n"), "{csv}");
    }

    #[test]
    fn empty_stream_rolls_up_to_no_chips() {
        let report = fleet_report(&[]).expect("empty stream is valid");
        assert!(report.chips.is_empty());
        assert_eq!(report.totals().runs, 0);
    }
}
