//! Campaign analytics over `margins-trace` streams.
//!
//! The telemetry stack records *what happened*; this crate answers *what it
//! means*. It consumes the byte-deterministic JSONL streams the framework
//! emits and produces three artifacts, all themselves byte-deterministic:
//!
//! * [`summary`] — the span tree folded into a typed [`StreamSummary`]:
//!   per-sweep probe counts, outcome and severity tallies, recovery-storm
//!   detection, campaign-cache hit rates, energy totals and
//!   search-strategy savings.
//! * [`render`] — the summary rendered as markdown, JSON or CSV. Reports
//!   depend only on the record sequence, never on scheduling, paths or
//!   wall-clock state, so two renders of the same stream are identical
//!   byte for byte.
//! * [`diff`] — a semantic differ for two streams of the *same intended
//!   experiment*: it classifies the divergence (identical / schedule-only
//!   reordering / metrics drift / outcome divergence) and pinpoints the
//!   first diverging record with its enclosing span path, with a distinct
//!   exit code per class for CI gating.
//! * [`profile`] — the campaign profiling plane folded into hotspot
//!   reports (top phases and kernels by work share, per-sweep probe cost,
//!   step-work attribution) plus a work-accounting differ with its own
//!   CI exit codes.
//! * [`fleet`] — per-chip rollups over a merged multi-campaign stream,
//!   the shape `voltmargin serve` produces for each client.
//! * [`population`] — the same streams folded the other way: per-corner
//!   binding-Vmin and guardband-margin distributions, severity mix and
//!   per-sweep sub-populations across the chip fleet.
//!
//! The `trace-scope` binary exposes all of these over the command line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod fleet;
pub mod population;
pub mod profile;
pub mod render;
pub mod summary;

pub use diff::{diff, DiffReport, Divergence, DivergenceClass};
pub use fleet::{fleet_report, ChipRollup, FleetReport};
pub use population::{
    population_report, Bucket, CornerPopulation, Distribution, PopulationReport, SweepPopulation,
    BUCKET_WIDTH_MV,
};
pub use profile::{PhaseWork, ProfileDivergence, ProfileReport, SweepProfile};
pub use render::{csv, json, markdown};
pub use summary::{
    summarize, summarize_records, summarize_str, CampaignSummary, DecisionSummary, RecoveryStorm,
    ScopeError, SearchTotals, StreamSummary, SweepSummary, RECOVERY_STORM_THRESHOLD,
};
