//! Population analytics: Vmin and guardband-margin distributions over a
//! chip fleet.
//!
//! A merged fleet stream holds one campaign per chip. The per-chip view
//! ([`crate::fleet`]) answers "how did each chip do"; this module answers
//! the population questions the paper's Fig. 3/4 ask of real silicon:
//! how are binding Vmins distributed across a corner, how much guardband
//! the worst chip leaves on the table, and what the severity mix of the
//! abnormal tail looks like.
//!
//! Semantics match the fleet daemon's streamed `chip-finished` events
//! exactly: a sweep's Vmin is the lowest step of the unbroken all-normal
//! prefix walking down from the highest probed step; a chip's binding
//! Vmin is the *maximum* over its sweeps (the sweep that gives up first
//! binds the chip); a chip is *censored* when any sweep misbehaves at
//! its highest probed step. Margins are measured against the corner's
//! nominal (highest probed) voltage.
//!
//! Like every other report in this crate, the fold is a pure function of
//! the record sequence: reruns, thread counts and subscriber presence
//! never change a byte of the output.

use crate::summary::ScopeError;
use margins_trace::json::{self, Value};
use margins_trace::{reconstruct, CampaignSpan, TraceEvent, TraceRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Histogram bucket width for Vmin/margin distributions, millivolts.
/// Matches the 5 mV sweep granularity of the reference campaigns, so one
/// bucket is one probed step.
pub const BUCKET_WIDTH_MV: u32 = 5;

/// One fixed-width histogram bucket covering `[lo_mv, lo_mv + width)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bucket {
    /// Inclusive lower bound, millivolts.
    pub lo_mv: u32,
    /// Samples in the bucket.
    pub count: u64,
}

/// Order statistics plus a fixed-width histogram over millivolt samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Distribution {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample.
    pub min_mv: u32,
    /// Median (nearest-rank).
    pub p50_mv: u32,
    /// 95th percentile (nearest-rank).
    pub p95_mv: u32,
    /// Largest sample.
    pub max_mv: u32,
    /// Contiguous [`BUCKET_WIDTH_MV`]-wide buckets from `min` to `max`,
    /// empty buckets included.
    pub buckets: Vec<Bucket>,
}

impl Distribution {
    /// Builds the distribution of a non-empty sample set; `None` for an
    /// empty one.
    #[must_use]
    pub fn of(samples: &[u32]) -> Option<Distribution> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        // Nearest-rank percentile: the smallest sample with at least
        // p% of the population at or below it.
        let rank = |pct: usize| sorted[(n * pct).div_ceil(100).max(1) - 1];
        let (min_mv, max_mv) = (sorted[0], sorted[n - 1]);
        let lo = min_mv / BUCKET_WIDTH_MV * BUCKET_WIDTH_MV;
        let hi = max_mv / BUCKET_WIDTH_MV * BUCKET_WIDTH_MV;
        let mut buckets: Vec<Bucket> = (lo..=hi)
            .step_by(BUCKET_WIDTH_MV as usize)
            .map(|lo_mv| Bucket { lo_mv, count: 0 })
            .collect();
        for &mv in &sorted {
            let at = ((mv - lo) / BUCKET_WIDTH_MV) as usize;
            buckets[at].count += 1;
        }
        Some(Distribution {
            count: n as u64,
            min_mv,
            p50_mv: rank(50),
            p95_mv: rank(95),
            max_mv,
            buckets,
        })
    }
}

/// Vmin population of one (benchmark, dataset, core) sweep across every
/// chip of a corner.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPopulation {
    /// Sweep label, e.g. `namd:ref@core0`.
    pub label: String,
    /// Chips whose sweep misbehaved at its highest probed step.
    pub censored: u64,
    /// Vmin distribution over the uncensored chips.
    pub vmin: Option<Distribution>,
}

/// Everything the population knows about one process corner.
#[derive(Debug, Clone, PartialEq)]
pub struct CornerPopulation {
    /// Corner label — the chip-id prefix before `#`, e.g. `TTT`.
    pub corner: String,
    /// Chips characterized in this corner.
    pub chips: u64,
    /// Chips with no binding Vmin (some sweep misbehaved at nominal).
    pub censored: u64,
    /// Nominal voltage: the highest step any run in the corner probed.
    pub nominal_mv: u32,
    /// Binding-Vmin distribution over the uncensored chips.
    pub vmin: Option<Distribution>,
    /// Guardband-margin (`nominal − Vmin`) distribution over the same
    /// chips.
    pub margin: Option<Distribution>,
    /// Classified runs across the corner's chips.
    pub runs: u64,
    /// Runs per observed effect combination (`NO`, `SDC+CE`, …).
    pub outcomes: BTreeMap<String, u64>,
    /// Sum of per-run severities across the corner.
    pub severity_sum: f64,
    /// Largest per-run severity observed in the corner.
    pub severity_max: f64,
    /// Per-sweep sub-populations, in sweep-label order.
    pub sweeps: Vec<SweepPopulation>,
}

/// The full population report: one entry per corner, in corner order.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationReport {
    /// Per-corner populations.
    pub corners: Vec<CornerPopulation>,
}

/// One chip folded down to what the population cares about.
struct ChipFold {
    corner: String,
    nominal_mv: u32,
    /// Per sweep label: probed step → all runs normal.
    sweeps: BTreeMap<String, BTreeMap<u32, bool>>,
    runs: u64,
    outcomes: BTreeMap<String, u64>,
    severity_sum: f64,
    severity_max: f64,
}

fn fold_chip(campaign: &CampaignSpan) -> ChipFold {
    let corner = campaign
        .chip
        .split_once('#')
        .map_or(campaign.chip.as_str(), |(prefix, _)| prefix)
        .to_owned();
    let mut fold = ChipFold {
        corner,
        nominal_mv: 0,
        sweeps: BTreeMap::new(),
        runs: 0,
        outcomes: BTreeMap::new(),
        severity_sum: 0.0,
        severity_max: 0.0,
    };
    for sweep in &campaign.sweeps {
        let steps = fold.sweeps.entry(sweep.label()).or_default();
        for leaf in &sweep.leaves {
            if let TraceEvent::RunCompleted {
                mv,
                effects,
                severity,
                ..
            } = &leaf.event
            {
                fold.nominal_mv = fold.nominal_mv.max(*mv);
                let all_normal = steps.entry(*mv).or_insert(true);
                *all_normal &= effects == "NO";
                fold.runs += 1;
                *fold.outcomes.entry(effects.clone()).or_insert(0) += 1;
                fold.severity_sum += severity;
                fold.severity_max = fold.severity_max.max(*severity);
            }
        }
    }
    fold
}

/// A sweep's Vmin: the lowest step of the unbroken all-normal prefix
/// walking down from the highest probed step; `None` (censored) when the
/// highest step already misbehaved.
fn sweep_vmin(steps: &BTreeMap<u32, bool>) -> Option<u32> {
    let mut vmin = None;
    for (&mv, &all_normal) in steps.iter().rev() {
        if !all_normal {
            break;
        }
        vmin = Some(mv);
    }
    vmin
}

/// Folds a merged fleet stream into per-corner population analytics.
///
/// # Errors
///
/// [`ScopeError`] when the record sequence is not a valid stream
/// (unbalanced spans, broken seq/clock invariants).
pub fn population_report(records: &[TraceRecord]) -> Result<PopulationReport, ScopeError> {
    let tree = reconstruct(records).map_err(ScopeError::Span)?;
    let chips: Vec<ChipFold> = tree.campaigns.iter().map(fold_chip).collect();

    let mut corners: BTreeMap<String, Vec<&ChipFold>> = BTreeMap::new();
    for chip in &chips {
        corners.entry(chip.corner.clone()).or_default().push(chip);
    }

    let corners = corners
        .into_iter()
        .map(|(corner, chips)| {
            let nominal_mv = chips.iter().map(|c| c.nominal_mv).max().unwrap_or(0);
            let mut vmins = Vec::new();
            let mut margins = Vec::new();
            let mut censored = 0u64;
            let mut runs = 0u64;
            let mut outcomes: BTreeMap<String, u64> = BTreeMap::new();
            let mut severity_sum = 0.0f64;
            let mut severity_max = 0.0f64;
            let mut sweep_vmins: BTreeMap<String, (Vec<u32>, u64)> = BTreeMap::new();
            for chip in &chips {
                let mut binding: Option<u32> = Some(0);
                for (label, steps) in &chip.sweeps {
                    let (population, sweep_censored) =
                        sweep_vmins.entry(label.clone()).or_default();
                    match sweep_vmin(steps) {
                        Some(mv) => {
                            population.push(mv);
                            binding = binding.map(|b| b.max(mv));
                        }
                        None => {
                            *sweep_censored += 1;
                            binding = None;
                        }
                    }
                }
                match binding {
                    Some(mv) if !chip.sweeps.is_empty() => {
                        vmins.push(mv);
                        margins.push(nominal_mv - mv);
                    }
                    _ => censored += 1,
                }
                runs += chip.runs;
                for (effects, count) in &chip.outcomes {
                    *outcomes.entry(effects.clone()).or_insert(0) += count;
                }
                severity_sum += chip.severity_sum;
                severity_max = severity_max.max(chip.severity_max);
            }
            CornerPopulation {
                corner,
                chips: chips.len() as u64,
                censored,
                nominal_mv,
                vmin: Distribution::of(&vmins),
                margin: Distribution::of(&margins),
                runs,
                outcomes,
                severity_sum,
                severity_max,
                sweeps: sweep_vmins
                    .into_iter()
                    .map(|(label, (population, sweep_censored))| SweepPopulation {
                        label,
                        censored: sweep_censored,
                        vmin: Distribution::of(&population),
                    })
                    .collect(),
            }
        })
        .collect();
    Ok(PopulationReport { corners })
}

impl PopulationReport {
    /// Renders the population as markdown.
    #[must_use]
    pub fn markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# trace-scope fleet population");
        let _ = writeln!(out);
        let _ = writeln!(out, "{} corner(s).", self.corners.len());
        for corner in &self.corners {
            markdown_corner(&mut out, corner);
        }
        out
    }

    /// Renders the population as JSON.
    #[must_use]
    pub fn json(&self) -> String {
        let mut root = BTreeMap::new();
        root.insert(
            "corners".to_owned(),
            Value::Array(self.corners.iter().map(corner_value).collect()),
        );
        let mut out = json::render(&Value::Object(root));
        out.push('\n');
        out
    }

    /// Renders the population as CSV: one `corner` row per corner
    /// followed by one `sweep` row per sweep sub-population.
    #[must_use]
    pub fn csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "scope,corner,label,chips,censored,nominal_mv,vmin_min,vmin_p50,vmin_p95,vmin_max,\
             margin_min,margin_p50,margin_p95,margin_max,runs,severity_sum,severity_max"
        );
        let stats = |d: &Option<Distribution>| -> String {
            d.as_ref().map_or_else(
                || ",,,".to_owned(),
                |d| format!("{},{},{},{}", d.min_mv, d.p50_mv, d.p95_mv, d.max_mv),
            )
        };
        for c in &self.corners {
            let _ = writeln!(
                out,
                "corner,{},,{},{},{},{},{},{},{},{}",
                c.corner,
                c.chips,
                c.censored,
                c.nominal_mv,
                stats(&c.vmin),
                stats(&c.margin),
                c.runs,
                json::fmt_f64(c.severity_sum),
                json::fmt_f64(c.severity_max)
            );
            for s in &c.sweeps {
                let _ = writeln!(
                    out,
                    "sweep,{},{},{},{},{},{},,,,,,,",
                    c.corner,
                    s.label,
                    s.vmin.as_ref().map_or(0, |d| d.count),
                    s.censored,
                    c.nominal_mv,
                    stats(&s.vmin)
                );
            }
        }
        out
    }
}

fn markdown_corner(out: &mut String, c: &CornerPopulation) {
    let _ = writeln!(out);
    let _ = writeln!(out, "## Corner {}", c.corner);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "- {} chip(s), {} censored, nominal {} mV, {} run(s)",
        c.chips, c.censored, c.nominal_mv, c.runs
    );
    let dist_row = |name: &str, d: &Distribution| {
        format!(
            "| {name} | {} | {} | {} | {} | {} |",
            d.count, d.min_mv, d.p50_mv, d.p95_mv, d.max_mv
        )
    };
    if let (Some(vmin), Some(margin)) = (&c.vmin, &c.margin) {
        let _ = writeln!(out);
        let _ = writeln!(out, "| distribution | chips | min | p50 | p95 | max |");
        let _ = writeln!(out, "|---|---|---|---|---|---|");
        let _ = writeln!(out, "{}", dist_row("binding Vmin (mV)", vmin));
        let _ = writeln!(out, "{}", dist_row("guardband margin (mV)", margin));
        let _ = writeln!(out);
        let _ = writeln!(out, "| Vmin bucket (mV) | chips |");
        let _ = writeln!(out, "|---|---|");
        for bucket in &vmin.buckets {
            let _ = writeln!(
                out,
                "| {}–{} | {} |",
                bucket.lo_mv,
                bucket.lo_mv + BUCKET_WIDTH_MV - 1,
                bucket.count
            );
        }
    }
    if !c.outcomes.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "| outcome | runs |");
        let _ = writeln!(out, "|---|---|");
        for (effects, count) in &c.outcomes {
            let _ = writeln!(out, "| {effects} | {count} |");
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "severity: sum {}, max {}",
            json::fmt_f64(c.severity_sum),
            json::fmt_f64(c.severity_max)
        );
    }
    if !c.sweeps.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "| sweep | chips | censored | min | p50 | p95 | max |");
        let _ = writeln!(out, "|---|---|---|---|---|---|---|");
        for s in &c.sweeps {
            match &s.vmin {
                Some(d) => {
                    let _ = writeln!(
                        out,
                        "| {} | {} | {} | {} | {} | {} | {} |",
                        s.label, d.count, s.censored, d.min_mv, d.p50_mv, d.p95_mv, d.max_mv
                    );
                }
                None => {
                    let _ = writeln!(out, "| {} | 0 | {} | – | – | – | – |", s.label, s.censored);
                }
            }
        }
    }
}

fn distribution_value(d: &Distribution) -> Value {
    let mut map = BTreeMap::new();
    map.insert("count".to_owned(), Value::from_u64(d.count));
    map.insert("min_mv".to_owned(), Value::from_u64(d.min_mv.into()));
    map.insert("p50_mv".to_owned(), Value::from_u64(d.p50_mv.into()));
    map.insert("p95_mv".to_owned(), Value::from_u64(d.p95_mv.into()));
    map.insert("max_mv".to_owned(), Value::from_u64(d.max_mv.into()));
    map.insert(
        "buckets".to_owned(),
        Value::Array(
            d.buckets
                .iter()
                .map(|b| {
                    let mut bucket = BTreeMap::new();
                    bucket.insert("lo_mv".to_owned(), Value::from_u64(b.lo_mv.into()));
                    bucket.insert("count".to_owned(), Value::from_u64(b.count));
                    Value::Object(bucket)
                })
                .collect(),
        ),
    );
    Value::Object(map)
}

fn corner_value(c: &CornerPopulation) -> Value {
    let mut map = BTreeMap::new();
    map.insert("corner".to_owned(), Value::from_str_val(&c.corner));
    map.insert("chips".to_owned(), Value::from_u64(c.chips));
    map.insert("censored".to_owned(), Value::from_u64(c.censored));
    map.insert(
        "nominal_mv".to_owned(),
        Value::from_u64(c.nominal_mv.into()),
    );
    if let Some(d) = &c.vmin {
        map.insert("vmin".to_owned(), distribution_value(d));
    }
    if let Some(d) = &c.margin {
        map.insert("margin".to_owned(), distribution_value(d));
    }
    map.insert("runs".to_owned(), Value::from_u64(c.runs));
    map.insert(
        "outcomes".to_owned(),
        Value::Object(
            c.outcomes
                .iter()
                .map(|(effects, count)| (effects.clone(), Value::from_u64(*count)))
                .collect(),
        ),
    );
    map.insert("severity_sum".to_owned(), Value::from_f64(c.severity_sum));
    map.insert("severity_max".to_owned(), Value::from_f64(c.severity_max));
    map.insert(
        "sweeps".to_owned(),
        Value::Array(
            c.sweeps
                .iter()
                .map(|s| {
                    let mut sweep = BTreeMap::new();
                    sweep.insert("label".to_owned(), Value::from_str_val(&s.label));
                    sweep.insert("censored".to_owned(), Value::from_u64(s.censored));
                    if let Some(d) = &s.vmin {
                        sweep.insert("vmin".to_owned(), distribution_value(d));
                    }
                    Value::Object(sweep)
                })
                .collect(),
        ),
    );
    Value::Object(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_set_has_no_distribution() {
        assert_eq!(Distribution::of(&[]), None);
    }

    #[test]
    fn distribution_orders_and_buckets_samples() {
        let d = Distribution::of(&[885, 875, 880, 885]).expect("non-empty");
        assert_eq!(
            (d.count, d.min_mv, d.p50_mv, d.p95_mv, d.max_mv),
            (4, 875, 880, 885, 885)
        );
        assert_eq!(
            d.buckets,
            vec![
                Bucket {
                    lo_mv: 875,
                    count: 1
                },
                Bucket {
                    lo_mv: 880,
                    count: 1
                },
                Bucket {
                    lo_mv: 885,
                    count: 2
                },
            ]
        );
    }

    #[test]
    fn single_sample_percentiles_collapse() {
        let d = Distribution::of(&[890]).expect("non-empty");
        assert_eq!(
            (d.count, d.min_mv, d.p50_mv, d.p95_mv, d.max_mv),
            (1, 890, 890, 890, 890)
        );
        assert_eq!(d.buckets.len(), 1);
    }

    #[test]
    fn sweep_vmin_walks_the_all_normal_prefix_down() {
        let steps: BTreeMap<u32, bool> =
            [(870, false), (875, false), (880, true), (885, true)].into();
        assert_eq!(sweep_vmin(&steps), Some(880));
        // Misbehaviour at the top censors the sweep even when lower
        // steps happened to pass.
        let censored: BTreeMap<u32, bool> = [(880, true), (885, false)].into();
        assert_eq!(sweep_vmin(&censored), None);
        // A hole in the prefix binds at the hole, not below it.
        let holed: BTreeMap<u32, bool> = [(875, true), (880, false), (885, true)].into();
        assert_eq!(sweep_vmin(&holed), Some(885));
    }

    #[test]
    fn empty_stream_reports_no_corners() {
        let report = population_report(&[]).expect("empty stream is valid");
        assert!(report.corners.is_empty());
        assert!(report.markdown().contains("0 corner(s)"));
        assert!(report.json().contains("\"corners\":[]"));
        assert_eq!(report.csv().lines().count(), 1);
    }
}
