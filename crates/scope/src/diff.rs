//! Semantic trace diffing: classify how two streams of the same intended
//! experiment diverge.
//!
//! The classifier works outward from strict equality:
//!
//! 1. byte-equal record sequences → [`DivergenceClass::Identical`];
//! 2. equal after stripping the envelope and every modelled metric
//!    (severity, runtimes, energies, governor projections) →
//!    [`DivergenceClass::MetricsDrift`] — same schedule and outcomes,
//!    different numbers;
//! 3. equal after canonicalizing the span trees (sweeps sorted into
//!    grid order, scheduling identity erased) →
//!    [`DivergenceClass::ScheduleOnly`] — same work and same results,
//!    merely reordered;
//! 4. anything else → [`DivergenceClass::OutcomeDivergence`], with the
//!    first diverging record and its enclosing span path pinpointed.
//!
//! Each class maps to a distinct process exit code so CI can gate on
//! exactly the regressions it cares about.

use margins_trace::span::{reconstruct, SpanTree};
use margins_trace::span_path_at;
use margins_trace::{TraceEvent, TraceRecord};

/// How two streams relate, ordered from benign to severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DivergenceClass {
    /// Byte-identical record sequences.
    Identical,
    /// Same runs and same metrics, only the interleaving differs.
    ScheduleOnly,
    /// Same schedule and outcomes, but a modelled metric moved.
    MetricsDrift,
    /// The streams describe different experimental outcomes.
    OutcomeDivergence,
}

impl DivergenceClass {
    /// The process exit code `trace-scope diff` reports for this class.
    /// (1 and 2 are reserved for read errors and usage errors.)
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        match self {
            DivergenceClass::Identical => 0,
            DivergenceClass::ScheduleOnly => 4,
            DivergenceClass::MetricsDrift => 5,
            DivergenceClass::OutcomeDivergence => 6,
        }
    }

    /// A stable lowercase name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            DivergenceClass::Identical => "identical",
            DivergenceClass::ScheduleOnly => "schedule-only",
            DivergenceClass::MetricsDrift => "metrics-drift",
            DivergenceClass::OutcomeDivergence => "outcome-divergence",
        }
    }
}

/// The first record where the two streams disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// 0-based record index of the disagreement.
    pub index: usize,
    /// The enclosing span path at that index, e.g.
    /// `campaign TTT#0/pmd / sweep namd:ref@core4 / RunCompleted`.
    pub span_path: String,
    /// The left stream's record at the index, JSON-rendered (`None` when
    /// the left stream ended first).
    pub left: Option<String>,
    /// The right stream's record at the index, JSON-rendered (`None`
    /// when the right stream ended first).
    pub right: Option<String>,
}

/// The outcome of diffing two streams.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// The divergence class.
    pub class: DivergenceClass,
    /// One-line human explanation.
    pub detail: String,
    /// The pinpointed first divergence, for the classes that have one.
    pub first_divergence: Option<Divergence>,
}

impl DiffReport {
    /// Renders the report as deterministic plain text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("trace-scope diff: {}\n{}\n", self.class.name(), self.detail);
        if let Some(d) = &self.first_divergence {
            out.push_str(&format!(
                "first divergence at record {} ({})\n  left:  {}\n  right: {}\n",
                d.index,
                d.span_path,
                d.left.as_deref().unwrap_or("<stream ended>"),
                d.right.as_deref().unwrap_or("<stream ended>"),
            ));
        }
        out
    }
}

/// Diffs two record streams of the same intended experiment.
#[must_use]
pub fn diff(a: &[TraceRecord], b: &[TraceRecord]) -> DiffReport {
    if a == b {
        return DiffReport {
            class: DivergenceClass::Identical,
            detail: format!("streams are byte-identical ({} records)", a.len()),
            first_divergence: None,
        };
    }

    let a_stripped: Vec<TraceRecord> = a.iter().map(strip_metrics).collect();
    let b_stripped: Vec<TraceRecord> = b.iter().map(strip_metrics).collect();
    if a_stripped == b_stripped {
        let index = first_difference(a, b);
        return DiffReport {
            class: DivergenceClass::MetricsDrift,
            detail: "schedules and outcomes agree; a modelled metric drifted".to_owned(),
            first_divergence: Some(divergence_at(a, b, index)),
        };
    }

    if let (Ok(ta), Ok(tb)) = (reconstruct(a), reconstruct(b)) {
        if canonicalize(&ta) == canonicalize(&tb) {
            let index = first_difference(a, b);
            return DiffReport {
                class: DivergenceClass::ScheduleOnly,
                detail: "identical work and results; only the interleaving differs".to_owned(),
                first_divergence: Some(divergence_at(a, b, index)),
            };
        }
    }

    let index = first_difference(a, b);
    DiffReport {
        class: DivergenceClass::OutcomeDivergence,
        detail: "the streams describe different experimental outcomes".to_owned(),
        first_divergence: Some(divergence_at(a, b, index)),
    }
}

/// Index of the first record where the sequences disagree (`min(len)`
/// when one is a prefix of the other).
fn first_difference(a: &[TraceRecord], b: &[TraceRecord]) -> usize {
    a.iter()
        .zip(b.iter())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.len().min(b.len()))
}

fn divergence_at(a: &[TraceRecord], b: &[TraceRecord], index: usize) -> Divergence {
    // Pin the span path on whichever stream still has records there; both
    // agree on the shared prefix, so either works when both do.
    let span_path = if index < a.len() {
        span_path_at(a, index)
    } else {
        span_path_at(b, index)
    };
    Divergence {
        index,
        span_path,
        left: a.get(index).map(render_record),
        right: b.get(index).map(render_record),
    }
}

fn render_record(record: &TraceRecord) -> String {
    record
        .to_json_line()
        .unwrap_or_else(|e| format!("<unencodable record: {e}>"))
}

/// Erases the envelope and every modelled metric, keeping schedule and
/// outcome identity.
fn strip_metrics(record: &TraceRecord) -> TraceRecord {
    let mut event = record.event.clone();
    match &mut event {
        TraceEvent::RunCompleted {
            severity,
            runtime_s,
            energy_j,
            ..
        } => {
            *severity = 0.0;
            *runtime_s = 0.0;
            *energy_j = 0.0;
        }
        TraceEvent::GoldenCaptured { runtime_s, .. } => *runtime_s = 0.0,
        TraceEvent::VoltageDecision {
            relative_power,
            relative_performance,
            energy_savings,
            ..
        } => {
            *relative_power = 0.0;
            *relative_performance = 0.0;
            *energy_savings = 0.0;
        }
        _ => {}
    }
    TraceRecord {
        seq: 0,
        t_model_s: 0.0,
        event,
    }
}

/// Erases the envelope and scheduling identity (shard indices), keeping
/// everything else.
fn strip_schedule(record: &TraceRecord) -> TraceRecord {
    let mut event = record.event.clone();
    match &mut event {
        TraceEvent::SweepStarted { shard, .. } => *shard = 0,
        TraceEvent::ShardScheduled { shard, .. } => *shard = 0,
        _ => {}
    }
    TraceRecord {
        seq: 0,
        t_model_s: 0.0,
        event,
    }
}

/// One campaign in scheduling-independent form: header, schedule as a
/// sorted multiset, sweeps in grid order, decisions, profile rollups and
/// close.
type CanonicalCampaign = (
    TraceRecord,
    Vec<TraceRecord>,
    Vec<(TraceRecord, Vec<TraceRecord>, TraceRecord)>,
    Vec<TraceRecord>,
    Vec<TraceRecord>,
    TraceRecord,
);

fn canonicalize(tree: &SpanTree) -> (Vec<CanonicalCampaign>, Vec<TraceRecord>) {
    let campaigns = tree
        .campaigns
        .iter()
        .map(|c| {
            let mut schedule: Vec<TraceRecord> = c.schedule.iter().map(strip_schedule).collect();
            schedule.sort_by_key(|r| format!("{:?}", r.event));
            let mut sweeps: Vec<_> = c.sweeps.iter().collect();
            sweeps.sort_by_key(|s| s.key());
            let sweeps = sweeps
                .into_iter()
                .map(|s| {
                    (
                        strip_schedule(&s.started),
                        s.leaves.iter().map(strip_schedule).collect(),
                        strip_schedule(&s.finished),
                    )
                })
                .collect();
            (
                strip_schedule(&c.started),
                schedule,
                sweeps,
                c.decisions.iter().map(strip_schedule).collect(),
                c.profile.iter().map(strip_schedule).collect(),
                strip_schedule(&c.finished),
            )
        })
        .collect();
    let standalone = tree.standalone.iter().map(strip_schedule).collect();
    (campaigns, standalone)
}

#[cfg(test)]
mod tests {
    use super::*;
    use margins_trace::{StreamFinalizer, TraceEvent};

    fn run(core: u8, mv: u32, effects: &str, severity: f64) -> TraceEvent {
        TraceEvent::RunCompleted {
            program: "bwaves".into(),
            dataset: "ref".into(),
            core,
            mv,
            iteration: 0,
            effects: effects.into(),
            severity,
            runtime_s: 0.25,
            energy_j: 0.5,
            corrected_errors: 0,
            uncorrected_errors: 0,
        }
    }

    fn sweep(core: u8, shard: u32, effects: &str, severity: f64) -> Vec<TraceEvent> {
        vec![
            TraceEvent::SweepStarted {
                program: "bwaves".into(),
                dataset: "ref".into(),
                core,
                shard,
            },
            run(core, 915, effects, severity),
            TraceEvent::SweepFinished {
                program: "bwaves".into(),
                dataset: "ref".into(),
                core,
                runs: 1,
            },
        ]
    }

    fn campaign(sweep_order: &[u8], effects: &str, severity: f64) -> Vec<TraceRecord> {
        let mut events = vec![TraceEvent::CampaignStarted {
            chip: "TTT#0".into(),
            rail: "pmd".into(),
            benchmarks: 1,
            cores: 2,
            steps: 1,
            iterations: 1,
            shards: 2,
            seed: 7,
        }];
        for shard in 0..2 {
            events.push(TraceEvent::ShardScheduled { shard, items: 1 });
        }
        for (i, &core) in sweep_order.iter().enumerate() {
            events.extend(sweep(core, i as u32, effects, severity));
        }
        events.push(TraceEvent::CampaignFinished {
            runs: sweep_order.len() as u64,
            power_cycles: 0,
        });
        let mut fin = StreamFinalizer::new();
        events.into_iter().map(|e| fin.seal(e)).collect()
    }

    #[test]
    fn identical_streams_exit_zero() {
        let a = campaign(&[0, 1], "NO", 0.0);
        let report = diff(&a, &a.clone());
        assert_eq!(report.class, DivergenceClass::Identical);
        assert_eq!(report.class.exit_code(), 0);
        assert!(report.first_divergence.is_none());
    }

    #[test]
    fn reordered_sweeps_classify_as_schedule_only() {
        let a = campaign(&[0, 1], "NO", 0.0);
        let b = campaign(&[1, 0], "NO", 0.0);
        let report = diff(&a, &b);
        assert_eq!(report.class, DivergenceClass::ScheduleOnly, "{report:?}");
        assert_eq!(report.class.exit_code(), 4);
        let d = report.first_divergence.expect("pinpointed");
        assert!(
            d.span_path.contains("campaign TTT#0/pmd"),
            "{}",
            d.span_path
        );
    }

    #[test]
    fn changed_severity_classifies_as_metrics_drift() {
        let a = campaign(&[0, 1], "SDC", 5.0);
        let b = campaign(&[0, 1], "SDC", 6.0);
        let report = diff(&a, &b);
        assert_eq!(report.class, DivergenceClass::MetricsDrift);
        assert_eq!(report.class.exit_code(), 5);
        let d = report.first_divergence.expect("pinpointed");
        assert!(d.span_path.contains("RunCompleted"), "{}", d.span_path);
    }

    #[test]
    fn changed_outcome_pinpoints_the_first_diverging_span() {
        let a = campaign(&[0, 1], "NO", 0.0);
        let b = campaign(&[0, 1], "SC", 23.0);
        let report = diff(&a, &b);
        assert_eq!(report.class, DivergenceClass::OutcomeDivergence);
        assert_eq!(report.class.exit_code(), 6);
        let d = report.first_divergence.as_ref().expect("pinpointed");
        assert_eq!(
            d.span_path,
            "campaign TTT#0/pmd / sweep bwaves:ref@core0 / RunCompleted"
        );
        assert!(d.left.is_some() && d.right.is_some());
        let text = report.render();
        assert!(text.contains("outcome-divergence"), "{text}");
        assert!(text.contains("first divergence at record"), "{text}");
    }

    #[test]
    fn truncated_stream_diverges_at_the_cut() {
        let a = campaign(&[0, 1], "NO", 0.0);
        let b = a[..a.len() - 1].to_vec();
        let report = diff(&a, &b);
        assert_eq!(report.class, DivergenceClass::OutcomeDivergence);
        let d = report.first_divergence.as_ref().expect("pinpointed");
        assert_eq!(d.index, a.len() - 1);
        assert!(d.left.is_some());
        assert!(d.right.is_none());
        assert!(report.render().contains("<stream ended>"));
    }
}
