//! The campaign profiling plane, folded into hotspot reports and a
//! work-accounting differ.
//!
//! A profiled campaign attributes every unit of simulator work — kernel
//! ops, fault samples, SRAM/ECC events, cache probes, watchdog
//! recoveries — to a pipeline phase, and emits the tallies as
//! `ProfileSample` (per sweep) and `ProfilePhase` (campaign rollup)
//! records. This module folds those records into a [`ProfileReport`]:
//! which phases and which kernels dominate the campaign's work, what a
//! sweep's probing costs, and how step work splits between the exhaustive
//! grid and an adaptive search. Like every scope artifact the report is a
//! pure function of the record sequence, so two reports of the same
//! stream render byte-identically.
//!
//! [`diff`] compares two reports of the *same intended experiment* and
//! classifies the divergence for CI gating: identical work accounting,
//! work drift within the same phase structure, or a phase-structure
//! divergence (work appearing in a phase that should be idle).

use crate::summary::ScopeError;
use margins_trace::json::{self, Value};
use margins_trace::span::SpanTree;
use margins_trace::{read_jsonl, reconstruct, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The pipeline phases in canonical stream order.
pub const PHASE_ORDER: [&str; 5] = [
    "board_init",
    "golden_run",
    "probe",
    "search_step",
    "cache_lookup",
];

/// Rank of a phase for deterministic ordering: canonical phases first in
/// stream order, unknown phases after, alphabetically.
fn phase_rank(phase: &str) -> usize {
    PHASE_ORDER
        .iter()
        .position(|p| *p == phase)
        .unwrap_or(PHASE_ORDER.len())
}

/// Work units attributed to one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseWork {
    /// Ops retired by executed kernels.
    pub ops: u64,
    /// Poisson fault samples drawn.
    pub fault_samples: u64,
    /// SRAM/ECC events observed.
    pub sram_events: u64,
    /// Campaign-cache probes issued.
    pub cache_probes: u64,
    /// Watchdog recoveries performed.
    pub recoveries: u64,
}

impl PhaseWork {
    /// Total work units, saturating.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.ops
            .saturating_add(self.fault_samples)
            .saturating_add(self.sram_events)
            .saturating_add(self.cache_probes)
            .saturating_add(self.recoveries)
    }

    fn accumulate(&mut self, other: &PhaseWork) {
        self.ops = self.ops.saturating_add(other.ops);
        self.fault_samples = self.fault_samples.saturating_add(other.fault_samples);
        self.sram_events = self.sram_events.saturating_add(other.sram_events);
        self.cache_probes = self.cache_probes.saturating_add(other.cache_probes);
        self.recoveries = self.recoveries.saturating_add(other.recoveries);
    }
}

/// One sweep's per-phase work, from its `ProfileSample` leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepProfile {
    /// Benchmark name.
    pub program: String,
    /// Dataset label.
    pub dataset: String,
    /// Target core index.
    pub core: u8,
    /// Phase name → work.
    pub phases: BTreeMap<String, PhaseWork>,
}

impl SweepProfile {
    /// A stable human label, e.g. `bwaves:ref@core0`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}:{}@core{}", self.program, self.dataset, self.core)
    }

    /// Total work units over all phases, saturating.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.phases
            .values()
            .fold(0u64, |acc, w| acc.saturating_add(w.total()))
    }
}

/// A stream's profiling plane, folded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileReport {
    /// Campaign-level phase rollups (phase name → work), summed over
    /// campaigns when the stream holds several.
    pub phases: BTreeMap<String, PhaseWork>,
    /// Sweeps declared by the rollup records.
    pub sweeps_declared: u64,
    /// Per-sweep profiles, in stream order.
    pub sweeps: Vec<SweepProfile>,
}

impl ProfileReport {
    /// Whether the stream carried any profile records at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty() && self.sweeps.is_empty()
    }

    /// Total work units over all phases, saturating.
    #[must_use]
    pub fn grand_total(&self) -> u64 {
        self.phases
            .values()
            .fold(0u64, |acc, w| acc.saturating_add(w.total()))
    }

    /// A phase's share of the total work, in [0, 1].
    #[must_use]
    pub fn phase_share(&self, phase: &str) -> f64 {
        let total = self.grand_total();
        if total == 0 {
            return 0.0;
        }
        self.phases.get(phase).map_or(0.0, |w| w.total() as f64) / total as f64
    }

    /// Phase names sorted hottest-first (canonical order breaks ties).
    #[must_use]
    pub fn hottest_phases(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.phases.keys().map(String::as_str).collect();
        names.sort_by_key(|p| {
            let total = self.phases[*p].total();
            (std::cmp::Reverse(total), phase_rank(p), *p)
        });
        names
    }

    /// Sweep indices sorted hottest-first (stream order breaks ties).
    #[must_use]
    pub fn hottest_sweeps(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.sweeps.len()).collect();
        order.sort_by_key(|i| (std::cmp::Reverse(self.sweeps[*i].total()), *i));
        order
    }

    /// Voltage-step work: `(probe, search_step)` totals.
    #[must_use]
    pub fn step_work(&self) -> (u64, u64) {
        let of = |phase: &str| self.phases.get(phase).map_or(0, PhaseWork::total);
        (of("probe"), of("search_step"))
    }

    /// Mean step-probing work per sweep; `None` without declared sweeps.
    #[must_use]
    pub fn probe_cost_per_sweep(&self) -> Option<f64> {
        if self.sweeps_declared == 0 {
            return None;
        }
        let (probe, search) = self.step_work();
        Some(probe.saturating_add(search) as f64 / self.sweeps_declared as f64)
    }
}

/// Folds a JSONL stream's profile records into a report.
///
/// # Errors
///
/// Returns [`ScopeError`] when a line does not parse or the span nesting
/// is invalid.
pub fn report_str(input: &str) -> Result<ProfileReport, ScopeError> {
    let records = read_jsonl(input)?;
    let tree = reconstruct(&records)?;
    Ok(report(&tree))
}

/// Folds a reconstructed span tree's profile records into a report.
#[must_use]
pub fn report(tree: &SpanTree) -> ProfileReport {
    let mut out = ProfileReport::default();
    for campaign in &tree.campaigns {
        let mut declared: Option<u64> = None;
        for record in &campaign.profile {
            if let TraceEvent::ProfilePhase {
                phase,
                sweeps,
                ops,
                fault_samples,
                sram_events,
                cache_probes,
                recoveries,
            } = &record.event
            {
                declared.get_or_insert(*sweeps);
                out.phases
                    .entry(phase.clone())
                    .or_default()
                    .accumulate(&PhaseWork {
                        ops: *ops,
                        fault_samples: *fault_samples,
                        sram_events: *sram_events,
                        cache_probes: *cache_probes,
                        recoveries: *recoveries,
                    });
            }
        }
        out.sweeps_declared += declared.unwrap_or(0);
        for sweep in &campaign.sweeps {
            let mut profile: Option<SweepProfile> = None;
            for leaf in &sweep.leaves {
                if let TraceEvent::ProfileSample {
                    program,
                    dataset,
                    core,
                    phase,
                    ops,
                    fault_samples,
                    sram_events,
                    cache_probes,
                    recoveries,
                } = &leaf.event
                {
                    let entry = profile.get_or_insert_with(|| SweepProfile {
                        program: program.clone(),
                        dataset: dataset.clone(),
                        core: *core,
                        phases: BTreeMap::new(),
                    });
                    entry
                        .phases
                        .entry(phase.clone())
                        .or_default()
                        .accumulate(&PhaseWork {
                            ops: *ops,
                            fault_samples: *fault_samples,
                            sram_events: *sram_events,
                            cache_probes: *cache_probes,
                            recoveries: *recoveries,
                        });
                }
            }
            if let Some(profile) = profile {
                out.sweeps.push(profile);
            }
        }
    }
    out
}

/// Renders a profile report as markdown.
#[must_use]
pub fn markdown(report: &ProfileReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# trace-scope profile");
    let _ = writeln!(out);
    if report.is_empty() {
        let _ = writeln!(
            out,
            "No profile records in the stream — rerun the campaign with \
             profiling enabled (`voltmargin characterize --profile`)."
        );
        return out;
    }
    let total = report.grand_total();
    let _ = writeln!(
        out,
        "{} work unit(s) over {} sweep(s).",
        total, report.sweeps_declared
    );

    let _ = writeln!(out);
    let _ = writeln!(out, "## Phase hotspots");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "| phase | ops | fault samples | sram events | cache probes | recoveries | total | share |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
    for phase in report.hottest_phases() {
        let w = &report.phases[phase];
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {:.2}% |",
            phase,
            w.ops,
            w.fault_samples,
            w.sram_events,
            w.cache_probes,
            w.recoveries,
            w.total(),
            report.phase_share(phase) * 100.0
        );
    }

    let (probe, search) = report.step_work();
    let _ = writeln!(out);
    if let Some(cost) = report.probe_cost_per_sweep() {
        let _ = writeln!(
            out,
            "- per-sweep probe cost: {} work unit(s)/sweep",
            json::fmt_f64(cost)
        );
    }
    if search > 0 {
        let _ = writeln!(
            out,
            "- step work attribution: {} unit(s) under adaptive search, {} under the exhaustive grid",
            search, probe
        );
    } else {
        let _ = writeln!(
            out,
            "- step work attribution: all {} unit(s) under the exhaustive grid",
            probe
        );
    }

    if !report.sweeps.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "## Kernel hotspots");
        let _ = writeln!(out);
        let _ = writeln!(out, "| sweep | ops | fault samples | total | share |");
        let _ = writeln!(out, "|---|---|---|---|---|");
        for idx in report.hottest_sweeps() {
            let s = &report.sweeps[idx];
            let ops: u64 = s.phases.values().fold(0, |a, w| a.saturating_add(w.ops));
            let faults: u64 = s
                .phases
                .values()
                .fold(0, |a, w| a.saturating_add(w.fault_samples));
            let share = if total > 0 {
                s.total() as f64 / total as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {:.2}% |",
                s.label(),
                ops,
                faults,
                s.total(),
                share * 100.0
            );
        }
    }
    out
}

fn work_value(w: &PhaseWork) -> Value {
    let mut map = BTreeMap::new();
    map.insert("ops".to_owned(), Value::from_u64(w.ops));
    map.insert("fault_samples".to_owned(), Value::from_u64(w.fault_samples));
    map.insert("sram_events".to_owned(), Value::from_u64(w.sram_events));
    map.insert("cache_probes".to_owned(), Value::from_u64(w.cache_probes));
    map.insert("recoveries".to_owned(), Value::from_u64(w.recoveries));
    map.insert("total".to_owned(), Value::from_u64(w.total()));
    Value::Object(map)
}

/// Renders a profile report as a JSON document (sorted keys, one
/// trailing newline).
#[must_use]
pub fn json(report: &ProfileReport) -> String {
    let mut root = BTreeMap::new();
    root.insert(
        "grand_total".to_owned(),
        Value::from_u64(report.grand_total()),
    );
    root.insert(
        "sweeps_declared".to_owned(),
        Value::from_u64(report.sweeps_declared),
    );
    root.insert(
        "phases".to_owned(),
        Value::Object(
            report
                .phases
                .iter()
                .map(|(phase, w)| (phase.clone(), work_value(w)))
                .collect(),
        ),
    );
    root.insert(
        "sweeps".to_owned(),
        Value::Array(
            report
                .sweeps
                .iter()
                .map(|s| {
                    let mut map = BTreeMap::new();
                    map.insert("program".to_owned(), Value::from_str_val(&s.program));
                    map.insert("dataset".to_owned(), Value::from_str_val(&s.dataset));
                    map.insert("core".to_owned(), Value::from_u64(s.core.into()));
                    map.insert(
                        "phases".to_owned(),
                        Value::Object(
                            s.phases
                                .iter()
                                .map(|(phase, w)| (phase.clone(), work_value(w)))
                                .collect(),
                        ),
                    );
                    map.insert("total".to_owned(), Value::from_u64(s.total()));
                    Value::Object(map)
                })
                .collect(),
        ),
    );
    let mut out = json::render(&Value::Object(root));
    out.push('\n');
    out
}

/// How two profile reports of the same intended experiment diverge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileDivergence {
    /// Identical work accounting, phase by phase and sweep by sweep.
    Identical,
    /// The same phases are active, but a phase's work tallies differ.
    WorkDrift {
        /// Where the drift was observed: `campaign` or a sweep label.
        scope: String,
        /// The first diverging phase, in canonical order.
        phase: String,
        /// Its total work in the first stream.
        a_total: u64,
        /// Its total work in the second stream.
        b_total: u64,
    },
    /// The phase structure itself differs: a phase is active in only one
    /// stream, or the sweep sets disagree.
    PhaseDivergence {
        /// What diverged.
        detail: String,
    },
}

impl ProfileDivergence {
    /// CI exit code: 0 identical, 4 work drift, 5 phase divergence.
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            ProfileDivergence::Identical => 0,
            ProfileDivergence::WorkDrift { .. } => 4,
            ProfileDivergence::PhaseDivergence { .. } => 5,
        }
    }

    /// One-line human description.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            ProfileDivergence::Identical => "identical work accounting".to_owned(),
            ProfileDivergence::WorkDrift {
                scope,
                phase,
                a_total,
                b_total,
            } => format!(
                "work drift in phase `{phase}` ({scope}): {a_total} vs {b_total} work unit(s)"
            ),
            ProfileDivergence::PhaseDivergence { detail } => {
                format!("phase divergence: {detail}")
            }
        }
    }
}

/// Names in `a` or `b` whose work totals are nonzero, canonically sorted.
fn active_phases(phases: &BTreeMap<String, PhaseWork>) -> Vec<&str> {
    let mut names: Vec<&str> = phases
        .iter()
        .filter(|(_, w)| w.total() > 0)
        .map(|(p, _)| p.as_str())
        .collect();
    names.sort_by_key(|p| (phase_rank(p), *p));
    names
}

/// Phase names of either map, in canonical order.
fn all_phases<'a>(
    a: &'a BTreeMap<String, PhaseWork>,
    b: &'a BTreeMap<String, PhaseWork>,
) -> Vec<&'a str> {
    let mut names: Vec<&str> = a.keys().chain(b.keys()).map(String::as_str).collect();
    names.sort_by_key(|p| (phase_rank(p), *p));
    names.dedup();
    names
}

/// Classifies the divergence between two profile reports.
///
/// Phase structure is compared first: a phase doing work in one stream
/// while idle in the other (e.g. step work flipping between `probe` and
/// `search_step`), or disagreeing sweep sets, is a *phase divergence* —
/// the experiments are not the same shape. With the structure intact,
/// any differing tally is *work drift*, named after the first diverging
/// phase in canonical order.
#[must_use]
pub fn diff(a: &ProfileReport, b: &ProfileReport) -> ProfileDivergence {
    if active_phases(&a.phases) != active_phases(&b.phases) {
        let all = all_phases(&a.phases, &b.phases);
        let culprit = all
            .iter()
            .find(|p| {
                let at = a.phases.get(**p).map_or(0, PhaseWork::total);
                let bt = b.phases.get(**p).map_or(0, PhaseWork::total);
                (at > 0) != (bt > 0)
            })
            .copied()
            .unwrap_or("?");
        return ProfileDivergence::PhaseDivergence {
            detail: format!("phase `{culprit}` is active in only one stream"),
        };
    }
    let a_sweeps: Vec<String> = a.sweeps.iter().map(SweepProfile::label).collect();
    let b_sweeps: Vec<String> = b.sweeps.iter().map(SweepProfile::label).collect();
    if a_sweeps != b_sweeps {
        return ProfileDivergence::PhaseDivergence {
            detail: format!(
                "sweep sets differ ({} vs {} profiled sweep(s))",
                a_sweeps.len(),
                b_sweeps.len()
            ),
        };
    }

    for phase in all_phases(&a.phases, &b.phases) {
        let wa = a.phases.get(phase).copied().unwrap_or_default();
        let wb = b.phases.get(phase).copied().unwrap_or_default();
        if wa != wb {
            return ProfileDivergence::WorkDrift {
                scope: "campaign".to_owned(),
                phase: phase.to_owned(),
                a_total: wa.total(),
                b_total: wb.total(),
            };
        }
    }
    for (sa, sb) in a.sweeps.iter().zip(&b.sweeps) {
        for phase in all_phases(&sa.phases, &sb.phases) {
            let wa = sa.phases.get(phase).copied().unwrap_or_default();
            let wb = sb.phases.get(phase).copied().unwrap_or_default();
            if wa != wb {
                return ProfileDivergence::WorkDrift {
                    scope: sa.label(),
                    phase: phase.to_owned(),
                    a_total: wa.total(),
                    b_total: wb.total(),
                };
            }
        }
    }
    if a.sweeps_declared != b.sweeps_declared {
        return ProfileDivergence::PhaseDivergence {
            detail: format!(
                "declared sweep counts differ ({} vs {})",
                a.sweeps_declared, b.sweeps_declared
            ),
        };
    }
    ProfileDivergence::Identical
}

#[cfg(test)]
mod tests {
    use super::*;
    use margins_trace::{StreamFinalizer, TraceRecord};

    fn sample(phase: &str, ops: u64, extras: (u64, u64, u64, u64)) -> TraceEvent {
        TraceEvent::ProfileSample {
            program: "bwaves".into(),
            dataset: "ref".into(),
            core: 0,
            phase: phase.into(),
            ops,
            fault_samples: extras.0,
            sram_events: extras.1,
            cache_probes: extras.2,
            recoveries: extras.3,
        }
    }

    fn rollup(phase: &str, ops: u64, extras: (u64, u64, u64, u64)) -> TraceEvent {
        TraceEvent::ProfilePhase {
            phase: phase.into(),
            sweeps: 1,
            ops,
            fault_samples: extras.0,
            sram_events: extras.1,
            cache_probes: extras.2,
            recoveries: extras.3,
        }
    }

    fn profiled_stream(probe_ops: u64, adaptive: bool) -> Vec<TraceRecord> {
        let step_phase = if adaptive { "search_step" } else { "probe" };
        let mut fin = StreamFinalizer::new();
        vec![
            TraceEvent::CampaignStarted {
                chip: "TTT#0".into(),
                rail: "pmd".into(),
                benchmarks: 1,
                cores: 1,
                steps: 2,
                iterations: 1,
                shards: 1,
                seed: 7,
            },
            TraceEvent::SweepStarted {
                program: "bwaves".into(),
                dataset: "ref".into(),
                core: 0,
                shard: 0,
            },
            sample("board_init", 0, (0, 0, 0, 1)),
            sample("golden_run", 100, (10, 0, 0, 0)),
            sample(step_phase, probe_ops, (40, 2, 0, 0)),
            sample("cache_lookup", 0, (0, 0, 3, 0)),
            TraceEvent::SweepFinished {
                program: "bwaves".into(),
                dataset: "ref".into(),
                core: 0,
                runs: 2,
            },
            rollup("board_init", 0, (0, 0, 0, 1)),
            rollup("golden_run", 100, (10, 0, 0, 0)),
            rollup(step_phase, probe_ops, (40, 2, 0, 0)),
            rollup("cache_lookup", 0, (0, 0, 3, 0)),
            TraceEvent::CampaignFinished {
                runs: 2,
                power_cycles: 1,
            },
        ]
        .into_iter()
        .map(|e| fin.seal(e))
        .collect()
    }

    fn report_of(records: &[TraceRecord]) -> ProfileReport {
        report(&reconstruct(records).expect("valid stream"))
    }

    #[test]
    fn report_folds_rollups_and_sweep_samples() {
        let r = report_of(&profiled_stream(400, false));
        assert!(!r.is_empty());
        assert_eq!(r.sweeps_declared, 1);
        assert_eq!(r.grand_total(), 1 + 110 + 442 + 3);
        assert_eq!(r.phases["probe"].ops, 400);
        assert_eq!(r.phases["cache_lookup"].cache_probes, 3);
        assert_eq!(r.hottest_phases()[0], "probe");
        assert_eq!(r.sweeps.len(), 1);
        assert_eq!(r.sweeps[0].label(), "bwaves:ref@core0");
        assert_eq!(r.sweeps[0].total(), r.grand_total());
        assert_eq!(r.step_work(), (442, 0));
        let cost = r.probe_cost_per_sweep().expect("declared sweeps");
        assert!((cost - 442.0).abs() < 1e-12);
    }

    #[test]
    fn unprofiled_streams_fold_to_an_empty_report() {
        let mut fin = StreamFinalizer::new();
        let records: Vec<TraceRecord> = vec![
            TraceEvent::CampaignStarted {
                chip: "TTT#0".into(),
                rail: "pmd".into(),
                benchmarks: 1,
                cores: 1,
                steps: 1,
                iterations: 1,
                shards: 1,
                seed: 7,
            },
            TraceEvent::CampaignFinished {
                runs: 0,
                power_cycles: 0,
            },
        ]
        .into_iter()
        .map(|e| fin.seal(e))
        .collect();
        let r = report_of(&records);
        assert!(r.is_empty());
        assert_eq!(r.probe_cost_per_sweep(), None);
        assert!(markdown(&r).contains("No profile records"));
    }

    #[test]
    fn renders_are_deterministic_and_name_the_hotspots() {
        let r = report_of(&profiled_stream(400, false));
        let md = markdown(&r);
        assert_eq!(md, markdown(&r));
        assert!(md.contains("## Phase hotspots"), "{md}");
        assert!(md.contains("| probe | 400 | 40 | 2 |"), "{md}");
        assert!(md.contains("## Kernel hotspots"), "{md}");
        assert!(md.contains("| bwaves:ref@core0 |"), "{md}");
        assert!(
            md.contains("all 442 unit(s) under the exhaustive grid"),
            "{md}"
        );

        let text = json(&r);
        assert!(text.ends_with('\n'));
        let value = margins_trace::json::parse(text.trim_end()).expect("valid JSON");
        let root = value.as_object().expect("object");
        assert_eq!(
            root.get("grand_total").and_then(Value::as_number),
            Some("556")
        );
        let phases = root.get("phases").and_then(Value::as_object).expect("map");
        let probe = phases.get("probe").and_then(Value::as_object).expect("map");
        assert_eq!(probe.get("total").and_then(Value::as_number), Some("442"));
    }

    #[test]
    fn adaptive_streams_attribute_step_work_to_search() {
        let r = report_of(&profiled_stream(400, true));
        assert_eq!(r.step_work(), (0, 442));
        let md = markdown(&r);
        assert!(md.contains("442 unit(s) under adaptive search"), "{md}");
    }

    #[test]
    fn diff_classifies_identical_drift_and_divergence() {
        let a = report_of(&profiled_stream(400, false));

        let identical = diff(&a, &report_of(&profiled_stream(400, false)));
        assert_eq!(identical, ProfileDivergence::Identical);
        assert_eq!(identical.exit_code(), 0);

        let drift = diff(&a, &report_of(&profiled_stream(500, false)));
        match &drift {
            ProfileDivergence::WorkDrift {
                scope,
                phase,
                a_total,
                b_total,
            } => {
                assert_eq!(scope, "campaign");
                assert_eq!(phase, "probe");
                assert_eq!((*a_total, *b_total), (442, 542));
            }
            other => panic!("expected work drift, got {other:?}"),
        }
        assert_eq!(drift.exit_code(), 4);
        assert!(drift.describe().contains("phase `probe`"), "{drift:?}");

        let divergence = diff(&a, &report_of(&profiled_stream(400, true)));
        match &divergence {
            ProfileDivergence::PhaseDivergence { detail } => {
                assert!(detail.contains('`'), "{detail}");
            }
            other => panic!("expected phase divergence, got {other:?}"),
        }
        assert_eq!(divergence.exit_code(), 5);
    }

    #[test]
    fn report_str_reads_jsonl_round_trip() {
        let records = profiled_stream(400, false);
        let mut text = String::new();
        for r in &records {
            text.push_str(&r.to_json_line().expect("serializable"));
            text.push('\n');
        }
        let r = report_str(&text).expect("valid stream");
        assert_eq!(r, report_of(&records));
        assert!(report_str("not json\n").is_err());
    }
}
