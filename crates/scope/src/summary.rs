//! Folding a reconstructed span tree into typed campaign analytics.
//!
//! The summary is a pure function of the record sequence: every tally is
//! accumulated in stream order, every map is a [`BTreeMap`], and nothing
//! outside the records (paths, clocks, environment) enters the result —
//! the foundation for byte-deterministic reports.

use margins_trace::span::{CampaignSpan, SpanTree, SweepSpan};
use margins_trace::{read_jsonl, reconstruct, ParseFailure, SpanError, TraceEvent, TraceRecord};
use std::collections::BTreeMap;
use std::fmt;

/// Power cycles within one sweep at or above which the sweep is flagged as
/// a *recovery storm* — the §2.2.1 situation where the watchdog fights a
/// crashing configuration instead of the sweep making progress.
pub const RECOVERY_STORM_THRESHOLD: u32 = 3;

/// Everything a trace stream contained, summarized.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSummary {
    /// Total records in the stream.
    pub records: u64,
    /// Per-campaign analytics, in stream order.
    pub campaigns: Vec<CampaignSummary>,
    /// Governor decisions outside any campaign span.
    pub standalone_decisions: Vec<DecisionSummary>,
}

/// One campaign, summarized.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSummary {
    /// Chip identity.
    pub chip: String,
    /// Swept rail.
    pub rail: String,
    /// Benchmarks in the campaign grid.
    pub benchmarks: u32,
    /// Target cores in the grid.
    pub cores: u32,
    /// Voltage steps in the grid.
    pub steps: u32,
    /// Iterations per step.
    pub iterations: u32,
    /// Logical work shards.
    pub shards: u32,
    /// Campaign seed.
    pub seed: u64,
    /// Runs declared by `CampaignFinished`.
    pub declared_runs: u64,
    /// Power cycles declared by `CampaignFinished`.
    pub declared_power_cycles: u32,
    /// Runs counted from `RunCompleted` leaves.
    pub runs: u64,
    /// Golden captures counted.
    pub goldens: u64,
    /// Power cycles counted from `WatchdogPowerCycle` leaves.
    pub power_cycles: u32,
    /// Modelled campaign duration — the closing record's `t_model_s`.
    pub modelled_time_s: f64,
    /// Total modelled energy over all runs, joules.
    pub energy_j: f64,
    /// Total modelled runtime over all runs, seconds.
    pub runtime_s: f64,
    /// Runs per observed effect combination (`"NO"`, `"SDC+CE"`, …).
    pub outcomes: BTreeMap<String, u64>,
    /// Runs with any abnormal effect.
    pub abnormal_runs: u64,
    /// Sum of per-run severities.
    pub severity_sum: f64,
    /// Largest per-run severity.
    pub severity_max: f64,
    /// Campaign-cache lookups.
    pub cache_lookups: u64,
    /// Campaign-cache hits.
    pub cache_hits: u64,
    /// Adaptive-search totals, when any sweep concluded a search.
    pub search: Option<SearchTotals>,
    /// Sweeps whose power-cycle count reached the storm threshold.
    pub storms: Vec<RecoveryStorm>,
    /// Campaign-scoped governor decisions.
    pub decisions: Vec<DecisionSummary>,
    /// Per-sweep analytics, in stream order.
    pub sweeps: Vec<SweepSummary>,
}

impl CampaignSummary {
    /// A stable human label, e.g. `TTT#0/pmd`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}/{}", self.chip, self.rail)
    }

    /// Cache hit rate in [0, 1]; `None` when no lookup happened.
    #[must_use]
    pub fn cache_hit_rate(&self) -> Option<f64> {
        (self.cache_lookups > 0).then(|| self.cache_hits as f64 / self.cache_lookups as f64)
    }
}

/// One (benchmark, core) sweep, summarized.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSummary {
    /// Benchmark name.
    pub program: String,
    /// Dataset label.
    pub dataset: String,
    /// Target core index.
    pub core: u8,
    /// Logical shard index.
    pub shard: u32,
    /// Runs declared by `SweepFinished`.
    pub declared_runs: u32,
    /// Runs counted from `RunCompleted` leaves.
    pub runs: u64,
    /// Runs with any abnormal effect.
    pub abnormal_runs: u64,
    /// Golden captures.
    pub goldens: u64,
    /// Voltage steps executed on a board (`VoltageStepped`) — cache
    /// replays emit runs without a step, so this counts machine probes.
    pub machine_probes: u64,
    /// Watchdog power cycles inside the sweep.
    pub power_cycles: u32,
    /// Campaign-cache lookups.
    pub cache_lookups: u64,
    /// Campaign-cache hits.
    pub cache_hits: u64,
    /// Runs per observed effect combination.
    pub outcomes: BTreeMap<String, u64>,
    /// Sum of per-run severities.
    pub severity_sum: f64,
    /// Largest per-run severity.
    pub severity_max: f64,
    /// Total modelled runtime, seconds.
    pub runtime_s: f64,
    /// Total modelled energy, joules.
    pub energy_j: f64,
    /// Lowest voltage any run executed at, millivolts.
    pub lowest_mv: Option<u32>,
    /// Voltage of an `EarlyStop`, when the sweep stopped early.
    pub early_stop_mv: Option<u32>,
    /// Search conclusion, when the sweep ran an adaptive strategy.
    pub search: Option<SearchTotals>,
}

impl SweepSummary {
    /// A stable human label, e.g. `bwaves:ref@core0`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}:{}@core{}", self.program, self.dataset, self.core)
    }

    /// Whether the sweep's recoveries reached the storm threshold.
    #[must_use]
    pub fn recovery_storm(&self) -> bool {
        self.power_cycles >= RECOVERY_STORM_THRESHOLD
    }
}

/// Probe-count totals of adaptive voltage searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchTotals {
    /// Steps actually probed on a board.
    pub probed_steps: u64,
    /// Steps the exhaustive grid would have probed.
    pub grid_steps: u64,
    /// Probes answered from the campaign cache.
    pub cache_hits: u64,
}

impl SearchTotals {
    /// Fraction of grid probes the strategy avoided, in [0, 1].
    #[must_use]
    pub fn savings(&self) -> f64 {
        if self.grid_steps == 0 {
            return 0.0;
        }
        1.0 - self.probed_steps as f64 / self.grid_steps as f64
    }
}

/// One sweep flagged as a recovery storm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryStorm {
    /// The sweep's label.
    pub sweep: String,
    /// Its power-cycle count.
    pub power_cycles: u32,
}

/// One governor decision.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionSummary {
    /// Chosen rail voltage, millivolts.
    pub voltage_mv: u32,
    /// Guardband steps above the limiting Vmin.
    pub guardband_steps: u32,
    /// Power relative to nominal.
    pub relative_power: f64,
    /// Performance relative to nominal.
    pub relative_performance: f64,
    /// Projected energy savings.
    pub energy_savings: f64,
}

/// Reading or reconstructing a stream for summarization failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ScopeError {
    /// A line did not parse as a trace record.
    Parse(ParseFailure),
    /// The record sequence violates the span-nesting contract.
    Span(SpanError),
}

impl fmt::Display for ScopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScopeError::Parse(e) => write!(f, "{e}"),
            ScopeError::Span(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ScopeError {}

impl From<ParseFailure> for ScopeError {
    fn from(e: ParseFailure) -> Self {
        ScopeError::Parse(e)
    }
}

impl From<SpanError> for ScopeError {
    fn from(e: SpanError) -> Self {
        ScopeError::Span(e)
    }
}

/// Summarizes a JSONL stream.
///
/// # Errors
///
/// Returns [`ScopeError`] when a line does not parse or the span nesting
/// is invalid.
pub fn summarize_str(input: &str) -> Result<StreamSummary, ScopeError> {
    let records = read_jsonl(input)?;
    Ok(summarize_records(&records)?)
}

/// Summarizes a record sequence.
///
/// # Errors
///
/// Returns [`SpanError`] when the span nesting is invalid.
pub fn summarize_records(records: &[TraceRecord]) -> Result<StreamSummary, SpanError> {
    Ok(summarize(&reconstruct(records)?))
}

/// Summarizes an already-reconstructed span tree.
#[must_use]
pub fn summarize(tree: &SpanTree) -> StreamSummary {
    let campaigns: Vec<CampaignSummary> = tree.campaigns.iter().map(summarize_campaign).collect();
    let records = campaigns
        .iter()
        .zip(&tree.campaigns)
        .map(|(_, span)| span.records())
        .sum::<u64>()
        + tree.standalone.len() as u64;
    StreamSummary {
        records,
        campaigns,
        standalone_decisions: tree.standalone.iter().filter_map(decision_of).collect(),
    }
}

fn summarize_campaign(span: &CampaignSpan) -> CampaignSummary {
    let sweeps: Vec<SweepSummary> = span.sweeps.iter().map(summarize_sweep).collect();

    let mut outcomes: BTreeMap<String, u64> = BTreeMap::new();
    let mut search: Option<SearchTotals> = None;
    let mut storms = Vec::new();
    for sweep in &sweeps {
        for (effects, count) in &sweep.outcomes {
            *outcomes.entry(effects.clone()).or_insert(0) += count;
        }
        if let Some(totals) = sweep.search {
            let agg = search.get_or_insert_with(SearchTotals::default);
            agg.probed_steps += totals.probed_steps;
            agg.grid_steps += totals.grid_steps;
            agg.cache_hits += totals.cache_hits;
        }
        if sweep.recovery_storm() {
            storms.push(RecoveryStorm {
                sweep: sweep.label(),
                power_cycles: sweep.power_cycles,
            });
        }
    }

    CampaignSummary {
        chip: span.chip.clone(),
        rail: span.rail.clone(),
        benchmarks: span.benchmarks,
        cores: span.cores,
        steps: span.steps,
        iterations: span.iterations,
        shards: span.shards,
        seed: span.seed,
        declared_runs: span.declared_runs,
        declared_power_cycles: span.declared_power_cycles,
        runs: sweeps.iter().map(|s| s.runs).sum(),
        goldens: sweeps.iter().map(|s| s.goldens).sum(),
        power_cycles: sweeps.iter().map(|s| s.power_cycles).sum(),
        modelled_time_s: span.finished.t_model_s,
        energy_j: sweeps.iter().map(|s| s.energy_j).sum(),
        runtime_s: sweeps.iter().map(|s| s.runtime_s).sum(),
        outcomes,
        abnormal_runs: sweeps.iter().map(|s| s.abnormal_runs).sum(),
        severity_sum: sweeps.iter().map(|s| s.severity_sum).sum(),
        severity_max: sweeps.iter().map(|s| s.severity_max).fold(0.0, f64::max),
        cache_lookups: sweeps.iter().map(|s| s.cache_lookups).sum(),
        cache_hits: sweeps.iter().map(|s| s.cache_hits).sum(),
        search,
        storms,
        decisions: span.decisions.iter().filter_map(decision_of).collect(),
        sweeps,
    }
}

fn summarize_sweep(span: &SweepSpan) -> SweepSummary {
    let mut s = SweepSummary {
        program: span.program.clone(),
        dataset: span.dataset.clone(),
        core: span.core,
        shard: span.shard,
        declared_runs: span.declared_runs,
        runs: 0,
        abnormal_runs: 0,
        goldens: 0,
        machine_probes: 0,
        power_cycles: 0,
        cache_lookups: 0,
        cache_hits: 0,
        outcomes: BTreeMap::new(),
        severity_sum: 0.0,
        severity_max: 0.0,
        runtime_s: 0.0,
        energy_j: 0.0,
        lowest_mv: None,
        early_stop_mv: None,
        search: None,
    };
    for leaf in &span.leaves {
        match &leaf.event {
            TraceEvent::RunCompleted {
                mv,
                effects,
                severity,
                runtime_s,
                energy_j,
                ..
            } => {
                s.runs += 1;
                *s.outcomes.entry(effects.clone()).or_insert(0) += 1;
                if effects != "NO" {
                    s.abnormal_runs += 1;
                }
                s.severity_sum += severity;
                s.severity_max = s.severity_max.max(*severity);
                s.runtime_s += runtime_s;
                s.energy_j += energy_j;
                s.lowest_mv = Some(s.lowest_mv.map_or(*mv, |lo| lo.min(*mv)));
            }
            TraceEvent::GoldenCaptured { .. } => s.goldens += 1,
            TraceEvent::VoltageStepped { .. } => s.machine_probes += 1,
            TraceEvent::WatchdogPowerCycle { .. } => s.power_cycles += 1,
            TraceEvent::CacheLookup { hit, .. } => {
                s.cache_lookups += 1;
                s.cache_hits += u64::from(*hit);
            }
            TraceEvent::EarlyStop { mv, .. } => s.early_stop_mv = Some(*mv),
            TraceEvent::SearchConcluded {
                probed_steps,
                grid_steps,
                cache_hits,
                ..
            } => {
                s.search = Some(SearchTotals {
                    probed_steps: u64::from(*probed_steps),
                    grid_steps: u64::from(*grid_steps),
                    cache_hits: u64::from(*cache_hits),
                });
            }
            _ => {}
        }
    }
    s
}

fn decision_of(record: &TraceRecord) -> Option<DecisionSummary> {
    match &record.event {
        TraceEvent::VoltageDecision {
            voltage_mv,
            guardband_steps,
            relative_power,
            relative_performance,
            energy_savings,
        } => Some(DecisionSummary {
            voltage_mv: *voltage_mv,
            guardband_steps: *guardband_steps,
            relative_power: *relative_power,
            relative_performance: *relative_performance,
            energy_savings: *energy_savings,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use margins_trace::{StreamFinalizer, TraceEvent};

    fn seal(events: Vec<TraceEvent>) -> Vec<TraceRecord> {
        let mut fin = StreamFinalizer::new();
        events.into_iter().map(|e| fin.seal(e)).collect()
    }

    fn run(mv: u32, effects: &str, severity: f64) -> TraceEvent {
        TraceEvent::RunCompleted {
            program: "bwaves".into(),
            dataset: "ref".into(),
            core: 0,
            mv,
            iteration: 0,
            effects: effects.into(),
            severity,
            runtime_s: 0.25,
            energy_j: 0.5,
            corrected_errors: 0,
            uncorrected_errors: 0,
        }
    }

    fn campaign_stream() -> Vec<TraceRecord> {
        seal(vec![
            TraceEvent::CampaignStarted {
                chip: "TTT#0".into(),
                rail: "pmd".into(),
                benchmarks: 1,
                cores: 1,
                steps: 3,
                iterations: 1,
                shards: 1,
                seed: 7,
            },
            TraceEvent::ShardScheduled { shard: 0, items: 3 },
            TraceEvent::SweepStarted {
                program: "bwaves".into(),
                dataset: "ref".into(),
                core: 0,
                shard: 0,
            },
            TraceEvent::GoldenCaptured {
                program: "bwaves".into(),
                dataset: "ref".into(),
                core: 0,
                digest: "00ff".into(),
                runtime_s: 0.25,
            },
            TraceEvent::CacheLookup {
                program: "bwaves".into(),
                dataset: "ref".into(),
                core: 0,
                probe: "step".into(),
                mv: 915,
                hit: true,
            },
            run(915, "NO", 0.0),
            TraceEvent::VoltageStepped {
                rail: "pmd".into(),
                mv: 910,
                step: 1,
            },
            run(910, "SDC+CE", 5.0),
            TraceEvent::WatchdogPowerCycle { recovery: 1 },
            TraceEvent::WatchdogPowerCycle { recovery: 2 },
            TraceEvent::WatchdogPowerCycle { recovery: 3 },
            run(905, "SC", 23.0),
            TraceEvent::EarlyStop {
                program: "bwaves".into(),
                core: 0,
                mv: 905,
                consecutive_all_sc: 1,
            },
            TraceEvent::SearchConcluded {
                program: "bwaves".into(),
                core: 0,
                strategy: "bisection".into(),
                probed_steps: 2,
                grid_steps: 3,
                cache_hits: 1,
            },
            TraceEvent::SweepFinished {
                program: "bwaves".into(),
                dataset: "ref".into(),
                core: 0,
                runs: 3,
            },
            TraceEvent::VoltageDecision {
                voltage_mv: 920,
                guardband_steps: 1,
                relative_power: 0.88,
                relative_performance: 1.0,
                energy_savings: 0.12,
            },
            TraceEvent::CampaignFinished {
                runs: 3,
                power_cycles: 3,
            },
        ])
    }

    #[test]
    fn campaign_tallies_cover_every_dimension() {
        let summary = summarize_records(&campaign_stream()).expect("valid stream");
        assert_eq!(summary.records, 17);
        assert_eq!(summary.campaigns.len(), 1);
        let c = &summary.campaigns[0];
        assert_eq!(c.label(), "TTT#0/pmd");
        assert_eq!((c.runs, c.declared_runs), (3, 3));
        assert_eq!((c.power_cycles, c.declared_power_cycles), (3, 3));
        assert_eq!(c.goldens, 1);
        assert_eq!(c.abnormal_runs, 2);
        assert_eq!(c.outcomes.get("NO"), Some(&1));
        assert_eq!(c.outcomes.get("SDC+CE"), Some(&1));
        assert_eq!(c.outcomes.get("SC"), Some(&1));
        assert_eq!((c.cache_lookups, c.cache_hits), (1, 1));
        assert!((c.severity_sum - 28.0).abs() < 1e-12);
        assert!((c.severity_max - 23.0).abs() < 1e-12);
        assert!((c.energy_j - 1.5).abs() < 1e-12);
        assert_eq!(c.decisions.len(), 1);
        assert_eq!(c.decisions[0].voltage_mv, 920);

        let search = c.search.expect("search concluded");
        assert_eq!((search.probed_steps, search.grid_steps), (2, 3));
        assert!((search.savings() - 1.0 / 3.0).abs() < 1e-12);

        let s = &c.sweeps[0];
        assert_eq!(s.lowest_mv, Some(905));
        assert_eq!(s.early_stop_mv, Some(905));
        assert_eq!(s.machine_probes, 1);
    }

    #[test]
    fn recovery_storms_are_flagged_at_the_threshold() {
        let summary = summarize_records(&campaign_stream()).expect("valid stream");
        let c = &summary.campaigns[0];
        assert!(c.sweeps[0].recovery_storm());
        assert_eq!(
            c.storms,
            vec![RecoveryStorm {
                sweep: "bwaves:ref@core0".into(),
                power_cycles: 3,
            }]
        );
    }

    #[test]
    fn standalone_decisions_and_empty_streams() {
        let records = seal(vec![TraceEvent::VoltageDecision {
            voltage_mv: 890,
            guardband_steps: 1,
            relative_power: 0.85,
            relative_performance: 1.0,
            energy_savings: 0.15,
        }]);
        let summary = summarize_records(&records).expect("valid");
        assert!(summary.campaigns.is_empty());
        assert_eq!(summary.standalone_decisions.len(), 1);
        assert_eq!(summary.records, 1);

        let empty = summarize_records(&[]).expect("empty is valid");
        assert_eq!(empty.records, 0);
        assert!(empty.campaigns.is_empty() && empty.standalone_decisions.is_empty());
    }

    #[test]
    fn summarize_str_propagates_both_error_kinds() {
        let err = summarize_str("not json\n").expect_err("parse error");
        assert!(matches!(err, ScopeError::Parse(_)), "{err}");

        let orphan = seal(vec![run(900, "NO", 0.0)]);
        let line = orphan[0].to_json_line().expect("serializable");
        let err = summarize_str(&format!("{line}\n")).expect_err("span error");
        assert!(matches!(err, ScopeError::Span(_)), "{err}");
        assert!(err.to_string().contains("outside a sweep"), "{err}");
    }

    #[test]
    fn search_totals_savings_handles_empty_grid() {
        assert!((SearchTotals::default().savings() - 0.0).abs() < 1e-12);
    }
}
