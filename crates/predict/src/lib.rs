//! From-scratch statistical learning for the §4 prediction study: ordinary
//! least squares on standardized features, recursive feature elimination
//! (RFE), R²/RMSE metrics, seeded train/test splitting and the naïve
//! mean-of-training-targets baseline the paper compares against.
//!
//! The paper's analysis (§4) uses scikit-learn's linear regression and RFE;
//! this crate reimplements both so the whole reproduction is dependency
//! free:
//!
//! * [`linalg`] — a small dense matrix with Gaussian elimination,
//! * [`ols`] — [`ols::LinearRegression`] with feature standardization and a
//!   vanishing ridge term for rank-deficient systems (n < p happens in the
//!   Vmin study: 40 samples × 101 counters),
//! * [`rfe`] — recursive elimination down to the paper's five features,
//! * [`metrics`] — R² ("can be 0 … or even negative") and RMSE,
//! * [`split`] — seeded 80/20 shuffled splits (§4.3),
//! * [`naive`] — the baseline predictor.
//!
//! # Example
//!
//! ```
//! use margins_predict::ols::LinearRegression;
//! use margins_predict::metrics::{r2_score, rmse};
//!
//! // y = 2·x0 − 3·x1 + 1, exactly.
//! let x: Vec<Vec<f64>> = (0..20)
//!     .map(|i| vec![f64::from(i), f64::from(i % 5)])
//!     .collect();
//! let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] - 3.0 * r[1] + 1.0).collect();
//! let model = LinearRegression::fit(&x, &y).unwrap();
//! let pred = model.predict_many(&x);
//! assert!(r2_score(&y, &pred) > 0.999);
//! assert!(rmse(&y, &pred) < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linalg;
pub mod metrics;
pub mod naive;
pub mod ols;
pub mod rfe;
pub mod split;

pub use metrics::{r2_score, rmse};
pub use naive::NaiveMean;
pub use ols::{FitError, LinearRegression};
pub use rfe::RecursiveFeatureElimination;
pub use split::train_test_split;
