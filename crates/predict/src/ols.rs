//! Ordinary least squares with feature standardization.
//!
//! "Assuming a set of x1, x2, …, xN independent variables and y the
//! dependent variable, the classical linear regression model … is based on
//! the Ordinary Least Squares (OLS) model." (§4)
//!
//! Features are standardized (zero mean, unit variance) before solving the
//! normal equations; constant columns are dropped (their weight is zero by
//! construction). A small ridge term on the standardized Gram diagonal
//! keeps rank-deficient systems solvable — the Vmin study fits 101
//! features from 40 samples, where plain OLS is underdetermined — and
//! bounds the coefficients of collinear counter pairs so RFE's importance
//! ranking stays meaningful.

use crate::linalg::Matrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Relative ridge added to the standardized Gram diagonal.
///
/// Real counter files contain strongly collinear (sometimes identical)
/// event pairs; with a vanishing ridge the normal equations assign huge
/// cancelling coefficients to such pairs, which poisons RFE's
/// importance ranking. A 1e-4 relative ridge bounds coefficients on
/// collinear clusters while biasing well-conditioned problems negligibly.
const RIDGE: f64 = 1e-4;

/// Error returned by [`LinearRegression::fit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// No samples were provided.
    EmptyDataset,
    /// Feature rows have inconsistent lengths, or targets don't match.
    ShapeMismatch,
    /// The normal equations could not be solved even with the ridge term.
    Singular,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::EmptyDataset => f.write_str("cannot fit on an empty dataset"),
            FitError::ShapeMismatch => f.write_str("feature/target shapes are inconsistent"),
            FitError::Singular => f.write_str("normal equations are singular"),
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted linear model `ŷ = β₀ + Σ βⱼ·xⱼ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegression {
    /// Per-feature coefficients in *original* (unstandardized) units.
    coefficients: Vec<f64>,
    /// Intercept in original units.
    intercept: f64,
    /// Coefficients in standardized units (used for RFE ranking).
    standardized_coefficients: Vec<f64>,
}

impl LinearRegression {
    /// Fits the model to `x` (rows of features) and targets `y`.
    ///
    /// # Errors
    ///
    /// Returns a [`FitError`] for empty/ragged inputs or a singular system.
    pub fn fit(x: &[Vec<f64>], y: &[f64]) -> Result<Self, FitError> {
        if x.is_empty() || y.is_empty() {
            return Err(FitError::EmptyDataset);
        }
        if x.len() != y.len() {
            return Err(FitError::ShapeMismatch);
        }
        let p = x[0].len();
        if p == 0 || x.iter().any(|row| row.len() != p) {
            return Err(FitError::ShapeMismatch);
        }
        let n = x.len();

        // Standardize features; remember constant columns.
        let mut means = vec![0.0; p];
        let mut stds = vec![0.0; p];
        for j in 0..p {
            let mean = x.iter().map(|r| r[j]).sum::<f64>() / n as f64;
            let var = x.iter().map(|r| (r[j] - mean).powi(2)).sum::<f64>() / n as f64;
            means[j] = mean;
            stds[j] = var.sqrt();
        }
        let active: Vec<usize> = (0..p).filter(|&j| stds[j] > 1e-300).collect();
        let y_mean = y.iter().sum::<f64>() / n as f64;

        if active.is_empty() {
            // All features constant: the model is just the mean.
            return Ok(LinearRegression {
                coefficients: vec![0.0; p],
                intercept: y_mean,
                standardized_coefficients: vec![0.0; p],
            });
        }

        let rows: Vec<Vec<f64>> = x
            .iter()
            .map(|r| {
                active
                    .iter()
                    .map(|&j| (r[j] - means[j]) / stds[j])
                    .collect()
            })
            .collect();
        let xm = Matrix::from_rows(&rows);
        let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

        let mut gram = xm.gram();
        gram.add_diagonal(RIDGE * n as f64);
        let xty = xm.transpose_mul_vec(&yc);
        let beta_std = gram.solve(&xty).ok_or(FitError::Singular)?;

        // Back-transform to original units.
        let mut coefficients = vec![0.0; p];
        let mut standardized = vec![0.0; p];
        let mut intercept = y_mean;
        for (k, &j) in active.iter().enumerate() {
            standardized[j] = beta_std[k];
            coefficients[j] = beta_std[k] / stds[j];
            intercept -= coefficients[j] * means[j];
        }
        Ok(LinearRegression {
            coefficients,
            intercept,
            standardized_coefficients: standardized,
        })
    }

    /// Predicts a single sample.
    ///
    /// # Panics
    ///
    /// Panics if the feature count differs from the fitted model.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.coefficients.len(),
            "feature count mismatch"
        );
        self.intercept
            + features
                .iter()
                .zip(&self.coefficients)
                .map(|(x, b)| x * b)
                .sum::<f64>()
    }

    /// Predicts many samples.
    #[must_use]
    pub fn predict_many(&self, x: &[Vec<f64>]) -> Vec<f64> {
        x.iter().map(|r| self.predict(r)).collect()
    }

    /// Coefficients in original feature units.
    #[must_use]
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// The intercept β₀.
    #[must_use]
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Coefficients in standardized units — comparable across features;
    /// this is the importance RFE ranks by.
    #[must_use]
    pub fn standardized_coefficients(&self) -> &[f64] {
        &self.standardized_coefficients
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relationship() {
        let x: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![f64::from(i), f64::from((i * 7) % 11)])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 4.0 * r[0] - 2.5 * r[1] + 7.0).collect();
        let m = LinearRegression::fit(&x, &y).unwrap();
        // The small ridge biases coefficients by O(RIDGE).
        assert!((m.coefficients()[0] - 4.0).abs() < 1e-2);
        assert!((m.coefficients()[1] + 2.5).abs() < 1e-2);
        assert!((m.intercept() - 7.0).abs() < 0.1);
    }

    #[test]
    fn constant_feature_gets_zero_weight() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![f64::from(i), 3.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] + 1.0).collect();
        let m = LinearRegression::fit(&x, &y).unwrap();
        assert_eq!(m.coefficients()[1], 0.0);
        assert!((m.predict(&[10.0, 3.0]) - 21.0).abs() < 0.05);
    }

    #[test]
    fn all_constant_features_predict_the_mean() {
        let x = vec![vec![1.0], vec![1.0], vec![1.0]];
        let y = vec![2.0, 4.0, 6.0];
        let m = LinearRegression::fit(&x, &y).unwrap();
        assert_eq!(m.predict(&[1.0]), 4.0);
    }

    #[test]
    fn underdetermined_fit_is_still_usable() {
        // 5 samples, 10 features: the ridge keeps it solvable and the model
        // still interpolates the training data well.
        let x: Vec<Vec<f64>> = (0..5)
            .map(|i| (0..10).map(|j| f64::from(i * j + i + 1)).collect())
            .collect();
        let y = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let m = LinearRegression::fit(&x, &y).unwrap();
        let pred = m.predict_many(&x);
        let rmse = crate::metrics::rmse(&y, &pred);
        assert!(rmse < 0.5, "train rmse {rmse}");
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            LinearRegression::fit(&[], &[]).unwrap_err(),
            FitError::EmptyDataset
        );
        assert_eq!(
            LinearRegression::fit(&[vec![1.0]], &[1.0, 2.0]).unwrap_err(),
            FitError::ShapeMismatch
        );
        assert_eq!(
            LinearRegression::fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0]).unwrap_err(),
            FitError::ShapeMismatch
        );
    }

    #[test]
    fn standardized_coefficients_rank_importance() {
        // x0 drives y 10× harder than x1 (in standardized terms).
        let x: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let a = f64::from(i % 7);
                let b = f64::from(i % 5);
                vec![a, b]
            })
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 10.0 * r[0] + r[1]).collect();
        let m = LinearRegression::fit(&x, &y).unwrap();
        let s = m.standardized_coefficients();
        assert!(s[0].abs() > 5.0 * s[1].abs());
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn predict_checks_shape() {
        let m = LinearRegression::fit(&[vec![1.0], vec![2.0]], &[1.0, 2.0]).unwrap();
        let _ = m.predict(&[1.0, 2.0]);
    }
}
