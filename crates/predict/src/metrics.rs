//! Evaluation metrics of §4: the coefficient of determination R² and the
//! root-mean-square error.

/// The coefficient of determination R².
///
/// "The larger the values of R², the better fit the model provides, while
/// the best fit exists when R² is equal to 1. The R² can be 0 when the
/// model predicts the expected value disregarding the input features or
/// even negative (because the model can be arbitrary worse)." (§4)
///
/// Returns `0.0` when the true targets are constant and perfectly
/// predicted, and `f64::NEG_INFINITY`-free negative values otherwise.
///
/// # Panics
///
/// Panics on empty or mismatched inputs.
#[must_use]
pub fn r2_score(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert!(!y_true.is_empty(), "r2 of empty data is undefined");
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_tot: f64 = y_true.iter().map(|y| (y - mean).powi(2)).sum();
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(y, p)| (y - p).powi(2))
        .sum();
    if ss_tot <= 1e-300 {
        // Constant targets: perfect prediction scores 0 (scikit convention
        // is 1.0 for exact, 0 otherwise; we follow the conservative 0/neg).
        if ss_res <= 1e-300 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Root-mean-square error: "the deviation between the predicted values and
/// the observed values. The smaller the RMSE the more efficient the
/// prediction model is." (§4)
///
/// # Panics
///
/// Panics on empty or mismatched inputs.
#[must_use]
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert!(!y_true.is_empty(), "rmse of empty data is undefined");
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    let mse: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(y, p)| (y - p).powi(2))
        .sum::<f64>()
        / y_true.len() as f64;
    mse.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let y = vec![1.0, 2.0, 3.0];
        assert_eq!(r2_score(&y, &y), 1.0);
        assert_eq!(rmse(&y, &y), 0.0);
    }

    #[test]
    fn mean_prediction_scores_zero_r2() {
        let y = vec![1.0, 2.0, 3.0];
        let pred = vec![2.0, 2.0, 2.0];
        assert!(r2_score(&y, &pred).abs() < 1e-12);
    }

    #[test]
    fn arbitrarily_bad_models_go_negative() {
        let y = vec![1.0, 2.0, 3.0];
        let pred = vec![100.0, -50.0, 42.0];
        assert!(r2_score(&y, &pred) < 0.0);
    }

    #[test]
    fn rmse_known_value() {
        let y = vec![0.0, 0.0];
        let pred = vec![3.0, 4.0];
        // sqrt((9 + 16)/2) = sqrt(12.5)
        assert!((rmse(&y, &pred) - 12.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn constant_targets_conventions() {
        let y = vec![5.0, 5.0, 5.0];
        assert_eq!(r2_score(&y, &y), 1.0);
        assert_eq!(r2_score(&y, &[5.0, 5.0, 6.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = rmse(&[1.0], &[1.0, 2.0]);
    }
}
