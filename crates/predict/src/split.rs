//! Seeded train/test splitting.
//!
//! "For all our experiments, we used the 80% of the population of the
//! samples as the training set and the rest 20% as the test set." (§4.3)

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A train/test split of row indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Indices of the training rows.
    pub train: Vec<usize>,
    /// Indices of the test rows.
    pub test: Vec<usize>,
}

impl Split {
    /// Gathers the training subset of a dataset.
    #[must_use]
    pub fn train_of<T: Clone>(&self, data: &[T]) -> Vec<T> {
        self.train.iter().map(|&i| data[i].clone()).collect()
    }

    /// Gathers the test subset of a dataset.
    #[must_use]
    pub fn test_of<T: Clone>(&self, data: &[T]) -> Vec<T> {
        self.test.iter().map(|&i| data[i].clone()).collect()
    }
}

/// Produces a seeded shuffled split with `train_fraction` of the rows in
/// the training set (at least one row lands on each side whenever `n ≥ 2`).
///
/// # Panics
///
/// Panics when `n == 0` or `train_fraction` is outside `(0, 1)`.
#[must_use]
pub fn train_test_split(n: usize, train_fraction: f64, seed: u64) -> Split {
    assert!(n > 0, "cannot split an empty dataset");
    assert!(
        train_fraction > 0.0 && train_fraction < 1.0,
        "train fraction must be inside (0, 1)"
    );
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let mut cut = ((n as f64) * train_fraction).round() as usize;
    if n >= 2 {
        cut = cut.clamp(1, n - 1);
    }
    let test = indices.split_off(cut);
    Split {
        train: indices,
        test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_a_partition() {
        let s = train_test_split(100, 0.8, 42);
        assert_eq!(s.train.len(), 80);
        assert_eq!(s.test.len(), 20);
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn seeded_and_reproducible() {
        assert_eq!(train_test_split(50, 0.8, 7), train_test_split(50, 0.8, 7));
        assert_ne!(train_test_split(50, 0.8, 7), train_test_split(50, 0.8, 8));
    }

    #[test]
    fn split_is_shuffled_not_prefix() {
        let s = train_test_split(100, 0.8, 1);
        assert_ne!(s.train, (0..80).collect::<Vec<_>>());
    }

    #[test]
    fn tiny_datasets_keep_both_sides_nonempty() {
        let s = train_test_split(2, 0.8, 0);
        assert_eq!(s.train.len(), 1);
        assert_eq!(s.test.len(), 1);
        let s = train_test_split(5, 0.9, 0);
        assert!(!s.test.is_empty());
    }

    #[test]
    fn gather_helpers() {
        let s = train_test_split(4, 0.5, 3);
        let data = vec![10, 20, 30, 40];
        let train = s.train_of(&data);
        let test = s.test_of(&data);
        assert_eq!(train.len() + test.len(), 4);
        let mut all = train;
        all.extend(test);
        all.sort_unstable();
        assert_eq!(all, data);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn zero_rows_panics() {
        let _ = train_test_split(0, 0.8, 0);
    }
}
