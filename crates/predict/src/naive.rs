//! The naïve baseline of §4.3: "we used as baseline model the naïve
//! prediction, which is the average of the target values (Vmin or severity)
//! of the samples of the training set."

use serde::{Deserialize, Serialize};

/// The mean-of-training-targets predictor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NaiveMean {
    mean: f64,
}

impl NaiveMean {
    /// Fits the baseline (computes the training-target mean).
    ///
    /// # Panics
    ///
    /// Panics on an empty training set.
    #[must_use]
    pub fn fit(y_train: &[f64]) -> Self {
        assert!(!y_train.is_empty(), "naive baseline needs training targets");
        NaiveMean {
            mean: y_train.iter().sum::<f64>() / y_train.len() as f64,
        }
    }

    /// The constant prediction.
    #[must_use]
    pub fn predict(&self) -> f64 {
        self.mean
    }

    /// Predictions for `n` samples (all identical).
    #[must_use]
    pub fn predict_many(&self, n: usize) -> Vec<f64> {
        vec![self.mean; n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicts_training_mean() {
        let m = NaiveMean::fit(&[1.0, 2.0, 3.0, 6.0]);
        assert_eq!(m.predict(), 3.0);
        assert_eq!(m.predict_many(3), vec![3.0, 3.0, 3.0]);
    }

    #[test]
    fn naive_r2_is_nonpositive_on_test_data() {
        // By construction the naive model explains no variance.
        let train = [1.0, 2.0, 3.0];
        let test = [0.0, 4.0];
        let m = NaiveMean::fit(&train);
        let r2 = crate::metrics::r2_score(&test, &m.predict_many(test.len()));
        assert!(r2 <= 0.0);
    }

    #[test]
    #[should_panic(expected = "training targets")]
    fn empty_training_panics() {
        let _ = NaiveMean::fit(&[]);
    }
}
